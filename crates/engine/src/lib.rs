//! The execution engine shared by every layer of the reproduction.
//!
//! Before this crate, each layer built its own [`SiteResolver`] (the corpus
//! generator, the browser, the validation bot, the survey runner and the
//! list experiments all called `SiteResolver::new` independently) and every
//! parallel sweep spawned fresh scoped threads. [`EngineContext`] bundles
//! the two process-wide resources those layers actually want to share:
//!
//! * a handle to the persistent work-stealing [`ThreadPool`], so nested
//!   sweeps (a scenario pipeline running experiments that fan out again)
//!   all execute on one set of workers, and
//! * a concurrency-safe [`SiteResolver`] (sharded memo cache over the full
//!   vendored Public Suffix List), so a host's eTLD+1 is computed once for
//!   the whole pipeline instead of once per layer.
//!
//! The context is threaded by reference through `CorpusGenerator`,
//! `HistoryGenerator`, the survey runner, the linkability sweeps and
//! `Scenario::generate`; `PaperReproduction::run_all` executes the
//! experiments on the same pool.
//!
//! # Sequential mode
//!
//! [`EngineContext::sequential`] returns a context whose `par_*` and
//! [`join2`](EngineContext::join2) entry points run inline, in order, on
//! the calling thread. Because every parallel construct in the workspace is
//! order-deterministic (results keyed by input index, per-task derived
//! rngs), the sequential context is the *oracle* the property tests compare
//! the pooled pipeline against: `Scenario::generate` must produce
//! field-by-field identical output under both.

pub use rws_domain::SiteResolver;
pub use rws_stats::pool::ThreadPool;
use rws_stats::pool::{map_salvage_seq, par_map_on, par_map_salvage_on, par_map_with_on};
use rws_stats::supervision::Quarantine;
pub use rws_stats::supervision::{SupervisionPolicy, SupervisionReport};
use std::sync::{Arc, Mutex, PoisonError};

/// How a context executes its parallel entry points.
#[derive(Debug, Clone)]
enum ExecMode {
    /// Fan out on a pool (the caller also helps).
    Pooled(ThreadPool),
    /// Run everything inline, in input order — the equivalence oracle.
    Sequential,
}

/// Shared execution context: one resolver, one pool, threaded end-to-end.
///
/// Cloning is cheap: clones share the same pool workers and the same
/// resolver memo cache.
#[derive(Debug, Clone)]
pub struct EngineContext {
    mode: ExecMode,
    resolver: SiteResolver,
    /// How supervised sweeps treat panicking tasks (fail-fast by default).
    supervision: SupervisionPolicy,
    /// The run-level supervision aggregate. Clones share the monitor, so
    /// every layer a context is threaded through reports into one place;
    /// [`sequential_twin`](EngineContext::sequential_twin) gets a fresh one
    /// so oracle runs count independently.
    monitor: Arc<Mutex<SupervisionReport>>,
}

impl EngineContext {
    fn assemble(mode: ExecMode, resolver: SiteResolver) -> EngineContext {
        EngineContext {
            mode,
            resolver,
            supervision: SupervisionPolicy::FailFast,
            monitor: Arc::new(Mutex::new(SupervisionReport::new())),
        }
    }

    /// The production context: global thread pool + the process-wide
    /// resolver over the full vendored PSL snapshot.
    pub fn new() -> EngineContext {
        EngineContext::assemble(
            ExecMode::Pooled(ThreadPool::global().clone()),
            SiteResolver::full(),
        )
    }

    /// Global pool + a resolver over the small embedded PSL snapshot — the
    /// context unit tests run on (same fixture the seed tests pinned down).
    pub fn embedded() -> EngineContext {
        EngineContext::assemble(
            ExecMode::Pooled(ThreadPool::global().clone()),
            SiteResolver::embedded(),
        )
    }

    /// A context that executes everything inline on the calling thread,
    /// sharing the production resolver. This is the sequential oracle for
    /// the parallel-vs-sequential equivalence property tests.
    pub fn sequential() -> EngineContext {
        EngineContext::assemble(ExecMode::Sequential, SiteResolver::full())
    }

    /// A context over an explicit pool and resolver.
    pub fn with_parts(pool: ThreadPool, resolver: SiteResolver) -> EngineContext {
        EngineContext::assemble(ExecMode::Pooled(pool), resolver)
    }

    /// Replace the resolver, keeping the execution mode.
    pub fn with_resolver(mut self, resolver: SiteResolver) -> EngineContext {
        self.resolver = resolver;
        self
    }

    /// Replace the supervision policy, resetting the monitor: the returned
    /// context starts with a fresh [`SupervisionReport`], so a salvage run
    /// aggregates only its own sweeps.
    pub fn with_supervision(mut self, policy: SupervisionPolicy) -> EngineContext {
        self.supervision = policy;
        self.monitor = Arc::new(Mutex::new(SupervisionReport::new()));
        self
    }

    /// A context with the same resolver handle (shared memo cache) but
    /// inline execution — the per-context twin used when benchmarking or
    /// property-testing pooled against sequential runs. The twin keeps the
    /// supervision policy but gets its own fresh monitor, so oracle runs
    /// count their sweeps independently.
    pub fn sequential_twin(&self) -> EngineContext {
        EngineContext {
            mode: ExecMode::Sequential,
            resolver: self.resolver.clone(),
            supervision: self.supervision,
            monitor: Arc::new(Mutex::new(SupervisionReport::new())),
        }
    }

    /// True if parallel entry points run inline.
    pub fn is_sequential(&self) -> bool {
        matches!(self.mode, ExecMode::Sequential)
    }

    /// The shared memoizing site resolver.
    pub fn resolver(&self) -> &SiteResolver {
        &self.resolver
    }

    /// The pool this context fans out on, if it is not sequential.
    pub fn pool(&self) -> Option<&ThreadPool> {
        match &self.mode {
            ExecMode::Pooled(pool) => Some(pool),
            ExecMode::Sequential => None,
        }
    }

    /// Ordered parallel map with the short-input cutoff (see
    /// [`rws_stats::parallel::MIN_PARALLEL_LEN`]).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if items.len() < rws_stats::parallel::MIN_PARALLEL_LEN {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        self.par_map_coarse(items, f)
    }

    /// Ordered parallel map without the cutoff, for coarse per-element
    /// work (whole-experiment runs, per-set history replays).
    pub fn par_map_coarse<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match &self.mode {
            ExecMode::Pooled(pool) => par_map_on(pool, items, f),
            ExecMode::Sequential => items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
        }
    }

    /// Side-effect-only parallel sweep.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.par_map(items, |i, t| f(i, t));
    }

    /// Ordered parallel map with recycled scratch state (see
    /// [`rws_stats::parallel::par_map_with`]). Results must depend only on
    /// `(index, item)` so pooled and sequential runs agree.
    pub fn par_map_with<S, T, R, F>(&self, state: S, items: &[T], f: F) -> Vec<R>
    where
        S: Clone + Send,
        T: Sync,
        R: Send,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        match &self.mode {
            ExecMode::Pooled(pool) if items.len() >= rws_stats::parallel::MIN_PARALLEL_LEN => {
                par_map_with_on(pool, state, items, f)
            }
            _ => {
                let mut scratch = state;
                items
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(&mut scratch, i, t))
                    .collect()
            }
        }
    }

    /// The supervision policy supervised sweeps run under.
    pub fn supervision(&self) -> SupervisionPolicy {
        self.supervision
    }

    /// A snapshot of the run-level supervision aggregate: every supervised
    /// sweep executed on this context (or a clone of it) so far.
    pub fn supervision_report(&self) -> SupervisionReport {
        self.monitor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn record_sweep(&self, sweep: &SupervisionReport) {
        self.monitor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(sweep);
    }

    /// Ordered parallel map under the context's [`SupervisionPolicy`].
    /// Under fail-fast (the default) this is [`par_map_coarse`]
    /// (panics re-raise on the caller) with every result `Some`; under
    /// salvage, a panicking task is caught, quarantined as `(stage, index,
    /// message)` in the context's monitor, and its slot comes back `None`
    /// while the rest of the sweep completes. Results and quarantine
    /// contents are scheduling-independent either way.
    ///
    /// [`par_map_coarse`]: EngineContext::par_map_coarse
    pub fn par_map_supervised<T, R, F>(&self, stage: &str, items: &[T], f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_sweep_at(stage, 0, items, f).0
    }

    /// Like [`par_map_supervised`](EngineContext::par_map_supervised), but
    /// also returns this sweep's own [`SupervisionReport`] (still merged
    /// into the shared monitor), with quarantine indices shifted by
    /// `index_offset` — the entry point windowed (checkpointed) runs use so
    /// entries carry global positions.
    pub fn par_map_sweep_at<T, R, F>(
        &self,
        stage: &str,
        index_offset: usize,
        items: &[T],
        f: F,
    ) -> (Vec<Option<R>>, SupervisionReport)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut sweep = SupervisionReport::new();
        let out = match self.supervision {
            SupervisionPolicy::FailFast => {
                let out: Vec<Option<R>> = self
                    .par_map_coarse(items, f)
                    .into_iter()
                    .map(Some)
                    .collect();
                sweep.record_sweep(
                    stage,
                    index_offset,
                    items.len(),
                    &Quarantine::new(),
                    usize::MAX,
                );
                out
            }
            SupervisionPolicy::Salvage { quarantine_cap } => {
                let (out, quarantine) = match &self.mode {
                    ExecMode::Pooled(pool) => par_map_salvage_on(pool, items, &f),
                    ExecMode::Sequential => map_salvage_seq(items, &f),
                };
                sweep.record_sweep(
                    stage,
                    index_offset,
                    items.len(),
                    &quarantine,
                    quarantine_cap,
                );
                out
            }
        };
        self.record_sweep(&sweep);
        (out, sweep)
    }

    /// Run two closures, in parallel when pooled (either may execute on a
    /// worker thread), or inline in `a`-then-`b` order when sequential.
    pub fn join2<A, B, FA, FB>(&self, a: FA, b: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        match &self.mode {
            ExecMode::Pooled(pool) => pool.join2(a, b),
            ExecMode::Sequential => {
                let ra = a();
                let rb = b();
                (ra, rb)
            }
        }
    }
}

impl Default for EngineContext {
    fn default() -> Self {
        EngineContext::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_domain::DomainName;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn pooled_and_sequential_maps_agree() {
        let pooled = EngineContext::new();
        let sequential = pooled.sequential_twin();
        let items: Vec<u64> = (0..500).collect();
        let f = |i: usize, v: &u64| v * 13 + i as u64;
        assert_eq!(pooled.par_map(&items, f), sequential.par_map(&items, f));
        assert_eq!(
            pooled.par_map_coarse(&items, f),
            sequential.par_map_coarse(&items, f)
        );
    }

    #[test]
    fn contexts_share_the_resolver_cache() {
        let ctx = EngineContext::new();
        let clone = ctx.clone();
        let host = dn("engine-shared.example.com");
        let a = ctx.resolver().registrable_domain(&host).unwrap();
        let b = clone.resolver().registrable_domain(&host).unwrap();
        assert_eq!(a, b);
        // The clone's lookup was answered from the shared cache.
        assert!(clone.resolver().stats().hits >= 1);
    }

    #[test]
    fn sequential_join2_runs_in_order() {
        let ctx = EngineContext::sequential();
        assert!(ctx.is_sequential());
        assert!(ctx.pool().is_none());
        let log = std::sync::Mutex::new(Vec::new());
        ctx.join2(
            || log.lock().unwrap().push("a"),
            || log.lock().unwrap().push("b"),
        );
        assert_eq!(*log.lock().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn embedded_context_uses_embedded_snapshot() {
        let ctx = EngineContext::embedded();
        // The embedded snapshot lacks the full list's com.ng rule.
        assert_eq!(
            ctx.resolver()
                .registrable_domain(&dn("www.example.com.ng"))
                .unwrap(),
            dn("com.ng")
        );
        let full = EngineContext::new();
        assert_eq!(
            full.resolver()
                .registrable_domain(&dn("www.example.com.ng"))
                .unwrap(),
            dn("example.com.ng")
        );
    }

    #[test]
    fn supervised_fail_fast_matches_par_map_and_counts_tasks() {
        let ctx = EngineContext::embedded();
        assert_eq!(ctx.supervision(), SupervisionPolicy::FailFast);
        let items: Vec<u64> = (0..100).collect();
        let out = ctx.par_map_supervised("stage", &items, |i, v| v + i as u64);
        let plain: Vec<Option<u64>> = ctx
            .par_map_coarse(&items, |i, v| v + i as u64)
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(out, plain);
        let report = ctx.supervision_report();
        // Only the supervised sweep records (par_map_coarse does not).
        assert_eq!(report.tasks_run, 100);
        assert_eq!(report.quarantined, 0);
        assert!(!report.degraded());
    }

    #[test]
    fn supervised_salvage_agrees_across_modes_and_records_quarantine() {
        let pooled = EngineContext::embedded().with_supervision(SupervisionPolicy::salvage());
        let sequential = pooled.sequential_twin();
        assert_eq!(sequential.supervision(), SupervisionPolicy::salvage());
        let items: Vec<u64> = (0..200).collect();
        let task = |_: usize, v: &u64| {
            if v % 61 == 13 {
                panic!("poisoned work item {v}");
            }
            v * 3
        };
        let (a, sweep_a) = pooled.par_map_sweep_at("stage", 0, &items, task);
        let (b, sweep_b) = sequential.par_map_sweep_at("stage", 0, &items, task);
        assert_eq!(a, b);
        assert_eq!(sweep_a, sweep_b);
        assert_eq!(sweep_a.quarantined, 4); // 13, 74, 135, 196
        assert_eq!(sweep_a.entries[0].index, 13);
        assert_eq!(sweep_a.entries[0].stage, "stage");
        // The monitors are independent (twin got a fresh one) but agree.
        assert_eq!(pooled.supervision_report(), sequential.supervision_report());
        // Clones share the monitor.
        let clone = pooled.clone();
        assert_eq!(clone.supervision_report().quarantined, 4);
    }

    #[test]
    fn with_supervision_resets_the_monitor() {
        let ctx = EngineContext::embedded();
        let items: Vec<u64> = (0..10).collect();
        let _ = ctx.par_map_supervised("warmup", &items, |_, v| *v);
        assert_eq!(ctx.supervision_report().tasks_run, 10);
        let fresh = ctx.with_supervision(SupervisionPolicy::salvage());
        assert_eq!(fresh.supervision_report().tasks_run, 0);
    }

    #[test]
    fn par_map_with_agrees_across_modes() {
        let pooled = EngineContext::new();
        let sequential = pooled.sequential_twin();
        let items: Vec<u32> = (0..200).collect();
        let f = |buf: &mut Vec<u8>, i: usize, v: &u32| {
            buf.clear();
            buf.extend_from_slice(&(v + i as u32).to_le_bytes());
            buf.iter().map(|b| *b as u32).sum::<u32>()
        };
        assert_eq!(
            pooled.par_map_with(Vec::new(), &items, f),
            sequential.par_map_with(Vec::new(), &items, f)
        );
    }
}
