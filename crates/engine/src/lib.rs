//! The execution engine shared by every layer of the reproduction.
//!
//! Before this crate, each layer built its own [`SiteResolver`] (the corpus
//! generator, the browser, the validation bot, the survey runner and the
//! list experiments all called `SiteResolver::new` independently) and every
//! parallel sweep spawned fresh scoped threads. The engine bundles the two
//! process-wide resources those layers actually want to share:
//!
//! * a handle to the persistent work-stealing [`ThreadPool`], so nested
//!   sweeps (a scenario pipeline running experiments that fan out again)
//!   all execute on one set of workers, and
//! * a concurrency-safe [`SiteResolver`] (sharded memo cache over the full
//!   vendored Public Suffix List), so a host's eTLD+1 is computed once for
//!   the whole pipeline instead of once per layer.
//!
//! # The backend trait
//!
//! Scenario code does not care *where* work runs — it cares that `par_map`
//! is ordered and deterministic and that a resolver is at hand. That
//! contract is the [`EngineBackend`] trait: five required accessors
//! (resolver, pool, supervision plumbing) and a family of provided
//! parallel entry points (`par_map`, `par_map_with`, supervised sweeps,
//! `join2`) implemented once in terms of them. Two backends exist today —
//! [`PooledBackend`] fans out on a thread pool, [`InlineBackend`] runs
//! everything in input order on the calling thread — and a
//! sharded-multiprocess backend (per-shard worker processes over the
//! sharded frozen store) has a reserved slot for when corpora outgrow one
//! address space.
//!
//! [`EngineContext`] remains the concrete handle threaded through
//! `CorpusGenerator`, `HistoryGenerator`, the survey runner, the
//! linkability sweeps and `Scenario::generate`: a cheap-to-clone
//! dispatcher over the two backends that keeps its original constructor
//! surface (`new`, `embedded`, `sequential`, `with_parts`…). Pipeline
//! entry points now take `&E where E: EngineBackend`, so they accept the
//! context, a bare backend, or anything else that implements the trait.
//!
//! # Sequential mode
//!
//! [`EngineContext::sequential`] returns a context whose `par_*` and
//! [`join2`](EngineBackend::join2) entry points run inline, in order, on
//! the calling thread. Because every parallel construct in the workspace is
//! order-deterministic (results keyed by input index, per-task derived
//! rngs), the sequential context is the *oracle* the property tests compare
//! the pooled pipeline against: `Scenario::generate` must produce
//! field-by-field identical output under both.

pub use rws_domain::SiteResolver;
pub use rws_stats::pool::ThreadPool;
use rws_stats::pool::{map_salvage_seq, par_map_on, par_map_salvage_on, par_map_with_on};
use rws_stats::supervision::Quarantine;
pub use rws_stats::supervision::{SupervisionPolicy, SupervisionReport};
use std::sync::{Arc, Mutex, PoisonError};

/// Where (and how) pipeline work executes.
///
/// Required methods are the resources a backend owns; every parallel
/// entry point is provided on top of them, so a new backend (the reserved
/// sharded-multiprocess slot, a test double) implements exactly five
/// methods and inherits the whole deterministic `par_*` surface.
///
/// The `Sync` supertrait is what lets sweep closures capture `&self`
/// (e.g. to reach the resolver) while running on pool workers.
pub trait EngineBackend: Sync {
    /// The shared memoizing site resolver.
    fn resolver(&self) -> &SiteResolver;

    /// The pool this backend fans out on — `None` means every entry point
    /// runs inline, in input order, on the calling thread.
    fn pool(&self) -> Option<&ThreadPool>;

    /// The supervision policy supervised sweeps run under.
    fn supervision(&self) -> SupervisionPolicy;

    /// A snapshot of the run-level supervision aggregate: every supervised
    /// sweep executed on this backend (or a clone sharing its monitor).
    fn supervision_report(&self) -> SupervisionReport;

    /// Merge one sweep's report into the run-level aggregate. Called by
    /// the provided supervised entry points; rarely invoked directly.
    fn record_sweep(&self, sweep: &SupervisionReport);

    /// True if parallel entry points run inline.
    fn is_sequential(&self) -> bool {
        self.pool().is_none()
    }

    /// Ordered parallel map with the short-input cutoff (see
    /// [`rws_stats::parallel::MIN_PARALLEL_LEN`]).
    fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        Self: Sized,
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if items.len() < rws_stats::parallel::MIN_PARALLEL_LEN {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        self.par_map_coarse(items, f)
    }

    /// Ordered parallel map without the cutoff, for coarse per-element
    /// work (whole-experiment runs, per-set history replays, per-shard
    /// corpus rendering).
    fn par_map_coarse<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        Self: Sized,
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self.pool() {
            Some(pool) => par_map_on(pool, items, f),
            None => items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
        }
    }

    /// Side-effect-only parallel sweep.
    fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        Self: Sized,
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.par_map(items, |i, t| f(i, t));
    }

    /// Ordered parallel map with recycled scratch state (see
    /// [`rws_stats::parallel::par_map_with`]). Results must depend only on
    /// `(index, item)` so pooled and sequential runs agree.
    fn par_map_with<S, T, R, F>(&self, state: S, items: &[T], f: F) -> Vec<R>
    where
        Self: Sized,
        S: Clone + Send,
        T: Sync,
        R: Send,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        match self.pool() {
            Some(pool) if items.len() >= rws_stats::parallel::MIN_PARALLEL_LEN => {
                par_map_with_on(pool, state, items, f)
            }
            _ => {
                let mut scratch = state;
                items
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(&mut scratch, i, t))
                    .collect()
            }
        }
    }

    /// Ordered parallel map under the backend's [`SupervisionPolicy`].
    /// Under fail-fast (the default) this is
    /// [`par_map_coarse`](EngineBackend::par_map_coarse) (panics re-raise
    /// on the caller) with every result `Some`; under salvage, a panicking
    /// task is caught, quarantined as `(stage, index, message)` in the
    /// backend's monitor, and its slot comes back `None` while the rest of
    /// the sweep completes. Results and quarantine contents are
    /// scheduling-independent either way.
    fn par_map_supervised<T, R, F>(&self, stage: &str, items: &[T], f: F) -> Vec<Option<R>>
    where
        Self: Sized,
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_sweep_at(stage, 0, items, f).0
    }

    /// Like [`par_map_supervised`](EngineBackend::par_map_supervised), but
    /// also returns this sweep's own [`SupervisionReport`] (still merged
    /// into the shared monitor), with quarantine indices shifted by
    /// `index_offset` — the entry point windowed (checkpointed) runs use so
    /// entries carry global positions.
    fn par_map_sweep_at<T, R, F>(
        &self,
        stage: &str,
        index_offset: usize,
        items: &[T],
        f: F,
    ) -> (Vec<Option<R>>, SupervisionReport)
    where
        Self: Sized,
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut sweep = SupervisionReport::new();
        let out = match self.supervision() {
            SupervisionPolicy::FailFast => {
                let out: Vec<Option<R>> = self
                    .par_map_coarse(items, f)
                    .into_iter()
                    .map(Some)
                    .collect();
                sweep.record_sweep(
                    stage,
                    index_offset,
                    items.len(),
                    &Quarantine::new(),
                    usize::MAX,
                );
                out
            }
            SupervisionPolicy::Salvage { quarantine_cap } => {
                let (out, quarantine) = match self.pool() {
                    Some(pool) => par_map_salvage_on(pool, items, &f),
                    None => map_salvage_seq(items, &f),
                };
                sweep.record_sweep(
                    stage,
                    index_offset,
                    items.len(),
                    &quarantine,
                    quarantine_cap,
                );
                out
            }
        };
        self.record_sweep(&sweep);
        (out, sweep)
    }

    /// Run two closures, in parallel when pooled (either may execute on a
    /// worker thread), or inline in `a`-then-`b` order when sequential.
    fn join2<A, B, FA, FB>(&self, a: FA, b: FB) -> (A, B)
    where
        Self: Sized,
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        match self.pool() {
            Some(pool) => pool.join2(a, b),
            None => {
                let ra = a();
                let rb = b();
                (ra, rb)
            }
        }
    }
}

/// The supervision plumbing every backend carries: a policy plus the
/// shared run-level monitor that supervised sweeps merge into.
#[derive(Debug, Clone)]
struct Supervisor {
    policy: SupervisionPolicy,
    /// Clones share the monitor, so every layer a backend is threaded
    /// through reports into one place; twins get a fresh one so oracle
    /// runs count independently.
    monitor: Arc<Mutex<SupervisionReport>>,
}

impl Supervisor {
    fn new(policy: SupervisionPolicy) -> Supervisor {
        Supervisor {
            policy,
            monitor: Arc::new(Mutex::new(SupervisionReport::new())),
        }
    }

    fn report(&self) -> SupervisionReport {
        self.monitor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn record(&self, sweep: &SupervisionReport) {
        self.monitor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .merge(sweep);
    }
}

/// The pooled backend: fans out on a work-stealing [`ThreadPool`] (the
/// caller also helps drain the queue). This is what [`EngineContext::new`]
/// dispatches to.
#[derive(Debug, Clone)]
pub struct PooledBackend {
    pool: ThreadPool,
    resolver: SiteResolver,
    supervisor: Supervisor,
}

impl PooledBackend {
    /// A pooled backend over an explicit pool and resolver, fail-fast.
    pub fn new(pool: ThreadPool, resolver: SiteResolver) -> PooledBackend {
        PooledBackend {
            pool,
            resolver,
            supervisor: Supervisor::new(SupervisionPolicy::FailFast),
        }
    }
}

impl EngineBackend for PooledBackend {
    fn resolver(&self) -> &SiteResolver {
        &self.resolver
    }

    fn pool(&self) -> Option<&ThreadPool> {
        Some(&self.pool)
    }

    fn supervision(&self) -> SupervisionPolicy {
        self.supervisor.policy
    }

    fn supervision_report(&self) -> SupervisionReport {
        self.supervisor.report()
    }

    fn record_sweep(&self, sweep: &SupervisionReport) {
        self.supervisor.record(sweep);
    }
}

/// The inline backend: every entry point runs on the calling thread, in
/// input order — the sequential oracle for pooled-vs-sequential
/// equivalence property tests.
#[derive(Debug, Clone)]
pub struct InlineBackend {
    resolver: SiteResolver,
    supervisor: Supervisor,
}

impl InlineBackend {
    /// An inline backend over an explicit resolver, fail-fast.
    pub fn new(resolver: SiteResolver) -> InlineBackend {
        InlineBackend {
            resolver,
            supervisor: Supervisor::new(SupervisionPolicy::FailFast),
        }
    }
}

impl EngineBackend for InlineBackend {
    fn resolver(&self) -> &SiteResolver {
        &self.resolver
    }

    fn pool(&self) -> Option<&ThreadPool> {
        None
    }

    fn supervision(&self) -> SupervisionPolicy {
        self.supervisor.policy
    }

    fn supervision_report(&self) -> SupervisionReport {
        self.supervisor.report()
    }

    fn record_sweep(&self, sweep: &SupervisionReport) {
        self.supervisor.record(sweep);
    }
}

/// Which backend a context dispatches to. A third, sharded-multiprocess
/// variant is reserved for corpora that outgrow one address space.
#[derive(Debug, Clone)]
enum Backend {
    Pooled(PooledBackend),
    Inline(InlineBackend),
}

/// Shared execution context: one resolver, one pool, threaded end-to-end.
///
/// A cheap-to-clone dispatcher over the concrete [`EngineBackend`]s —
/// clones share the same pool workers, the same resolver memo cache and
/// the same supervision monitor. Pipeline code written against
/// `E: EngineBackend` accepts an `EngineContext` directly.
#[derive(Debug, Clone)]
pub struct EngineContext {
    backend: Backend,
}

impl EngineContext {
    /// The production context: global thread pool + the process-wide
    /// resolver over the full vendored PSL snapshot.
    pub fn new() -> EngineContext {
        EngineContext::with_parts(ThreadPool::global().clone(), SiteResolver::full())
    }

    /// Global pool + a resolver over the small embedded PSL snapshot — the
    /// context unit tests run on (same fixture the seed tests pinned down).
    pub fn embedded() -> EngineContext {
        EngineContext::with_parts(ThreadPool::global().clone(), SiteResolver::embedded())
    }

    /// A context that executes everything inline on the calling thread,
    /// sharing the production resolver. This is the sequential oracle for
    /// the parallel-vs-sequential equivalence property tests.
    pub fn sequential() -> EngineContext {
        EngineContext {
            backend: Backend::Inline(InlineBackend::new(SiteResolver::full())),
        }
    }

    /// A context over an explicit pool and resolver.
    pub fn with_parts(pool: ThreadPool, resolver: SiteResolver) -> EngineContext {
        EngineContext {
            backend: Backend::Pooled(PooledBackend::new(pool, resolver)),
        }
    }

    /// Replace the resolver, keeping the execution mode.
    pub fn with_resolver(mut self, resolver: SiteResolver) -> EngineContext {
        match &mut self.backend {
            Backend::Pooled(b) => b.resolver = resolver,
            Backend::Inline(b) => b.resolver = resolver,
        }
        self
    }

    /// Replace the supervision policy, resetting the monitor: the returned
    /// context starts with a fresh [`SupervisionReport`], so a salvage run
    /// aggregates only its own sweeps.
    pub fn with_supervision(mut self, policy: SupervisionPolicy) -> EngineContext {
        match &mut self.backend {
            Backend::Pooled(b) => b.supervisor = Supervisor::new(policy),
            Backend::Inline(b) => b.supervisor = Supervisor::new(policy),
        }
        self
    }

    /// A context with the same resolver handle (shared memo cache) but
    /// inline execution — the per-context twin used when benchmarking or
    /// property-testing pooled against sequential runs. The twin keeps the
    /// supervision policy but gets its own fresh monitor, so oracle runs
    /// count their sweeps independently.
    pub fn sequential_twin(&self) -> EngineContext {
        EngineContext {
            backend: Backend::Inline(InlineBackend {
                resolver: self.resolver().clone(),
                supervisor: Supervisor::new(self.supervision()),
            }),
        }
    }
}

impl EngineBackend for EngineContext {
    fn resolver(&self) -> &SiteResolver {
        match &self.backend {
            Backend::Pooled(b) => b.resolver(),
            Backend::Inline(b) => b.resolver(),
        }
    }

    fn pool(&self) -> Option<&ThreadPool> {
        match &self.backend {
            Backend::Pooled(b) => b.pool(),
            Backend::Inline(b) => b.pool(),
        }
    }

    fn supervision(&self) -> SupervisionPolicy {
        match &self.backend {
            Backend::Pooled(b) => b.supervision(),
            Backend::Inline(b) => b.supervision(),
        }
    }

    fn supervision_report(&self) -> SupervisionReport {
        match &self.backend {
            Backend::Pooled(b) => b.supervision_report(),
            Backend::Inline(b) => b.supervision_report(),
        }
    }

    fn record_sweep(&self, sweep: &SupervisionReport) {
        match &self.backend {
            Backend::Pooled(b) => b.record_sweep(sweep),
            Backend::Inline(b) => b.record_sweep(sweep),
        }
    }
}

impl Default for EngineContext {
    fn default() -> Self {
        EngineContext::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_domain::DomainName;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn pooled_and_sequential_maps_agree() {
        let pooled = EngineContext::new();
        let sequential = pooled.sequential_twin();
        let items: Vec<u64> = (0..500).collect();
        let f = |i: usize, v: &u64| v * 13 + i as u64;
        assert_eq!(pooled.par_map(&items, f), sequential.par_map(&items, f));
        assert_eq!(
            pooled.par_map_coarse(&items, f),
            sequential.par_map_coarse(&items, f)
        );
    }

    #[test]
    fn bare_backends_agree_with_the_context() {
        // The context is a dispatcher: a bare PooledBackend/InlineBackend
        // must behave identically through the trait surface.
        let pooled = PooledBackend::new(ThreadPool::global().clone(), SiteResolver::embedded());
        let inline = InlineBackend::new(SiteResolver::embedded());
        assert!(!pooled.is_sequential());
        assert!(inline.is_sequential());
        let items: Vec<u64> = (0..300).collect();
        let f = |i: usize, v: &u64| v * 7 + i as u64;
        assert_eq!(pooled.par_map(&items, f), inline.par_map(&items, f));
        let ctx = EngineContext::embedded();
        assert_eq!(ctx.par_map(&items, f), inline.par_map(&items, f));
    }

    #[test]
    fn generic_entry_points_accept_any_backend() {
        fn doubled_on<E: EngineBackend>(ctx: &E, items: &[u64]) -> Vec<u64> {
            ctx.par_map(items, |_, v| v * 2)
        }
        let items: Vec<u64> = (0..64).collect();
        let want: Vec<u64> = items.iter().map(|v| v * 2).collect();
        assert_eq!(doubled_on(&EngineContext::embedded(), &items), want);
        assert_eq!(
            doubled_on(&InlineBackend::new(SiteResolver::embedded()), &items),
            want
        );
        assert_eq!(
            doubled_on(
                &PooledBackend::new(ThreadPool::global().clone(), SiteResolver::embedded()),
                &items
            ),
            want
        );
    }

    #[test]
    fn contexts_share_the_resolver_cache() {
        let ctx = EngineContext::new();
        let clone = ctx.clone();
        let host = dn("engine-shared.example.com");
        let a = ctx.resolver().registrable_domain(&host).unwrap();
        let b = clone.resolver().registrable_domain(&host).unwrap();
        assert_eq!(a, b);
        // The clone's lookup was answered from the shared cache.
        assert!(clone.resolver().stats().hits >= 1);
    }

    #[test]
    fn sequential_join2_runs_in_order() {
        let ctx = EngineContext::sequential();
        assert!(ctx.is_sequential());
        assert!(ctx.pool().is_none());
        let log = std::sync::Mutex::new(Vec::new());
        ctx.join2(
            || log.lock().unwrap().push("a"),
            || log.lock().unwrap().push("b"),
        );
        assert_eq!(*log.lock().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn embedded_context_uses_embedded_snapshot() {
        let ctx = EngineContext::embedded();
        // The embedded snapshot lacks the full list's com.ng rule.
        assert_eq!(
            ctx.resolver()
                .registrable_domain(&dn("www.example.com.ng"))
                .unwrap(),
            dn("com.ng")
        );
        let full = EngineContext::new();
        assert_eq!(
            full.resolver()
                .registrable_domain(&dn("www.example.com.ng"))
                .unwrap(),
            dn("example.com.ng")
        );
    }

    #[test]
    fn supervised_fail_fast_matches_par_map_and_counts_tasks() {
        let ctx = EngineContext::embedded();
        assert_eq!(ctx.supervision(), SupervisionPolicy::FailFast);
        let items: Vec<u64> = (0..100).collect();
        let out = ctx.par_map_supervised("stage", &items, |i, v| v + i as u64);
        let plain: Vec<Option<u64>> = ctx
            .par_map_coarse(&items, |i, v| v + i as u64)
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(out, plain);
        let report = ctx.supervision_report();
        // Only the supervised sweep records (par_map_coarse does not).
        assert_eq!(report.tasks_run, 100);
        assert_eq!(report.quarantined, 0);
        assert!(!report.degraded());
    }

    #[test]
    fn supervised_salvage_agrees_across_modes_and_records_quarantine() {
        let pooled = EngineContext::embedded().with_supervision(SupervisionPolicy::salvage());
        let sequential = pooled.sequential_twin();
        assert_eq!(sequential.supervision(), SupervisionPolicy::salvage());
        let items: Vec<u64> = (0..200).collect();
        let task = |_: usize, v: &u64| {
            if v % 61 == 13 {
                panic!("poisoned work item {v}");
            }
            v * 3
        };
        let (a, sweep_a) = pooled.par_map_sweep_at("stage", 0, &items, task);
        let (b, sweep_b) = sequential.par_map_sweep_at("stage", 0, &items, task);
        assert_eq!(a, b);
        assert_eq!(sweep_a, sweep_b);
        assert_eq!(sweep_a.quarantined, 4); // 13, 74, 135, 196
        assert_eq!(sweep_a.entries[0].index, 13);
        assert_eq!(sweep_a.entries[0].stage, "stage");
        // The monitors are independent (twin got a fresh one) but agree.
        assert_eq!(pooled.supervision_report(), sequential.supervision_report());
        // Clones share the monitor.
        let clone = pooled.clone();
        assert_eq!(clone.supervision_report().quarantined, 4);
    }

    #[test]
    fn with_supervision_resets_the_monitor() {
        let ctx = EngineContext::embedded();
        let items: Vec<u64> = (0..10).collect();
        let _ = ctx.par_map_supervised("warmup", &items, |_, v| *v);
        assert_eq!(ctx.supervision_report().tasks_run, 10);
        let fresh = ctx.with_supervision(SupervisionPolicy::salvage());
        assert_eq!(fresh.supervision_report().tasks_run, 0);
    }

    #[test]
    fn par_map_with_agrees_across_modes() {
        let pooled = EngineContext::new();
        let sequential = pooled.sequential_twin();
        let items: Vec<u32> = (0..200).collect();
        let f = |buf: &mut Vec<u8>, i: usize, v: &u32| {
            buf.clear();
            buf.extend_from_slice(&(v + i as u32).to_le_bytes());
            buf.iter().map(|b| *b as u32).sum::<u32>()
        };
        assert_eq!(
            pooled.par_map_with(Vec::new(), &items, f),
            sequential.par_map_with(Vec::new(), &items, f)
        );
    }
}
