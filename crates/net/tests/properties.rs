//! Property-based tests for the simulated network layer.

use proptest::prelude::*;
use rws_net::{Fetcher, PageContent, SimulatedWeb, SiteHost, StatusCode, Url};

fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| s)
}

fn host_name() -> impl Strategy<Value = String> {
    (label(), label()).prop_map(|(a, b)| format!("{a}.{b}.com"))
}

fn path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,6}", 0..4).prop_map(|segs| {
        if segs.is_empty() {
            "/".to_string()
        } else {
            format!("/{}", segs.join("/"))
        }
    })
}

proptest! {
    /// Every URL built from a valid host/path/query round-trips through
    /// Display + parse.
    #[test]
    fn url_display_parse_round_trip(host in host_name(), p in path(), q in proptest::option::of("[a-z]=[0-9]{1,3}")) {
        let mut s = format!("https://{host}{p}");
        if let Some(q) = &q {
            s.push('?');
            s.push_str(q);
        }
        let u = Url::parse(&s).unwrap();
        prop_assert_eq!(u.to_string(), s.clone());
        prop_assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
    }

    /// Fetching any registered page succeeds with 200 and returns the exact
    /// body; fetching any unregistered path on the same host returns 404.
    #[test]
    fn fetch_registered_pages(host in host_name(), p in path(), body in "[ -~]{0,200}") {
        let mut web = SimulatedWeb::new();
        let mut site = SiteHost::new(&host).unwrap();
        site.add_page(&p, body.clone());
        web.register(site);
        let fetcher = Fetcher::new(web);
        let url = Url::parse(&format!("https://{host}{p}")).unwrap();
        let resp = fetcher.get(&url).unwrap();
        prop_assert_eq!(resp.status, StatusCode::OK);
        prop_assert_eq!(resp.body_text(), body);

        let missing = Url::parse(&format!("https://{host}{p}/definitely-not-registered")).unwrap();
        let resp = fetcher.get(&missing).unwrap();
        prop_assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    /// A redirect chain of bounded length is always followed to the final
    /// page, and the hop count matches the chain length.
    #[test]
    fn redirect_chains_resolve(host in host_name(), hops in 1usize..5) {
        let mut web = SimulatedWeb::new();
        let mut site = SiteHost::new(&host).unwrap();
        for i in 0..hops {
            site.add_content(
                &format!("/hop{i}"),
                PageContent::Redirect { location: format!("/hop{}", i + 1), permanent: false },
            );
        }
        site.add_page(&format!("/hop{hops}"), "final destination");
        web.register(site);
        let fetcher = Fetcher::new(web);
        let url = Url::parse(&format!("https://{host}/hop0")).unwrap();
        let resp = fetcher.get(&url).unwrap();
        prop_assert_eq!(resp.status, StatusCode::OK);
        prop_assert_eq!(resp.redirects_followed, hops);
        prop_assert_eq!(resp.body_text(), "final destination".to_string());
    }

    /// The request log grows by exactly the number of hops taken.
    #[test]
    fn request_log_counts_hops(host in host_name(), requests in 1usize..10) {
        let mut web = SimulatedWeb::new();
        let mut site = SiteHost::new(&host).unwrap();
        site.add_page("/", "home");
        web.register(site);
        let fetcher = Fetcher::new(web);
        let url = Url::parse(&format!("https://{host}/")).unwrap();
        for _ in 0..requests {
            fetcher.get(&url).unwrap();
        }
        prop_assert_eq!(fetcher.requests_issued(), requests);
    }
}
