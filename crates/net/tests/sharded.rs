//! Property tests for the sharded frozen store.
//!
//! Contracts, each across arbitrary generated webs and the shard counts
//! {1, 2, 7, 16} (16 matches the memo tables, 7 exercises the non-mask
//! modulo route, 1 is the unsharded baseline):
//!
//! * sharding is observationally invisible: a `ShardedFrozenWeb` built
//!   from the same host table answers every read (`serve`, `hosts`,
//!   `host_count`, `page_body`, `page_html`) field-for-field identically
//!   to the single-table `FrozenWeb`;
//! * overlay edits that land on different shards re-freeze correctly:
//!   `freeze_sharded` over an edited web equals the single-table
//!   `freeze` of an identically-edited web;
//! * the no-op freeze fast paths are pinned by pointer equality — an
//!   empty overlay hands back the *same* table (refcount bump), both
//!   single and sharded.

use proptest::prelude::*;
use rws_net::{FrozenWeb, PageContent, ShardedFrozenWeb, SimulatedWeb, SiteHost, StatusCode, Url};

const SHARD_COUNTS: &[usize] = &[1, 2, 7, 16];

/// One generated page: a path and what it serves.
#[derive(Debug, Clone)]
struct PageSpec {
    path: String,
    content: PageContent,
}

/// One generated host.
#[derive(Debug, Clone)]
struct HostSpec {
    pages: Vec<PageSpec>,
    offline: bool,
    http_only: bool,
}

fn content_strategy() -> impl Strategy<Value = PageContent> {
    (0u8..5, "[ -~]{0,120}", "/[a-z]{1,6}", any::<bool>()).prop_map(
        |(kind, body, location, permanent)| match kind {
            0 => PageContent::Html(body.into()),
            1 => PageContent::Json(body.into()),
            2 => PageContent::Text(body.into()),
            3 => PageContent::Redirect {
                location,
                permanent,
            },
            _ => PageContent::Error {
                status: StatusCode::SERVICE_UNAVAILABLE,
                body: body.into(),
            },
        },
    )
}

fn host_strategy() -> impl Strategy<Value = HostSpec> {
    (
        proptest::collection::vec(
            ("/[a-z0-9]{1,8}", content_strategy())
                .prop_map(|(path, content)| PageSpec { path, content }),
            0..5,
        ),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(pages, offline, http_only)| HostSpec {
            pages,
            offline,
            http_only,
        })
}

/// Materialise the generated web plus the probe URLs every contract reads.
fn build_web(hosts: &[HostSpec]) -> (SimulatedWeb, Vec<Url>) {
    let mut web = SimulatedWeb::new();
    let mut urls = Vec::new();
    for (i, spec) in hosts.iter().enumerate() {
        let name = format!("host{i}.example.com");
        let mut host = SiteHost::new(&name).unwrap();
        host.set_offline(spec.offline).set_http_only(spec.http_only);
        for page in &spec.pages {
            host.add_content(&page.path, page.content.clone());
        }
        web.register(host);
        for page in &spec.pages {
            urls.push(Url::parse(&format!("https://{name}{}", page.path)).unwrap());
            urls.push(Url::parse(&format!("http://{name}{}", page.path)).unwrap());
        }
        urls.push(Url::parse(&format!("https://{name}/not-registered")).unwrap());
    }
    urls.push(Url::parse("https://unregistered.example.com/").unwrap());
    (web, urls)
}

/// Field-for-field read equivalence between a single table and a sharded
/// store over the same hosts.
fn assert_equivalent(single: &FrozenWeb, sharded: &ShardedFrozenWeb, urls: &[Url]) {
    prop_assert_eq!(sharded.host_count(), single.host_count());
    prop_assert_eq!(sharded.hosts(), single.hosts());
    for url in urls {
        prop_assert_eq!(
            &sharded.serve(url),
            &single.serve(url),
            "sharded serve diverged on {} ({} shards)",
            url,
            sharded.shard_count()
        );
    }
    for domain in single.hosts() {
        prop_assert!(sharded.has_host(&domain));
        let single_host = single.host(&domain).unwrap();
        let sharded_host = sharded.host(&domain).unwrap();
        prop_assert_eq!(sharded_host.paths(), single_host.paths());
        for path in single_host.paths() {
            prop_assert_eq!(sharded_host.page_body(path), single_host.page_body(path));
            prop_assert_eq!(sharded_host.page_html(path), single_host.page_html(path));
        }
    }
    // Shard routing is total and in range; every host is on its shard.
    for domain in sharded.hosts() {
        let idx = sharded.shard_of(&domain);
        prop_assert!(idx < sharded.shard_count());
        prop_assert!(sharded.shards()[idx].has_host(&domain));
    }
}

proptest! {
    /// Sharded ≡ unsharded: the same host table serves field-for-field
    /// identically through any shard count.
    #[test]
    fn sharded_store_serves_like_single_table(
        hosts in proptest::collection::vec(host_strategy(), 0..6)
    ) {
        let (web, urls) = build_web(&hosts);
        let single = web.freeze();
        for &count in SHARD_COUNTS {
            let sharded = ShardedFrozenWeb::from_frozen(&single, count);
            prop_assert_eq!(sharded.shard_count(), count);
            assert_equivalent(&single, &sharded, &urls);
            // Collapsing round-trips to the same table contents.
            let collapsed = sharded.collapse();
            prop_assert_eq!(collapsed.hosts(), single.hosts());
            for url in &urls {
                prop_assert_eq!(&collapsed.serve(url), &single.serve(url));
            }
        }
    }

    /// Overlay edits — which land on *different* shards — drain into a
    /// sharded re-freeze exactly like a single-table freeze: take two
    /// identical webs, apply the same edits to both, freeze one single
    /// and one sharded, and compare field-for-field.
    #[test]
    fn overlay_edits_refreeze_identically_across_shards(
        hosts in proptest::collection::vec(host_strategy(), 1..6),
        edit_stride in 1usize..4,
    ) {
        let (web_a, mut urls) = build_web(&hosts);
        let (web_b, _) = build_web(&hosts);

        for &count in SHARD_COUNTS {
            // Same starting snapshot, two flavours.
            let single_base = web_a.freeze();
            let sharded_base = ShardedFrozenWeb::from_frozen(&single_base, count);
            let mut single_web = single_base.to_web();
            let mut sharded_web = sharded_base.to_web();

            // Edit every stride-th host (these hash onto different shards)
            // and register one brand-new host.
            let edited: Vec<_> = web_b.hosts().into_iter().step_by(edit_stride).collect();
            for domain in &edited {
                for web in [&mut single_web, &mut sharded_web] {
                    web.update_host(domain, |h| {
                        h.add_page("/edited", "<p>overlay edit</p>");
                        h.set_offline(false);
                    });
                }
            }
            let mut fresh = SiteHost::new("fresh-overlay.example.com").unwrap();
            fresh.add_page("/", "<p>new host</p>");
            single_web.register(fresh.clone());
            sharded_web.register(fresh);
            urls.push(Url::parse("https://fresh-overlay.example.com/").unwrap());
            for domain in &edited {
                urls.push(Url::parse(&format!("https://{domain}/edited")).unwrap());
            }

            let single = single_web.freeze();
            let resharded = sharded_web.freeze_sharded(count);
            prop_assert_eq!(resharded.shard_count(), count);
            assert_equivalent(&single, &resharded, &urls);
        }
    }
}

#[test]
fn empty_overlay_freeze_returns_the_same_snapshot() {
    let mut host = SiteHost::new("pin.example.com").unwrap();
    host.add_page("/", "<p>pinned</p>");
    let mut web = SimulatedWeb::new();
    web.register(host);

    // First freeze builds the table; repeated freezes with an empty
    // overlay must hand back the *same* table — a refcount bump, not a
    // rebuild. This is the satellite fix pinned by pointer equality.
    let first = web.freeze();
    let second = web.freeze();
    let third = web.freeze();
    assert!(first.ptr_eq(&second));
    assert!(second.ptr_eq(&third));

    // An overlay write invalidates the snapshot; the next freeze rebuilds
    // (different table), and the one after that is again free.
    web.update_host(
        &rws_domain::DomainName::parse("pin.example.com").unwrap(),
        |h| {
            h.add_page("/new", "<p>edit</p>");
        },
    );
    let fourth = web.freeze();
    assert!(!third.ptr_eq(&fourth));
    assert!(fourth.ptr_eq(&web.freeze()));
}

#[test]
fn empty_overlay_sharded_freeze_reuses_the_store() {
    let hosts: Vec<SiteHost> = (0..20)
        .map(|i| {
            let mut h = SiteHost::new(&format!("s{i}.example.com")).unwrap();
            h.add_page("/", format!("<p>{i}</p>"));
            h
        })
        .collect();
    let sharded = ShardedFrozenWeb::from_hosts(hosts, 4);
    let web = sharded.to_web();

    // Same shard count, empty overlay: the store comes back untouched.
    let again = web.freeze_sharded(4);
    assert!(again.ptr_eq(&sharded));
    // A different count reshards (new store), which then becomes the
    // reusable base at that count.
    let eight = web.freeze_sharded(8);
    assert!(!eight.ptr_eq(&sharded));
    assert_eq!(eight.shard_count(), 8);
    assert!(web.freeze_sharded(8).ptr_eq(&eight));
    // Collapsing through freeze() caches the single table: repeat
    // freezes are again pointer-equal.
    let single = web.freeze();
    assert!(single.ptr_eq(&web.freeze()));
    assert_eq!(single.hosts(), eight.hosts());
}
