//! Integration tests for fault injection, retrying fetches and the
//! redirect-chain timeout attribution fix.

use proptest::prelude::*;
use rws_domain::DomainName;
use rws_net::{
    Fault, FaultInjector, FaultPlan, FaultScale, FetchPolicy, FetchSession, Fetcher, LatencyModel,
    NetError, PageContent, RetryPolicy, SimulatedWeb, SiteHost, Url,
};

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

/// A web where `a.com` redirects to `b.com`, and both hops are slow enough
/// that the chain — but no single hop — blows the deadline.
fn slow_redirect_web() -> SimulatedWeb {
    let mut web = SimulatedWeb::new();
    let mut a = SiteHost::new("a.com").unwrap();
    a.add_content(
        "/start",
        PageContent::Redirect {
            location: "https://b.com/landing".to_string(),
            permanent: false,
        },
    );
    a.set_latency(LatencyModel {
        base_ms: 6_000,
        per_kb_ms: 0,
    });
    web.register(a);
    let mut b = SiteHost::new("b.com").unwrap();
    b.add_page("/landing", "made it");
    b.set_latency(LatencyModel {
        base_ms: 6_000,
        per_kb_ms: 0,
    });
    web.register(b);
    web
}

#[test]
fn mid_chain_timeout_is_attributed_to_the_chain_not_the_final_hop() {
    let policy = FetchPolicy {
        deadline_ms: 10_000, // each hop costs 6s: hop 2 crosses at 12s
        ..FetchPolicy::default()
    };
    let fetcher = Fetcher::with_policy(slow_redirect_web(), policy);
    let err = fetcher
        .get(&Url::parse("https://a.com/start").unwrap())
        .unwrap_err();
    match err {
        NetError::Timeout {
            start,
            url,
            latency_ms,
            deadline_ms,
            redirects_followed,
        } => {
            // The chain entry and the fatal hop are both carried — a
            // mid-chain timeout is no longer misread as b.com alone being
            // slow.
            assert!(start.contains("a.com/start"), "start was {start}");
            assert!(url.contains("b.com/landing"), "fatal hop was {url}");
            assert_eq!(latency_ms, 12_000);
            assert_eq!(deadline_ms, 10_000);
            assert_eq!(redirects_followed, 1);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// A single live host serving one page, with default (fast) latency.
fn one_host_web(host: &str) -> SimulatedWeb {
    let mut web = SimulatedWeb::new();
    let mut site = SiteHost::new(host).unwrap();
    site.add_page("/", "<html>alive</html>");
    web.register(site);
    web
}

/// Search seeds for a plan whose first window on `host` is a connection
/// refusal and whose next few windows are clear — a deterministic
/// "transient outage that recovers" schedule, robust to hash details.
fn refuse_then_recover_plan(host: &DomainName, scale: FaultScale) -> FaultPlan {
    for seed in 0..100_000u64 {
        let plan = FaultPlan::new(seed, scale);
        let burst = scale.burst_len;
        let first_retry = plan.fault_at(host, burst); // ordinal after the burst
        if plan.fault_at(host, 0) == Some(Fault::Refuse) && first_retry.is_none() {
            return plan;
        }
    }
    panic!("no refuse-then-recover seed found for {host}");
}

#[test]
fn retry_recovers_from_a_transient_refusal() {
    let host = dn("flaky.example");
    let scale = FaultScale {
        burst_len: 1, // one-request bursts: the retry lands in a new window
        ..FaultScale::calm()
    };
    let plan = refuse_then_recover_plan(&host, scale);
    let fetcher = Fetcher::new(one_host_web("flaky.example"))
        .with_fault_injector(FaultInjector::new(plan))
        .with_retry(RetryPolicy::standard());
    let mut session = FetchSession::new(1, "recovery");
    let outcome = fetcher.get_with(&Url::parse("https://flaky.example/").unwrap(), &mut session);
    let resp = outcome.result.as_ref().expect("retry should recover");
    assert!(resp.status.is_success());
    assert!(outcome.attempts > 1, "first attempt must have been refused");
    assert!(outcome.backoff_ms > 0, "backoff must have accumulated");
    assert!(outcome.is_degraded());
    assert_eq!(outcome.retries(), outcome.attempts - 1);
    assert_eq!(session.retries_spent(), outcome.retries());
}

#[test]
fn zero_retry_budget_fails_on_first_attempt() {
    let host = dn("flaky.example");
    let scale = FaultScale {
        burst_len: 1,
        ..FaultScale::calm()
    };
    let plan = refuse_then_recover_plan(&host, scale);
    let fetcher = Fetcher::new(one_host_web("flaky.example"))
        .with_fault_injector(FaultInjector::new(plan))
        .with_retry(RetryPolicy::standard());
    let mut session = FetchSession::with_budget(1, "no-budget", 0);
    let outcome = fetcher.get_with(&Url::parse("https://flaky.example/").unwrap(), &mut session);
    assert!(matches!(
        outcome.result,
        Err(NetError::ConnectionRefused { .. })
    ));
    assert_eq!(outcome.attempts, 1);
    assert_eq!(outcome.backoff_ms, 0);
    assert!(!outcome.is_degraded());
}

#[test]
fn non_retryable_errors_are_not_retried() {
    // HTTPS policy violations are persistent: strict policy + http URL.
    let fetcher = Fetcher::with_policy(one_host_web("site.example"), FetchPolicy::strict())
        .with_retry(RetryPolicy::standard());
    let mut session = FetchSession::new(1, "https");
    let outcome = fetcher.get_with(&Url::parse("http://site.example/").unwrap(), &mut session);
    assert!(matches!(
        outcome.result,
        Err(NetError::HttpsRequired { .. })
    ));
    assert_eq!(outcome.attempts, 1);
    assert_eq!(session.retries_spent(), 0);
}

#[test]
fn plain_get_ignores_the_installed_injector() {
    // Fault everything — plain `get` (no session) must still pass through.
    let plan = FaultPlan::new(0, FaultScale::storm().times(1000));
    let fetcher =
        Fetcher::new(one_host_web("site.example")).with_fault_injector(FaultInjector::new(plan));
    let url = Url::parse("https://site.example/").unwrap();
    for _ in 0..8 {
        let resp = fetcher.get(&url).unwrap();
        assert!(resp.status.is_success());
    }
}

#[test]
fn redirect_storm_fault_exhausts_the_redirect_limit() {
    let host = dn("storm.example");
    // Find a seed whose entire first few windows are RedirectStorm, so the
    // whole chain stays inside the storm.
    let scale = FaultScale {
        fault_per_mille: 1000,
        burst_len: 32,
        spike_ms: 60_000,
    };
    let plan = (0..100_000u64)
        .map(|seed| FaultPlan::new(seed, scale))
        .find(|plan| plan.fault_at(&host, 0) == Some(Fault::RedirectStorm))
        .expect("no redirect-storm seed found");
    let fetcher = Fetcher::new(one_host_web("storm.example"))
        .with_fault_injector(FaultInjector::new(plan))
        .with_retry(RetryPolicy::none());
    let mut session = FetchSession::new(1, "storm");
    let outcome = fetcher.get_with(&Url::parse("https://storm.example/").unwrap(), &mut session);
    assert!(matches!(
        outcome.result,
        Err(NetError::TooManyRedirects { .. })
    ));
}

proptest! {
    /// Two sessions with the same seed and label replay the same faulted,
    /// retried request sequence field for field — the oracle-pair property
    /// the whole injector design exists to guarantee.
    #[test]
    fn identical_sessions_replay_identical_fault_schedules(seed in 0u64..1_000_000) {
        let mut web = SimulatedWeb::new();
        for name in ["one.example", "two.example", "three.example"] {
            let mut site = SiteHost::new(name).unwrap();
            site.add_page("/", "<html>body body body body</html>");
            site.add_json("/data.json", r#"{"k": "vvvvvvvvvvvvvv"}"#);
            web.register(site);
        }
        let plan = FaultPlan::new(seed, FaultScale::storm());
        let fetcher = Fetcher::new(web)
            .with_fault_injector(FaultInjector::new(plan))
            .with_retry(RetryPolicy::standard());

        let urls: Vec<Url> = ["one.example", "two.example", "three.example"]
            .iter()
            .flat_map(|h| {
                [format!("https://{h}/"), format!("https://{h}/data.json")]
            })
            .map(|s| Url::parse(&s).unwrap())
            .collect();

        // (attempts, backoff_ms, Ok(status, body_len, latency) | Err(class))
        type OutcomeSummary = (u32, u64, Result<(u16, usize, u64), &'static str>);
        let run = |label: &str| -> Vec<OutcomeSummary> {
            let mut session = FetchSession::new(seed ^ 0xA5A5, label);
            urls.iter()
                .flat_map(|url| {
                    (0..3).map(|_| {
                        let outcome = fetcher.get_with(url, &mut session);
                        let summary = outcome
                            .result
                            .as_ref()
                            .map(|r| (r.status.0, r.body.len(), r.latency_ms))
                            .map_err(|e| e.class());
                        (outcome.attempts, outcome.backoff_ms, summary)
                    }).collect::<Vec<_>>()
                })
                .collect()
        };
        prop_assert_eq!(run("replay"), run("replay"));
    }

    /// A faulted session only ever differs from an unfaulted one in the
    /// transient directions the injector models: with injection disabled
    /// (scale off) the session-aware path behaves exactly like plain `get`.
    #[test]
    fn scale_off_is_indistinguishable_from_no_injector(seed in 0u64..1_000_000) {
        let web = one_host_web("site.example");
        let url = Url::parse("https://site.example/").unwrap();
        let plain = Fetcher::new(web.clone());
        let injected = Fetcher::new(web)
            .with_fault_injector(FaultInjector::new(FaultPlan::new(seed, FaultScale::off())))
            .with_retry(RetryPolicy::standard());
        let mut session = FetchSession::new(seed, "off");
        for _ in 0..4 {
            let a = plain.get(&url).unwrap();
            let outcome = injected.get_with(&url, &mut session);
            let b = outcome.result.unwrap();
            prop_assert_eq!(outcome.attempts, 1);
            prop_assert_eq!(a.status, b.status);
            prop_assert_eq!(a.body_text(), b.body_text());
            prop_assert_eq!(a.latency_ms, b.latency_ms);
        }
    }
}
