//! Property tests for the frozen page store.
//!
//! Contracts, each across arbitrary generated webs:
//!
//! * freezing is observationally invisible: every read (`serve`, `hosts`,
//!   `host_count`, `with_host`) answers identically before the freeze,
//!   after the freeze through the `SimulatedWeb`, and lock-free through
//!   the `FrozenWeb` snapshot;
//! * post-freeze writes land in the overlay: they are visible through the
//!   web (shared by its clones) while the frozen snapshot keeps serving
//!   the pre-freeze answers;
//! * serving is zero-copy: a fetched `Response.body` shares its buffer
//!   with the interned page registered at build time.

use proptest::prelude::*;
use rws_net::{
    Fetcher, FrozenWeb, LatencyModel, PageContent, ServedPage, SimulatedWeb, SiteHost, StatusCode,
    Url,
};

/// One generated page: a path and what it serves.
#[derive(Debug, Clone)]
struct PageSpec {
    path: String,
    content: PageContent,
    robots_header: bool,
}

/// One generated host.
#[derive(Debug, Clone)]
struct HostSpec {
    pages: Vec<PageSpec>,
    offline: bool,
    http_only: bool,
    base_ms: u64,
}

fn content_strategy() -> impl Strategy<Value = PageContent> {
    (0u8..5, "[ -~]{0,120}", "/[a-z]{1,6}", any::<bool>()).prop_map(
        |(kind, body, location, permanent)| match kind {
            0 => PageContent::Html(body.into()),
            1 => PageContent::Json(body.into()),
            2 => PageContent::Text(body.into()),
            3 => PageContent::Redirect {
                location,
                permanent,
            },
            _ => PageContent::Error {
                status: StatusCode::SERVICE_UNAVAILABLE,
                body: body.into(),
            },
        },
    )
}

fn host_strategy() -> impl Strategy<Value = HostSpec> {
    (
        proptest::collection::vec(
            ("/[a-z0-9]{1,8}", content_strategy(), any::<bool>()).prop_map(
                |(path, content, robots_header)| PageSpec {
                    path,
                    content,
                    robots_header,
                },
            ),
            0..5,
        ),
        any::<bool>(),
        any::<bool>(),
        1u64..200,
    )
        .prop_map(|(pages, offline, http_only, base_ms)| HostSpec {
            pages,
            offline,
            http_only,
            base_ms,
        })
}

/// Materialise the generated web plus the probe URLs every contract reads.
fn build_web(hosts: &[HostSpec]) -> (SimulatedWeb, Vec<Url>) {
    let mut web = SimulatedWeb::new();
    let mut urls = Vec::new();
    for (i, spec) in hosts.iter().enumerate() {
        let name = format!("host{i}.example.com");
        let mut host = SiteHost::new(&name).unwrap();
        host.set_offline(spec.offline).set_http_only(spec.http_only);
        host.set_latency(LatencyModel {
            base_ms: spec.base_ms,
            per_kb_ms: 1,
        });
        for page in &spec.pages {
            host.add_content(&page.path, page.content.clone());
            if page.robots_header {
                host.add_header(&page.path, "X-Robots-Tag", "noindex");
            }
        }
        web.register(host);
        for page in &spec.pages {
            urls.push(Url::parse(&format!("https://{name}{}", page.path)).unwrap());
            urls.push(Url::parse(&format!("http://{name}{}", page.path)).unwrap());
        }
        urls.push(Url::parse(&format!("https://{name}/not-registered")).unwrap());
    }
    urls.push(Url::parse("https://unregistered.example.com/").unwrap());
    (web, urls)
}

proptest! {
    /// FrozenWeb reads ≡ pre-freeze SimulatedWeb reads, for every probe
    /// URL and the host-table views, across arbitrary webs.
    #[test]
    fn frozen_reads_match_pre_freeze_reads(hosts in proptest::collection::vec(host_strategy(), 0..6)) {
        let (web, urls) = build_web(&hosts);

        let before: Vec<ServedPage> = urls.iter().map(|u| web.serve(u)).collect();
        let hosts_before = web.hosts();
        let count_before = web.host_count();

        let frozen: FrozenWeb = web.freeze();

        for (url, expected) in urls.iter().zip(&before) {
            prop_assert_eq!(&frozen.serve(url), expected, "frozen serve diverged on {}", url);
            prop_assert_eq!(&web.serve(url), expected, "post-freeze web serve diverged on {}", url);
        }
        prop_assert_eq!(frozen.hosts(), hosts_before.clone());
        prop_assert_eq!(web.hosts(), hosts_before);
        prop_assert_eq!(frozen.host_count(), count_before);
        prop_assert_eq!(web.host_count(), count_before);

        // Per-host views agree too (paths, flags, page lookups).
        for domain in frozen.hosts() {
            let snapshot_paths: Vec<String> = frozen
                .host(&domain)
                .unwrap()
                .paths()
                .iter()
                .map(|p| p.to_string())
                .collect();
            let web_paths = web
                .with_host(&domain, |h| {
                    h.paths().iter().map(|p| p.to_string()).collect::<Vec<_>>()
                })
                .unwrap();
            prop_assert_eq!(snapshot_paths, web_paths);
        }
    }

    /// Post-freeze writes (register + copy-on-write update) are visible
    /// through the web and all of its clones, but never through the frozen
    /// snapshot.
    #[test]
    fn overlay_writes_spare_the_snapshot(hosts in proptest::collection::vec(host_strategy(), 1..5)) {
        let (web, urls) = build_web(&hosts);
        let mut web = web;
        let clone = web.clone();
        let frozen = web.freeze();
        let before: Vec<ServedPage> = urls.iter().map(|u| frozen.serve(u)).collect();

        // Overlay registration: a brand-new host.
        let late_name = "late-arrival.example.com";
        let mut late = SiteHost::new(late_name).unwrap();
        late.add_page("/", "late body");
        web.register(late);
        let late_domain = rws_domain::DomainName::parse(late_name).unwrap();
        prop_assert!(clone.has_host(&late_domain), "clones share the overlay");
        prop_assert!(!frozen.has_host(&late_domain), "snapshot must not see overlay hosts");

        // Copy-on-write mutation of a frozen host.
        let first = frozen.hosts()[0].clone();
        let was_offline = frozen.host(&first).unwrap().is_offline();
        prop_assert!(web.update_host(&first, |h| { h.set_offline(!was_offline); }));
        let mutated = clone.with_host(&first, |h| h.is_offline()).unwrap();
        prop_assert_eq!(mutated, !was_offline, "clones share the CoW edit");
        prop_assert_eq!(frozen.host(&first).unwrap().is_offline(), was_offline);

        // Every snapshot answer is byte-identical to before the writes.
        for (url, expected) in urls.iter().zip(&before) {
            prop_assert_eq!(&frozen.serve(url), expected);
        }
    }

    /// A body fetched through the full client stack shares its bytes with
    /// the interned page — no copy anywhere between registration and
    /// `Response.body`. And the borrowed `body_str` equals the owned
    /// `body_text`.
    #[test]
    fn fetched_bodies_share_the_interned_buffer(body in "[ -~]{1,200}") {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("zero.example.com").unwrap();
        host.add_page("/", body.clone());
        web.register(host);
        let frozen = web.freeze();
        let domain = rws_domain::DomainName::parse("zero.example.com").unwrap();
        let interned = frozen.page_body(&domain, "/").unwrap().bytes();

        let fetcher = Fetcher::new(web);
        let resp = fetcher
            .get(&Url::parse("https://zero.example.com/").unwrap())
            .unwrap();
        prop_assert_eq!(resp.body.as_ptr(), interned.as_ptr(), "body was copied");
        prop_assert_eq!(resp.body_str(), Some(body.as_str()));
        prop_assert_eq!(resp.body_text(), body);
    }
}
