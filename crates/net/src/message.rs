//! HTTP request/response messages and status codes.

use crate::headers::HeaderMap;
use crate::url::Url;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// HTTP request method. Only the methods the study's tooling issues are
/// modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// GET — page fetches, `.well-known` fetches.
    Get,
    /// HEAD — liveness and header-only checks (e.g. `X-Robots-Tag`).
    Head,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
        })
    }
}

/// An HTTP status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 301 Moved Permanently.
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 302 Found.
    pub const FOUND: StatusCode = StatusCode(302);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 410 Gone.
    pub const GONE: StatusCode = StatusCode(410);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// 3xx.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// 4xx.
    pub fn is_client_error(self) -> bool {
        (400..500).contains(&self.0)
    }

    /// 5xx.
    pub fn is_server_error(self) -> bool {
        (500..600).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Request headers.
    pub headers: HeaderMap,
}

impl Request {
    /// Build a GET request for a URL.
    pub fn get(url: Url) -> Request {
        Request {
            method: Method::Get,
            url,
            headers: HeaderMap::new(),
        }
    }

    /// Build a HEAD request for a URL.
    pub fn head(url: Url) -> Request {
        Request {
            method: Method::Head,
            url,
            headers: HeaderMap::new(),
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The URL that ultimately produced this response (after redirects).
    pub url: Url,
    /// Status code.
    pub status: StatusCode,
    /// Response headers.
    pub headers: HeaderMap,
    /// Response body bytes (empty for HEAD responses).
    pub body: Bytes,
    /// Simulated total latency for producing this response, in milliseconds.
    pub latency_ms: u64,
    /// Number of redirects followed to reach this response.
    pub redirects_followed: usize,
}

impl Response {
    /// The body borrowed as UTF-8 text, when it is valid UTF-8 — the
    /// zero-allocation fast path. Every page the simulated web serves is
    /// interned from Rust strings, so this only returns `None` for
    /// hand-built binary bodies.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// The body decoded as UTF-8 (lossily). Allocates; prefer
    /// [`body_str`](Response::body_str) where a borrow suffices.
    pub fn body_text(&self) -> String {
        match self.body_str() {
            Some(text) => text.to_string(),
            None => String::from_utf8_lossy(&self.body).into_owned(),
        }
    }

    /// Parse the body as JSON.
    pub fn body_json(&self) -> Result<serde_json::Value, crate::error::NetError> {
        serde_json::from_slice(&self.body).map_err(|e| crate::error::NetError::InvalidJson {
            url: self.url.to_string(),
            reason: e.to_string(),
        })
    }

    /// The `Content-Type` header, if any.
    pub fn content_type(&self) -> Option<&str> {
        self.headers.get("content-type")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_code_classes() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode(204).is_success());
        assert!(StatusCode::MOVED_PERMANENTLY.is_redirect());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::NOT_FOUND.is_client_error());
        assert!(StatusCode::GONE.is_client_error());
        assert!(StatusCode::INTERNAL_SERVER_ERROR.is_server_error());
        assert!(!StatusCode::OK.is_redirect());
        assert_eq!(StatusCode::OK.to_string(), "200");
    }

    #[test]
    fn request_constructors() {
        let url = Url::parse("https://example.com/x").unwrap();
        let get = Request::get(url.clone());
        assert_eq!(get.method, Method::Get);
        assert_eq!(get.method.to_string(), "GET");
        let head = Request::head(url);
        assert_eq!(head.method, Method::Head);
        assert_eq!(head.method.to_string(), "HEAD");
    }

    #[test]
    fn response_body_helpers() {
        let url = Url::parse("https://example.com/data.json").unwrap();
        let mut headers = HeaderMap::new();
        headers.set("Content-Type", "application/json");
        let resp = Response {
            url,
            status: StatusCode::OK,
            headers,
            body: Bytes::from_static(b"{\"primary\": \"example.com\"}"),
            latency_ms: 12,
            redirects_followed: 0,
        };
        assert_eq!(resp.content_type(), Some("application/json"));
        assert!(resp.body_text().contains("primary"));
        assert_eq!(resp.body_str(), Some(resp.body_text().as_str()));
        let json = resp.body_json().unwrap();
        assert_eq!(json["primary"], "example.com");
    }

    #[test]
    fn body_str_rejects_invalid_utf8_but_body_text_is_lossy() {
        let url = Url::parse("https://example.com/bin").unwrap();
        let resp = Response {
            url,
            status: StatusCode::OK,
            headers: HeaderMap::new(),
            body: Bytes::from_static(b"ok \xFF"),
            latency_ms: 0,
            redirects_followed: 0,
        };
        assert_eq!(resp.body_str(), None);
        assert_eq!(resp.body_text(), "ok \u{FFFD}");
    }

    #[test]
    fn response_body_json_error_carries_url() {
        let url = Url::parse("https://example.com/broken.json").unwrap();
        let resp = Response {
            url,
            status: StatusCode::OK,
            headers: HeaderMap::new(),
            body: Bytes::from_static(b"not json"),
            latency_ms: 0,
            redirects_followed: 0,
        };
        let err = resp.body_json().unwrap_err();
        assert!(err.to_string().contains("broken.json"));
    }
}
