//! Deterministic transient-fault injection over the simulated web.
//!
//! The live Web the paper's validation bot and crawler face fails
//! *transiently*: slow hosts, 5xx bursts, refused connections, truncated
//! JSON, redirect storms. The simulated web models only permanent faults (a
//! static `offline` flag, a fixed latency model), so this module layers a
//! [`FaultInjector`] between the fetcher and [`ServedPage`] resolution.
//!
//! # Determinism
//!
//! The whole point of the simulation is that a pooled replay, its
//! sequential twin and a one-client-at-a-time oracle agree field for field.
//! Fault schedules therefore cannot depend on wall clock, thread
//! interleaving or shared mutable state. A [`FaultPlan`] decides faults as
//! a **pure function** of `(plan seed, host hash, per-host request
//! ordinal)`:
//!
//! * the per-host ordinal lives in a caller-owned [`FetchSession`] — one
//!   per simulated client or validation run, never shared between clients —
//!   so a client sees the same fault schedule no matter how it is
//!   scheduled;
//! * ordinals are grouped into *burst windows* of
//!   [`FaultScale::burst_len`] consecutive requests and the fault decision
//!   is made per window, which is what turns isolated coin flips into the
//!   5xx bursts and redirect storms real outages look like;
//! * retry backoff jitter is drawn from the session's derived rng stream
//!   (see [`FetchSession::new`]), never from time.
//!
//! Faults model outages of *live* hosts: `NoSuchHost`, statically offline
//! and TLS-less answers pass through the injector untouched.

use crate::message::StatusCode;
use crate::url::Url;
use crate::web::{LatencyModel, PageBody, PageContent, ServedPage};
use rws_domain::DomainName;
use rws_stats::Xoshiro256StarStar;
use std::collections::HashMap;

/// Default per-session retry budget (see [`FetchSession::with_budget`]).
pub const DEFAULT_RETRY_BUDGET: u32 = 64;

/// How hostile the injected weather is. Mirrors `SurveyScale`/`LoadScale`:
/// a couple of named base configurations plus a multiplier for scaled
/// benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultScale {
    /// Per-mille probability that a given `(host, burst window)` is
    /// faulted. 0 disables injection entirely.
    pub fault_per_mille: u32,
    /// Consecutive per-host request ordinals covered by one fault decision
    /// (the burst length of a 5xx burst or redirect storm).
    pub burst_len: u32,
    /// Extra latency a spike adds, in simulated milliseconds. Chosen to
    /// blow past any reasonable [`FetchPolicy::deadline_ms`]
    /// (`crate::FetchPolicy`), so spikes surface as timeouts.
    pub spike_ms: u64,
}

impl FaultScale {
    /// Background weather: a few percent of windows fault.
    pub fn calm() -> FaultScale {
        FaultScale {
            fault_per_mille: 30,
            burst_len: 4,
            spike_ms: 60_000,
        }
    }

    /// A full fault storm: a quarter of all windows fault. The burst
    /// length (3) is deliberately shorter than
    /// [`RetryPolicy::standard`](crate::RetryPolicy::standard)'s four
    /// attempts, so a retry ladder started anywhere in a burst always
    /// reaches the next window — outages are survivable, not absorbing.
    pub fn storm() -> FaultScale {
        FaultScale {
            fault_per_mille: 250,
            burst_len: 3,
            spike_ms: 60_000,
        }
    }

    /// Injection disabled (every request passes through).
    pub fn off() -> FaultScale {
        FaultScale {
            fault_per_mille: 0,
            burst_len: 1,
            spike_ms: 0,
        }
    }

    /// Scale the fault rate by `factor`, saturating at 100%.
    pub fn times(self, factor: u32) -> FaultScale {
        FaultScale {
            fault_per_mille: (self.fault_per_mille.saturating_mul(factor)).min(1000),
            ..self
        }
    }
}

/// One injected transient fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The connection is refused for the duration of the window.
    Refuse,
    /// The response arrives, but this much later — past any sane deadline.
    LatencySpike {
        /// Extra simulated milliseconds added to the host's base latency.
        extra_ms: u64,
    },
    /// The server answers 500/503 instead of the real content.
    ServerError {
        /// The injected status.
        status: StatusCode,
    },
    /// The body is cut short (garbling JSON payloads mid-document).
    TruncateBody {
        /// How much of the body survives, in per-mille of its length.
        keep_per_mille: u32,
    },
    /// The server redirects back to the requested path, storming the
    /// fetcher's redirect limit until the burst window ends.
    RedirectStorm,
}

/// The SplitMix64 finalizer: a cheap, well-avalanched bijection used to
/// hash `(seed, host, window)` into a fault decision.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the host name — the host half of the fault-decision key,
/// shared with [`FetchSession`]'s ordinal table.
pub fn host_hash(host: &DomainName) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in host.as_str().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic fault schedule: seed + scale, evaluated as a pure
/// function per `(host, ordinal)`. `Copy`, so targets and engines embed it
/// by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the schedule (independent of any run seed).
    pub seed: u64,
    /// Fault rate, burst length and spike size.
    pub scale: FaultScale,
}

impl FaultPlan {
    /// A plan over the given seed and scale.
    pub fn new(seed: u64, scale: FaultScale) -> FaultPlan {
        FaultPlan { seed, scale }
    }

    /// The fault (if any) injected for the `ordinal`-th request a session
    /// makes to `host`. Pure: same inputs, same answer, on every replay.
    pub fn fault_at(&self, host: &DomainName, ordinal: u32) -> Option<Fault> {
        if self.scale.fault_per_mille == 0 {
            return None;
        }
        let window = ordinal / self.scale.burst_len.max(1);
        let x = mix(mix(self.seed ^ host_hash(host)) ^ u64::from(window));
        if (x % 1000) as u32 >= self.scale.fault_per_mille {
            return None;
        }
        // Decorrelate the kind pick from the fault roll.
        let pick = mix(x);
        Some(match pick % 5 {
            0 => Fault::Refuse,
            1 => Fault::LatencySpike {
                extra_ms: self.scale.spike_ms,
            },
            2 => Fault::ServerError {
                status: if (pick >> 20) & 1 == 0 {
                    StatusCode::INTERNAL_SERVER_ERROR
                } else {
                    StatusCode::SERVICE_UNAVAILABLE
                },
            },
            3 => Fault::TruncateBody {
                // Keep 5%–75% of the body: always enough damage to garble
                // a JSON document, never a no-op.
                keep_per_mille: 50 + ((pick >> 8) % 700) as u32,
            },
            _ => Fault::RedirectStorm,
        })
    }
}

/// Applies a [`FaultPlan`] to raw [`ServedPage`]s on the fetcher's serve
/// path. Stateless (the per-host ordinal comes in from the caller's
/// [`FetchSession`]), so one injector is safely shared by every clone of a
/// fetcher.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Pre-interned body for injected 5xx answers, so the fault path does
    /// not allocate per request.
    error_body: PageBody,
}

impl FaultInjector {
    /// An injector executing the given plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            error_body: PageBody::from("injected transient server error"),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Overlay the fault (if the plan schedules one for this `(host,
    /// ordinal)`) onto what the store served. Hosts that do not exist or
    /// are permanently down keep their permanent behaviour — faults model
    /// transient outages of live hosts.
    pub fn apply(&self, url: &Url, ordinal: u32, served: ServedPage) -> ServedPage {
        let Some(fault) = self.plan.fault_at(&url.host, ordinal) else {
            return served;
        };
        let (content, extra_headers, latency) = match served {
            ServedPage::Content {
                content,
                extra_headers,
                latency,
            } => (Some(content), extra_headers, latency),
            ServedPage::Missing { latency } => (None, None, latency),
            permanent => return permanent,
        };
        let rebuild = |content: Option<PageContent>,
                       extra_headers: Option<std::sync::Arc<crate::HeaderMap>>,
                       latency: LatencyModel| match content {
            Some(content) => ServedPage::Content {
                content,
                extra_headers,
                latency,
            },
            None => ServedPage::Missing { latency },
        };
        match fault {
            Fault::Refuse => ServedPage::Refused,
            Fault::LatencySpike { extra_ms } => {
                let latency = LatencyModel {
                    base_ms: latency.base_ms.saturating_add(extra_ms),
                    ..latency
                };
                rebuild(content, extra_headers, latency)
            }
            Fault::ServerError { status } => ServedPage::Content {
                content: PageContent::Error {
                    status,
                    body: self.error_body.clone(),
                },
                extra_headers: None,
                latency,
            },
            Fault::TruncateBody { keep_per_mille } => {
                let truncated = content.map(|c| truncate_content(c, keep_per_mille));
                rebuild(truncated, extra_headers, latency)
            }
            Fault::RedirectStorm => ServedPage::Content {
                content: PageContent::Redirect {
                    // Back to the very path that was asked for: consecutive
                    // ordinals stay inside the burst window, so the storm
                    // sustains itself until the window ends or the fetcher
                    // gives up with too-many-redirects.
                    location: url.path.clone(),
                    permanent: false,
                },
                extra_headers: None,
                latency,
            },
        }
    }
}

/// Cut a body-carrying content short; redirects have no body to damage.
fn truncate_content(content: PageContent, keep_per_mille: u32) -> PageContent {
    let cut = |body: &PageBody| {
        let keep = (body.len() as u64 * u64::from(keep_per_mille) / 1000) as usize;
        body.truncated(keep)
    };
    match content {
        PageContent::Html(body) => PageContent::Html(cut(&body)),
        PageContent::Json(body) => PageContent::Json(cut(&body)),
        PageContent::Text(body) => PageContent::Text(cut(&body)),
        PageContent::Error { status, body } => PageContent::Error {
            status,
            body: cut(&body),
        },
        redirect @ PageContent::Redirect { .. } => redirect,
    }
}

/// Caller-owned per-session fetch state: the per-host request ordinals the
/// fault plan keys on, the derived rng stream backoff jitter draws from,
/// and the session-wide retry budget.
///
/// One session per independent replay unit (a load client, one validation
/// run) — **never** shared across clients, or the pooled ≡ sequential
/// equivalence would break the moment faults trigger retries.
#[derive(Debug, Clone)]
pub struct FetchSession {
    rng: Xoshiro256StarStar,
    /// Requests issued so far per host, keyed by [`host_hash`]. (A 64-bit
    /// hash collision would merge two hosts' ordinal counters — still
    /// deterministic, just a different schedule.)
    ordinals: HashMap<u64, u32>,
    retry_budget: u32,
    retries_spent: u32,
}

impl FetchSession {
    /// A session whose rng stream is derived from `(seed, label)` — use a
    /// stable per-client label so replays agree.
    pub fn new(seed: u64, label: &str) -> FetchSession {
        FetchSession::with_budget(seed, label, DEFAULT_RETRY_BUDGET)
    }

    /// A session with an explicit retry budget: once `budget` retries have
    /// been spent across the whole session, further failures return
    /// immediately.
    pub fn with_budget(seed: u64, label: &str, budget: u32) -> FetchSession {
        FetchSession {
            rng: Xoshiro256StarStar::new(seed).derive(label),
            ordinals: HashMap::new(),
            retry_budget: budget,
            retries_spent: 0,
        }
    }

    /// The next request ordinal for `host` (0 for the first request), and
    /// advance the counter.
    pub fn next_ordinal(&mut self, host: &DomainName) -> u32 {
        let slot = self.ordinals.entry(host_hash(host)).or_insert(0);
        let ordinal = *slot;
        *slot = slot.wrapping_add(1);
        ordinal
    }

    /// Retries spent so far across the session.
    pub fn retries_spent(&self) -> u32 {
        self.retries_spent
    }

    /// Retry budget remaining.
    pub fn retry_budget_left(&self) -> u32 {
        self.retry_budget.saturating_sub(self.retries_spent)
    }

    /// Spend one retry from the budget; `false` when the budget is gone.
    pub(crate) fn try_spend_retry(&mut self) -> bool {
        if self.retries_spent >= self.retry_budget {
            return false;
        }
        self.retries_spent += 1;
        true
    }

    /// The session's derived rng stream (backoff jitter draws from here —
    /// never from wall clock).
    pub(crate) fn rng_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn schedule_is_pure_and_window_constant() {
        let plan = FaultPlan::new(0xBEEF, FaultScale::storm());
        let hosts = [dn("alpha.com"), dn("beta.org"), dn("gamma.net")];
        for host in &hosts {
            for ordinal in 0..256u32 {
                // Pure: asking twice (or in any order) gives the same answer.
                assert_eq!(plan.fault_at(host, ordinal), plan.fault_at(host, ordinal));
                // Window-constant: every ordinal in a burst window shares
                // the window's decision.
                let window_base = ordinal - ordinal % plan.scale.burst_len;
                assert_eq!(
                    plan.fault_at(host, ordinal),
                    plan.fault_at(host, window_base),
                    "{host} ordinal {ordinal}"
                );
            }
        }
    }

    #[test]
    fn fault_rate_tracks_the_scale() {
        let hosts: Vec<DomainName> = (0..64).map(|i| dn(&format!("h{i}.example"))).collect();
        for (scale, lo, hi) in [
            (FaultScale::off(), 0.0, 0.0),
            (FaultScale::calm(), 0.005, 0.08),
            (FaultScale::storm(), 0.18, 0.33),
            (FaultScale::calm().times(1000), 1.0, 1.0),
        ] {
            let plan = FaultPlan::new(7, scale);
            let mut faulted = 0u32;
            let mut total = 0u32;
            for host in &hosts {
                for window in 0..32u32 {
                    total += 1;
                    if plan
                        .fault_at(host, window * scale.burst_len.max(1))
                        .is_some()
                    {
                        faulted += 1;
                    }
                }
            }
            let rate = f64::from(faulted) / f64::from(total);
            assert!(
                (lo..=hi).contains(&rate),
                "scale {scale:?}: rate {rate} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(1, FaultScale::storm());
        let b = FaultPlan::new(2, FaultScale::storm());
        let host = dn("seed-split.example");
        let schedule = |plan: &FaultPlan| -> Vec<Option<Fault>> {
            (0..128).map(|o| plan.fault_at(&host, o)).collect()
        };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn permanent_failures_pass_through_untouched() {
        // A plan that faults every window, every kind reachable.
        let plan = FaultPlan::new(3, FaultScale::storm().times(1000));
        let injector = FaultInjector::new(plan);
        let url = Url::parse("https://perm.example/x").unwrap();
        for ordinal in 0..32 {
            assert_eq!(
                injector.apply(&url, ordinal, ServedPage::NoSuchHost),
                ServedPage::NoSuchHost
            );
            assert_eq!(
                injector.apply(&url, ordinal, ServedPage::Refused),
                ServedPage::Refused
            );
            assert_eq!(
                injector.apply(&url, ordinal, ServedPage::TlsUnavailable),
                ServedPage::TlsUnavailable
            );
        }
    }

    #[test]
    fn every_fault_kind_shapes_served_content_as_documented() {
        let plan = FaultPlan::new(11, FaultScale::storm().times(1000));
        let injector = FaultInjector::new(plan);
        let latency = LatencyModel::default();
        let body = PageBody::from(r#"{"k": "vvvvvvvvvvvvvvvvvvvvvvvvvvvvvv"}"#);
        let mut seen = std::collections::HashSet::new();
        // Distinct hosts draw distinct windows; sweep until every kind of
        // fault has been observed against live content.
        for i in 0..512 {
            let url = Url::parse(&format!("https://kind{i}.example/data.json")).unwrap();
            let Some(fault) = plan.fault_at(&url.host, 0) else {
                continue;
            };
            let served = ServedPage::Content {
                content: PageContent::Json(body.clone()),
                extra_headers: None,
                latency,
            };
            let out = injector.apply(&url, 0, served);
            match fault {
                Fault::Refuse => assert_eq!(out, ServedPage::Refused),
                Fault::LatencySpike { extra_ms } => match out {
                    ServedPage::Content { latency: l, .. } => {
                        assert_eq!(l.base_ms, latency.base_ms + extra_ms)
                    }
                    other => panic!("spike produced {other:?}"),
                },
                Fault::ServerError { status } => match out {
                    ServedPage::Content {
                        content: PageContent::Error { status: s, .. },
                        ..
                    } => assert_eq!(s, status),
                    other => panic!("server error produced {other:?}"),
                },
                Fault::TruncateBody { .. } => match out {
                    ServedPage::Content {
                        content: PageContent::Json(b),
                        ..
                    } => assert!(b.len() < body.len(), "body not truncated"),
                    other => panic!("truncate produced {other:?}"),
                },
                Fault::RedirectStorm => match out {
                    ServedPage::Content {
                        content: PageContent::Redirect { location, .. },
                        ..
                    } => assert_eq!(location, "/data.json"),
                    other => panic!("storm produced {other:?}"),
                },
            }
            seen.insert(std::mem::discriminant(&fault));
        }
        assert_eq!(seen.len(), 5, "not every fault kind was exercised");
    }

    #[test]
    fn session_ordinals_are_per_host_and_order_independent() {
        let a = dn("a.example");
        let b = dn("b.example");
        // Interleaved queries...
        let mut interleaved = FetchSession::new(1, "s");
        let mut log = Vec::new();
        for i in 0..6 {
            let host = if i % 2 == 0 { &a } else { &b };
            log.push((host.clone(), interleaved.next_ordinal(host)));
        }
        // ...advance each host's counter independently.
        assert_eq!(
            log.iter().map(|(_, o)| *o).collect::<Vec<_>>(),
            vec![0, 0, 1, 1, 2, 2]
        );
        // Sequential per-host queries see the same ordinals.
        let mut sequential = FetchSession::new(1, "s");
        for want in 0..3 {
            assert_eq!(sequential.next_ordinal(&a), want);
        }
        for want in 0..3 {
            assert_eq!(sequential.next_ordinal(&b), want);
        }
    }

    #[test]
    fn retry_budget_is_spent_then_refused() {
        let mut session = FetchSession::with_budget(1, "b", 2);
        assert_eq!(session.retry_budget_left(), 2);
        assert!(session.try_spend_retry());
        assert!(session.try_spend_retry());
        assert!(!session.try_spend_retry());
        assert_eq!(session.retries_spent(), 2);
        assert_eq!(session.retry_budget_left(), 0);
    }
}
