//! The fetcher client: policy-driven retrieval from the simulated web.

use crate::error::NetError;
use crate::fault::{FaultInjector, FaultPlan, FetchSession};
use crate::headers::HeaderMap;
use crate::message::{Method, Request, Response, StatusCode};
use crate::url::Url;
use crate::web::{PageContent, ServedPage, SimulatedWeb};
use bytes::Bytes;
use parking_lot::Mutex;
use rws_stats::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Client-side fetch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchPolicy {
    /// Maximum number of redirects to follow before giving up.
    pub max_redirects: usize,
    /// If true, any non-https URL (initial or redirect target) fails with
    /// [`NetError::HttpsRequired`] — the posture of the RWS validation bot.
    pub require_https: bool,
    /// Simulated deadline in milliseconds; responses whose accumulated
    /// latency exceeds it fail with [`NetError::Timeout`].
    pub deadline_ms: u64,
}

impl Default for FetchPolicy {
    fn default() -> Self {
        FetchPolicy {
            max_redirects: 5,
            require_https: false,
            deadline_ms: 30_000,
        }
    }
}

impl FetchPolicy {
    /// The policy used by the RWS validation bot: HTTPS required, few
    /// redirects, a short deadline.
    pub fn strict() -> FetchPolicy {
        FetchPolicy {
            max_redirects: 3,
            require_https: true,
            deadline_ms: 10_000,
        }
    }
}

/// How (and whether) a fetcher retries retryable failures.
///
/// Backoff is *simulated*: the milliseconds accumulate on the
/// [`FetchOutcome`] instead of being slept, and the jitter is drawn from
/// the caller's [`FetchSession`] rng stream — never from wall clock — so
/// retry schedules replay identically, pooled or sequential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included); 1 disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated milliseconds.
    pub base_backoff_ms: u64,
    /// Cap on the exponential backoff, in simulated milliseconds.
    pub max_backoff_ms: u64,
}

impl RetryPolicy {
    /// No retries: every request gets exactly one attempt. This is the
    /// default, so plain fetchers behave exactly as they did before retry
    /// existed.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
        }
    }

    /// The standard production posture: up to 4 attempts, exponential
    /// backoff 50ms → 3.2s with equal jitter.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 3_200,
        }
    }

    /// Simulated backoff before the retry that follows `failed_attempts`
    /// failures (so the first retry passes 1). "Equal jitter": half the
    /// capped exponential is kept, the other half is drawn from `rng` — a
    /// derived stream, to keep replays deterministic.
    pub fn backoff_for(&self, failed_attempts: u32, rng: &mut impl Rng) -> u64 {
        let shift = failed_attempts.saturating_sub(1).min(16);
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ms.max(self.base_backoff_ms));
        if exp <= 1 {
            return exp;
        }
        exp / 2 + rng.range_u64(0, exp / 2 + 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// What a retrying fetch produced, beyond the result itself: how many
/// attempts it took and how much simulated backoff accumulated. A result
/// that needed more than one attempt is *degraded* — correct, but obtained
/// through transient failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchOutcome<T = Response> {
    /// The final result (of the last attempt).
    pub result: Result<T, NetError>,
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Total simulated backoff spent between attempts, in milliseconds.
    pub backoff_ms: u64,
}

impl<T> FetchOutcome<T> {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// True when the fetch succeeded but only after retrying — the
    /// graceful-degradation signal consumers aggregate.
    pub fn is_degraded(&self) -> bool {
        self.result.is_ok() && self.attempts > 1
    }

    /// Unwrap into the plain result, discarding the retry accounting.
    pub fn into_result(self) -> Result<T, NetError> {
        self.result
    }
}

/// Number of counter shards backing the default (unlogged) request tally.
const COUNTER_SHARDS: usize = 16;

/// One cache line per counter so clones incrementing different shards never
/// share a line (the load engine issues hundreds of thousands of requests
/// across pool workers through clones of one fetcher).
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedCounter {
    value: AtomicU64,
}

/// A fixed set of relaxed atomic counters shared by every clone of a
/// fetcher. Each clone gets its own preferred shard at clone time, so the
/// per-request hot path is a single uncontended `fetch_add` — no lock, no
/// allocation — while `requests_issued` still reports the family-wide
/// total by summing shards.
#[derive(Debug, Default)]
struct CounterShards {
    counts: [PaddedCounter; COUNTER_SHARDS],
    /// Round-robin assignment of shards to clones.
    next: AtomicUsize,
}

impl CounterShards {
    fn assign(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS
    }

    fn total(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.value.load(Ordering::Relaxed))
            .sum()
    }
}

/// Where issued requests are accounted: the default path counts them on a
/// sharded atomic (no global lock, no per-hop `Request` construction); the
/// opt-in path ([`Fetcher::with_request_log`]) keeps the full log behind a
/// mutex for tests and small crawls that want to inspect traffic.
#[derive(Debug)]
enum RequestSink {
    Count {
        shards: Arc<CounterShards>,
        shard: usize,
    },
    Log(Arc<Mutex<Vec<Request>>>),
}

impl RequestSink {
    fn fresh_counting() -> RequestSink {
        let shards = Arc::new(CounterShards::default());
        // Shard 0 goes to the original; clones take 1, 2, ... round-robin.
        shards.next.store(1, Ordering::Relaxed);
        RequestSink::Count { shards, shard: 0 }
    }

    /// The sink a cloned fetcher gets: same family-wide accounting, own
    /// preferred shard so concurrent clones do not contend.
    fn fork(&self) -> RequestSink {
        match self {
            RequestSink::Count { shards, .. } => RequestSink::Count {
                shards: Arc::clone(shards),
                shard: shards.assign(),
            },
            RequestSink::Log(log) => RequestSink::Log(Arc::clone(log)),
        }
    }

    #[inline]
    fn note(&self, method: Method, url: &Url) {
        match self {
            RequestSink::Count { shards, shard } => {
                shards.counts[*shard].value.fetch_add(1, Ordering::Relaxed);
            }
            RequestSink::Log(log) => log.lock().push(Request {
                method,
                url: url.clone(),
                headers: HeaderMap::new(),
            }),
        }
    }
}

/// A deterministic HTTP client over a [`SimulatedWeb`].
///
/// The fetcher counts every request it issues (including redirect hops) on
/// a lock-free sharded counter shared by all of its clones, so experiments
/// can report crawl sizes from any copy. Full per-request logging — every
/// hop materialised as a [`Request`] behind a mutex — is opt-in via
/// [`Fetcher::with_request_log`], because under concurrent load that one
/// process-wide lock is exactly the contention the load engine exists to
/// measure.
#[derive(Debug)]
pub struct Fetcher {
    web: SimulatedWeb,
    policy: FetchPolicy,
    sink: RequestSink,
    /// Shared by every clone; injection additionally requires the caller to
    /// pass a [`FetchSession`] (the session-aware entry points), so plain
    /// `get`/`head` stay on the zero-overhead path even when an injector is
    /// installed.
    faults: Option<Arc<FaultInjector>>,
    retry: RetryPolicy,
}

impl Clone for Fetcher {
    fn clone(&self) -> Fetcher {
        Fetcher {
            web: self.web.clone(),
            policy: self.policy,
            sink: self.sink.fork(),
            faults: self.faults.clone(),
            retry: self.retry,
        }
    }
}

impl Fetcher {
    /// Create a fetcher with the default policy.
    pub fn new(web: SimulatedWeb) -> Fetcher {
        Fetcher::with_policy(web, FetchPolicy::default())
    }

    /// Create a fetcher with an explicit policy.
    pub fn with_policy(web: SimulatedWeb, policy: FetchPolicy) -> Fetcher {
        Fetcher {
            web,
            policy,
            sink: RequestSink::fresh_counting(),
            faults: None,
            retry: RetryPolicy::none(),
        }
    }

    /// Install (or clear) a fault injector, shared with every clone made
    /// afterwards. Faults only fire on session-aware fetches
    /// ([`get_with`](Fetcher::get_with) and friends).
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector.map(Arc::new);
    }

    /// Builder form of [`set_fault_injector`](Fetcher::set_fault_injector).
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Fetcher {
        self.set_fault_injector(Some(injector));
        self
    }

    /// Replace the retry policy used by the retrying entry points.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Builder form of [`set_retry`](Fetcher::set_retry).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Fetcher {
        self.set_retry(retry);
        self
    }

    /// The installed injector's plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.as_ref().map(|i| i.plan())
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Switch this fetcher (and every clone made from it afterwards) to
    /// full request logging: each hop is recorded as a [`Request`] in a
    /// shared log readable via [`request_log`](Fetcher::request_log).
    /// Counts issued before the switch are discarded.
    pub fn with_request_log(mut self) -> Fetcher {
        self.sink = RequestSink::Log(Arc::new(Mutex::new(Vec::new())));
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> FetchPolicy {
        self.policy
    }

    /// The underlying simulated web.
    pub fn web(&self) -> &SimulatedWeb {
        &self.web
    }

    /// Number of requests issued so far (including redirect hops) by this
    /// fetcher and every clone sharing its accounting.
    pub fn requests_issued(&self) -> usize {
        match &self.sink {
            RequestSink::Count { shards, .. } => shards.total() as usize,
            RequestSink::Log(log) => log.lock().len(),
        }
    }

    /// A copy of the request log, or `None` unless this fetcher was built
    /// with [`with_request_log`](Fetcher::with_request_log) — the default
    /// path never materialises requests or takes a lock.
    pub fn request_log(&self) -> Option<Vec<Request>> {
        match &self.sink {
            RequestSink::Count { .. } => None,
            RequestSink::Log(log) => Some(log.lock().clone()),
        }
    }

    /// GET a URL, following redirects per policy. Session-less: never
    /// faulted, never retried — the zero-overhead path.
    pub fn get(&self, url: &Url) -> Result<Response, NetError> {
        self.execute(Method::Get, url, None)
    }

    /// HEAD a URL, following redirects per policy. The response body is
    /// always empty but headers and status are as GET would produce.
    pub fn head(&self, url: &Url) -> Result<Response, NetError> {
        self.execute(Method::Head, url, None)
    }

    /// GET a URL and require a success status: any non-2xx answer becomes
    /// [`NetError::HttpStatus`] carrying the real status code instead of
    /// erasing it.
    pub fn get_success(&self, url: &Url) -> Result<Response, NetError> {
        let resp = self.get(url)?;
        if !resp.status.is_success() {
            return Err(NetError::HttpStatus {
                url: resp.url.to_string(),
                status: resp.status,
            });
        }
        Ok(resp)
    }

    /// GET a URL and parse the body as JSON. Non-success statuses surface
    /// as [`NetError::HttpStatus`] (see [`get_success`](Fetcher::get_success)).
    pub fn get_json(&self, url: &Url) -> Result<serde_json::Value, NetError> {
        self.get_success(url)?.body_json()
    }

    /// A single session-aware GET attempt: the session's per-host ordinals
    /// advance, and the installed fault injector (if any) may fault it.
    pub fn get_once(&self, url: &Url, session: &mut FetchSession) -> Result<Response, NetError> {
        self.execute(Method::Get, url, Some(session))
    }

    /// A single session-aware HEAD attempt.
    pub fn head_once(&self, url: &Url, session: &mut FetchSession) -> Result<Response, NetError> {
        self.execute(Method::Head, url, Some(session))
    }

    /// A single session-aware success-requiring GET attempt: 5xx (and any
    /// other non-2xx) surfaces as a retryable-or-not
    /// [`NetError::HttpStatus`], which is what lets the retrying path
    /// re-check transient server errors. (Plain browsing clients instead
    /// record a 5xx as a served response — browsers do not auto-retry
    /// pages — so they use [`get_with`](Fetcher::get_with).)
    pub fn get_success_once(
        &self,
        url: &Url,
        session: &mut FetchSession,
    ) -> Result<Response, NetError> {
        let resp = self.get_once(url, session)?;
        if !resp.status.is_success() {
            return Err(NetError::HttpStatus {
                url: resp.url.to_string(),
                status: resp.status,
            });
        }
        Ok(resp)
    }

    /// Run `attempt` under this fetcher's [`RetryPolicy`]: retry while the
    /// error [is retryable](NetError::is_retryable), attempts remain and
    /// the session's retry budget holds, accumulating simulated backoff
    /// (with jitter from the session's rng stream) into the returned
    /// [`FetchOutcome`].
    pub fn retrying<T>(
        &self,
        session: &mut FetchSession,
        mut attempt: impl FnMut(&Fetcher, &mut FetchSession) -> Result<T, NetError>,
    ) -> FetchOutcome<T> {
        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut backoff_ms = 0u64;
        loop {
            attempts += 1;
            match attempt(self, session) {
                Ok(value) => {
                    return FetchOutcome {
                        result: Ok(value),
                        attempts,
                        backoff_ms,
                    }
                }
                Err(err) => {
                    if attempts >= max_attempts || !err.is_retryable() || !session.try_spend_retry()
                    {
                        return FetchOutcome {
                            result: Err(err),
                            attempts,
                            backoff_ms,
                        };
                    }
                    backoff_ms += self.retry.backoff_for(attempts, session.rng_mut());
                }
            }
        }
    }

    /// GET with faults and retries: the session-aware, policy-retrying
    /// counterpart of [`get`](Fetcher::get).
    pub fn get_with(&self, url: &Url, session: &mut FetchSession) -> FetchOutcome {
        self.retrying(session, |fetcher, session| fetcher.get_once(url, session))
    }

    /// HEAD with faults and retries.
    pub fn head_with(&self, url: &Url, session: &mut FetchSession) -> FetchOutcome {
        self.retrying(session, |fetcher, session| fetcher.head_once(url, session))
    }

    fn execute(
        &self,
        method: Method,
        start: &Url,
        mut session: Option<&mut FetchSession>,
    ) -> Result<Response, NetError> {
        let mut current = start.clone();
        let mut total_latency: u64 = 0;
        let mut redirects = 0usize;

        loop {
            if self.policy.require_https && !current.is_https() {
                return Err(NetError::HttpsRequired {
                    url: current.to_string(),
                });
            }
            self.sink.note(method, &current);

            // The fault overlay fires only when an injector is installed
            // AND the caller supplied a session (the ordinal source): one
            // `Option` match per hop otherwise — plain fetches pay nothing.
            let served = match (&self.faults, session.as_deref_mut()) {
                (Some(injector), Some(session)) => {
                    let ordinal = session.next_ordinal(&current.host);
                    injector.apply(&current, ordinal, self.web.serve(&current))
                }
                _ => self.web.serve(&current),
            };
            // `body` is a refcount bump of the interned page, never a copy.
            let (status, mut headers, body, latency) = match served {
                ServedPage::NoSuchHost => {
                    return Err(NetError::HostNotFound {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::Refused => {
                    return Err(NetError::ConnectionRefused {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::TlsUnavailable => {
                    return Err(NetError::ConnectionRefused {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::Missing { latency } => (
                    StatusCode::NOT_FOUND,
                    HeaderMap::new(),
                    Bytes::new(),
                    latency.latency_for(0),
                ),
                ServedPage::Content {
                    content,
                    extra_headers,
                    latency,
                } => {
                    // The response mutates its headers (Content-Type,
                    // Location), so materialise a copy only when the path
                    // actually registered extra headers — the shared handle
                    // itself was never cloned by `serve`.
                    let mut h = extra_headers
                        .map(|shared| HeaderMap::clone(&shared))
                        .unwrap_or_default();
                    match content {
                        PageContent::Html(html) => {
                            let lat = latency.latency_for(html.len());
                            h.set("Content-Type", "text/html; charset=utf-8");
                            (StatusCode::OK, h, html.bytes(), lat)
                        }
                        PageContent::Json(json) => {
                            let lat = latency.latency_for(json.len());
                            h.set("Content-Type", "application/json");
                            (StatusCode::OK, h, json.bytes(), lat)
                        }
                        PageContent::Text(text) => {
                            let lat = latency.latency_for(text.len());
                            h.set("Content-Type", "text/plain; charset=utf-8");
                            (StatusCode::OK, h, text.bytes(), lat)
                        }
                        PageContent::Redirect {
                            location,
                            permanent,
                        } => {
                            let status = if permanent {
                                StatusCode::MOVED_PERMANENTLY
                            } else {
                                StatusCode::FOUND
                            };
                            h.set("Location", location.clone());
                            (status, h, Bytes::new(), latency.latency_for(0))
                        }
                        PageContent::Error { status, body } => {
                            let lat = latency.latency_for(body.len());
                            (status, h, body.bytes(), lat)
                        }
                    }
                }
            };

            total_latency += latency;
            if total_latency > self.policy.deadline_ms {
                // The deadline covers the whole chain: attribute the timeout
                // to the chain (start + hops followed), not just the hop it
                // happened to die on.
                return Err(NetError::Timeout {
                    start: start.to_string(),
                    url: current.to_string(),
                    latency_ms: total_latency,
                    deadline_ms: self.policy.deadline_ms,
                    redirects_followed: redirects,
                });
            }

            if status.is_redirect() {
                if redirects >= self.policy.max_redirects {
                    return Err(NetError::TooManyRedirects {
                        start: start.to_string(),
                        limit: self.policy.max_redirects,
                    });
                }
                let location = headers.get("location").unwrap_or("/").to_string();
                current = current.join(&location)?;
                redirects += 1;
                continue;
            }

            // HEAD advertises the length GET would have returned (the body
            // itself is dropped) — the interned body makes that length
            // available without having materialised a copy.
            let body_bytes = if method == Method::Head {
                headers.set("Content-Length", body.len().to_string());
                Bytes::new()
            } else {
                body
            };
            return Ok(Response {
                url: current,
                status,
                headers,
                body: body_bytes,
                latency_ms: total_latency,
                redirects_followed: redirects,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::SiteHost;

    fn web_with_example() -> SimulatedWeb {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html><body>home page</body></html>");
        host.add_json("/data.json", r#"{"ok": true}"#);
        host.add_content(
            "/old",
            PageContent::Redirect {
                location: "/".to_string(),
                permanent: true,
            },
        );
        host.add_content(
            "/loop",
            PageContent::Redirect {
                location: "/loop".to_string(),
                permanent: false,
            },
        );
        host.add_content(
            "/gone",
            PageContent::Error {
                status: StatusCode::GONE,
                body: "gone".into(),
            },
        );
        web.register(host);
        web
    }

    #[test]
    fn get_success() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert!(resp.body_text().contains("home page"));
        assert_eq!(resp.content_type(), Some("text/html; charset=utf-8"));
        assert!(resp.latency_ms > 0);
        assert_eq!(fetcher.requests_issued(), 1);
    }

    #[test]
    fn get_missing_path_is_404_response_not_error() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/nope").unwrap())
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn get_unknown_host_is_error() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get(&Url::parse("https://unknown.example/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HostNotFound { .. }));
    }

    #[test]
    fn redirects_are_followed() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/old").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert_eq!(resp.redirects_followed, 1);
        assert_eq!(resp.url.path, "/");
        // Two requests logged: the redirect and the destination.
        assert_eq!(fetcher.requests_issued(), 2);
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get(&Url::parse("https://example.com/loop").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::TooManyRedirects { .. }));
    }

    #[test]
    fn https_required_policy_rejects_http() {
        let fetcher = Fetcher::with_policy(web_with_example(), FetchPolicy::strict());
        let err = fetcher
            .get(&Url::parse("http://example.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HttpsRequired { .. }));
    }

    #[test]
    fn get_json_parses_and_errors() {
        let fetcher = Fetcher::new(web_with_example());
        let json = fetcher
            .get_json(&Url::parse("https://example.com/data.json").unwrap())
            .unwrap();
        assert_eq!(json["ok"], true);
        let err = fetcher
            .get_json(&Url::parse("https://example.com/missing.json").unwrap())
            .unwrap_err();
        // The real status is carried, not erased to a generic not-found.
        assert!(matches!(
            err,
            NetError::HttpStatus {
                status: StatusCode::NOT_FOUND,
                ..
            }
        ));
    }

    #[test]
    fn get_success_carries_the_real_status() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get_success(&Url::parse("https://example.com/gone").unwrap())
            .unwrap_err();
        match err {
            NetError::HttpStatus { url, status } => {
                assert_eq!(status, StatusCode::GONE);
                assert!(url.contains("/gone"));
                assert_eq!(err_class_of(status), "http-status");
            }
            other => panic!("expected HttpStatus, got {other:?}"),
        }
        // Success statuses pass through untouched.
        let resp = fetcher
            .get_success(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
    }

    fn err_class_of(status: StatusCode) -> &'static str {
        NetError::HttpStatus {
            url: String::new(),
            status,
        }
        .class()
    }

    #[test]
    fn request_logging_is_opt_in() {
        // Default path: counted, never logged — request_log() has nothing
        // to return because no Request was materialised and no lock taken.
        let fetcher = Fetcher::new(web_with_example());
        let url = Url::parse("https://example.com/old").unwrap();
        fetcher.get(&url).unwrap();
        assert_eq!(fetcher.requests_issued(), 2); // redirect hop + landing
        assert_eq!(fetcher.request_log(), None);

        // Opt-in path: every hop materialised in order.
        let logged = Fetcher::new(web_with_example()).with_request_log();
        logged.get(&url).unwrap();
        let log = logged.request_log().expect("opt-in log present");
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].url.path, "/old");
        assert_eq!(log[1].url.path, "/");
        assert_eq!(logged.requests_issued(), 2);
    }

    #[test]
    fn clones_share_request_accounting() {
        let fetcher = Fetcher::new(web_with_example());
        let url = Url::parse("https://example.com/").unwrap();
        fetcher.get(&url).unwrap();
        let clone = fetcher.clone();
        clone.get(&url).unwrap();
        clone.clone().get(&url).unwrap();
        // Every clone reports the family-wide total, whichever shard the
        // individual increments landed on.
        assert_eq!(fetcher.requests_issued(), 3);
        assert_eq!(clone.requests_issued(), 3);

        // Logged fetchers keep sharing the log across clones.
        let logged = Fetcher::new(web_with_example()).with_request_log();
        logged.clone().get(&url).unwrap();
        logged.get(&url).unwrap();
        assert_eq!(logged.request_log().unwrap().len(), 2);
    }

    #[test]
    fn head_has_empty_body_but_headers() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .head(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert!(resp.body.is_empty());
        assert!(resp.headers.contains("content-type"));
        // HEAD reports the length GET would have served, not 0.
        assert_eq!(
            resp.headers.get("content-length"),
            Some(
                "<html><body>home page</body></html>"
                    .len()
                    .to_string()
                    .as_str()
            )
        );
    }

    #[test]
    fn error_pages_return_their_status() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/gone").unwrap())
            .unwrap();
        assert_eq!(resp.status, StatusCode::GONE);
        assert_eq!(resp.body_text(), "gone");
    }

    #[test]
    fn offline_host_refuses_connection() {
        let mut web = web_with_example();
        web.update_host(
            &rws_domain::DomainName::parse("example.com").unwrap(),
            |h| {
                h.set_offline(true);
            },
        );
        let fetcher = Fetcher::new(web);
        let err = fetcher
            .get(&Url::parse("https://example.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused { .. }));
    }

    #[test]
    fn timeout_when_latency_exceeds_deadline() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("slow.com").unwrap();
        host.add_page("/", "x");
        host.set_latency(crate::web::LatencyModel {
            base_ms: 50_000,
            per_kb_ms: 0,
        });
        web.register(host);
        let fetcher = Fetcher::new(web);
        let err = fetcher
            .get(&Url::parse("https://slow.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
    }
}
