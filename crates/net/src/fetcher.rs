//! The fetcher client: policy-driven retrieval from the simulated web.

use crate::error::NetError;
use crate::headers::HeaderMap;
use crate::message::{Method, Request, Response, StatusCode};
use crate::url::Url;
use crate::web::{PageContent, ServedPage, SimulatedWeb};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

/// Client-side fetch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchPolicy {
    /// Maximum number of redirects to follow before giving up.
    pub max_redirects: usize,
    /// If true, any non-https URL (initial or redirect target) fails with
    /// [`NetError::HttpsRequired`] — the posture of the RWS validation bot.
    pub require_https: bool,
    /// Simulated deadline in milliseconds; responses whose accumulated
    /// latency exceeds it fail with [`NetError::Timeout`].
    pub deadline_ms: u64,
}

impl Default for FetchPolicy {
    fn default() -> Self {
        FetchPolicy {
            max_redirects: 5,
            require_https: false,
            deadline_ms: 30_000,
        }
    }
}

impl FetchPolicy {
    /// The policy used by the RWS validation bot: HTTPS required, few
    /// redirects, a short deadline.
    pub fn strict() -> FetchPolicy {
        FetchPolicy {
            max_redirects: 3,
            require_https: true,
            deadline_ms: 10_000,
        }
    }
}

/// A deterministic HTTP client over a [`SimulatedWeb`].
///
/// The fetcher records every request it issues so experiments can report
/// crawl sizes and so tests can assert on traffic.
#[derive(Debug, Clone)]
pub struct Fetcher {
    web: SimulatedWeb,
    policy: FetchPolicy,
    log: Arc<Mutex<Vec<Request>>>,
}

impl Fetcher {
    /// Create a fetcher with the default policy.
    pub fn new(web: SimulatedWeb) -> Fetcher {
        Fetcher::with_policy(web, FetchPolicy::default())
    }

    /// Create a fetcher with an explicit policy.
    pub fn with_policy(web: SimulatedWeb, policy: FetchPolicy) -> Fetcher {
        Fetcher {
            web,
            policy,
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> FetchPolicy {
        self.policy
    }

    /// The underlying simulated web.
    pub fn web(&self) -> &SimulatedWeb {
        &self.web
    }

    /// Number of requests issued so far (including redirect hops).
    pub fn requests_issued(&self) -> usize {
        self.log.lock().len()
    }

    /// A copy of the request log.
    pub fn request_log(&self) -> Vec<Request> {
        self.log.lock().clone()
    }

    /// GET a URL, following redirects per policy.
    pub fn get(&self, url: &Url) -> Result<Response, NetError> {
        self.execute(Method::Get, url)
    }

    /// HEAD a URL, following redirects per policy. The response body is
    /// always empty but headers and status are as GET would produce.
    pub fn head(&self, url: &Url) -> Result<Response, NetError> {
        self.execute(Method::Head, url)
    }

    /// GET a URL and parse the body as JSON.
    pub fn get_json(&self, url: &Url) -> Result<serde_json::Value, NetError> {
        let resp = self.get(url)?;
        if !resp.status.is_success() {
            return Err(NetError::NotFound {
                url: url.to_string(),
            });
        }
        resp.body_json()
    }

    fn execute(&self, method: Method, start: &Url) -> Result<Response, NetError> {
        let mut current = start.clone();
        let mut total_latency: u64 = 0;
        let mut redirects = 0usize;

        loop {
            if self.policy.require_https && !current.is_https() {
                return Err(NetError::HttpsRequired {
                    url: current.to_string(),
                });
            }
            self.log.lock().push(Request {
                method,
                url: current.clone(),
                headers: HeaderMap::new(),
            });

            let served = self.web.serve(&current);
            // `body` is a refcount bump of the interned page, never a copy.
            let (status, mut headers, body, latency) = match served {
                ServedPage::NoSuchHost => {
                    return Err(NetError::HostNotFound {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::Refused => {
                    return Err(NetError::ConnectionRefused {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::TlsUnavailable => {
                    return Err(NetError::ConnectionRefused {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::Missing { latency } => (
                    StatusCode::NOT_FOUND,
                    HeaderMap::new(),
                    Bytes::new(),
                    latency.latency_for(0),
                ),
                ServedPage::Content {
                    content,
                    extra_headers,
                    latency,
                } => {
                    // The response mutates its headers (Content-Type,
                    // Location), so materialise a copy only when the path
                    // actually registered extra headers — the shared handle
                    // itself was never cloned by `serve`.
                    let mut h = extra_headers
                        .map(|shared| HeaderMap::clone(&shared))
                        .unwrap_or_default();
                    match content {
                        PageContent::Html(html) => {
                            let lat = latency.latency_for(html.len());
                            h.set("Content-Type", "text/html; charset=utf-8");
                            (StatusCode::OK, h, html.bytes(), lat)
                        }
                        PageContent::Json(json) => {
                            let lat = latency.latency_for(json.len());
                            h.set("Content-Type", "application/json");
                            (StatusCode::OK, h, json.bytes(), lat)
                        }
                        PageContent::Text(text) => {
                            let lat = latency.latency_for(text.len());
                            h.set("Content-Type", "text/plain; charset=utf-8");
                            (StatusCode::OK, h, text.bytes(), lat)
                        }
                        PageContent::Redirect {
                            location,
                            permanent,
                        } => {
                            let status = if permanent {
                                StatusCode::MOVED_PERMANENTLY
                            } else {
                                StatusCode::FOUND
                            };
                            h.set("Location", location.clone());
                            (status, h, Bytes::new(), latency.latency_for(0))
                        }
                        PageContent::Error { status, body } => {
                            let lat = latency.latency_for(body.len());
                            (status, h, body.bytes(), lat)
                        }
                    }
                }
            };

            total_latency += latency;
            if total_latency > self.policy.deadline_ms {
                return Err(NetError::Timeout {
                    url: current.to_string(),
                    latency_ms: total_latency,
                    deadline_ms: self.policy.deadline_ms,
                });
            }

            if status.is_redirect() {
                if redirects >= self.policy.max_redirects {
                    return Err(NetError::TooManyRedirects {
                        start: start.to_string(),
                        limit: self.policy.max_redirects,
                    });
                }
                let location = headers.get("location").unwrap_or("/").to_string();
                current = current.join(&location)?;
                redirects += 1;
                continue;
            }

            // HEAD advertises the length GET would have returned (the body
            // itself is dropped) — the interned body makes that length
            // available without having materialised a copy.
            let body_bytes = if method == Method::Head {
                headers.set("Content-Length", body.len().to_string());
                Bytes::new()
            } else {
                body
            };
            return Ok(Response {
                url: current,
                status,
                headers,
                body: body_bytes,
                latency_ms: total_latency,
                redirects_followed: redirects,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::SiteHost;

    fn web_with_example() -> SimulatedWeb {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html><body>home page</body></html>");
        host.add_json("/data.json", r#"{"ok": true}"#);
        host.add_content(
            "/old",
            PageContent::Redirect {
                location: "/".to_string(),
                permanent: true,
            },
        );
        host.add_content(
            "/loop",
            PageContent::Redirect {
                location: "/loop".to_string(),
                permanent: false,
            },
        );
        host.add_content(
            "/gone",
            PageContent::Error {
                status: StatusCode::GONE,
                body: "gone".into(),
            },
        );
        web.register(host);
        web
    }

    #[test]
    fn get_success() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert!(resp.body_text().contains("home page"));
        assert_eq!(resp.content_type(), Some("text/html; charset=utf-8"));
        assert!(resp.latency_ms > 0);
        assert_eq!(fetcher.requests_issued(), 1);
    }

    #[test]
    fn get_missing_path_is_404_response_not_error() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/nope").unwrap())
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn get_unknown_host_is_error() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get(&Url::parse("https://unknown.example/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HostNotFound { .. }));
    }

    #[test]
    fn redirects_are_followed() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/old").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert_eq!(resp.redirects_followed, 1);
        assert_eq!(resp.url.path, "/");
        // Two requests logged: the redirect and the destination.
        assert_eq!(fetcher.requests_issued(), 2);
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get(&Url::parse("https://example.com/loop").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::TooManyRedirects { .. }));
    }

    #[test]
    fn https_required_policy_rejects_http() {
        let fetcher = Fetcher::with_policy(web_with_example(), FetchPolicy::strict());
        let err = fetcher
            .get(&Url::parse("http://example.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HttpsRequired { .. }));
    }

    #[test]
    fn get_json_parses_and_errors() {
        let fetcher = Fetcher::new(web_with_example());
        let json = fetcher
            .get_json(&Url::parse("https://example.com/data.json").unwrap())
            .unwrap();
        assert_eq!(json["ok"], true);
        let err = fetcher
            .get_json(&Url::parse("https://example.com/missing.json").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::NotFound { .. }));
    }

    #[test]
    fn head_has_empty_body_but_headers() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .head(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert!(resp.body.is_empty());
        assert!(resp.headers.contains("content-type"));
        // HEAD reports the length GET would have served, not 0.
        assert_eq!(
            resp.headers.get("content-length"),
            Some(
                "<html><body>home page</body></html>"
                    .len()
                    .to_string()
                    .as_str()
            )
        );
    }

    #[test]
    fn error_pages_return_their_status() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/gone").unwrap())
            .unwrap();
        assert_eq!(resp.status, StatusCode::GONE);
        assert_eq!(resp.body_text(), "gone");
    }

    #[test]
    fn offline_host_refuses_connection() {
        let mut web = web_with_example();
        web.update_host(
            &rws_domain::DomainName::parse("example.com").unwrap(),
            |h| {
                h.set_offline(true);
            },
        );
        let fetcher = Fetcher::new(web);
        let err = fetcher
            .get(&Url::parse("https://example.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused { .. }));
    }

    #[test]
    fn timeout_when_latency_exceeds_deadline() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("slow.com").unwrap();
        host.add_page("/", "x");
        host.set_latency(crate::web::LatencyModel {
            base_ms: 50_000,
            per_kb_ms: 0,
        });
        web.register(host);
        let fetcher = Fetcher::new(web);
        let err = fetcher
            .get(&Url::parse("https://slow.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
    }
}
