//! The fetcher client: policy-driven retrieval from the simulated web.

use crate::error::NetError;
use crate::headers::HeaderMap;
use crate::message::{Method, Request, Response, StatusCode};
use crate::url::Url;
use crate::web::{PageContent, ServedPage, SimulatedWeb};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Client-side fetch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchPolicy {
    /// Maximum number of redirects to follow before giving up.
    pub max_redirects: usize,
    /// If true, any non-https URL (initial or redirect target) fails with
    /// [`NetError::HttpsRequired`] — the posture of the RWS validation bot.
    pub require_https: bool,
    /// Simulated deadline in milliseconds; responses whose accumulated
    /// latency exceeds it fail with [`NetError::Timeout`].
    pub deadline_ms: u64,
}

impl Default for FetchPolicy {
    fn default() -> Self {
        FetchPolicy {
            max_redirects: 5,
            require_https: false,
            deadline_ms: 30_000,
        }
    }
}

impl FetchPolicy {
    /// The policy used by the RWS validation bot: HTTPS required, few
    /// redirects, a short deadline.
    pub fn strict() -> FetchPolicy {
        FetchPolicy {
            max_redirects: 3,
            require_https: true,
            deadline_ms: 10_000,
        }
    }
}

/// Number of counter shards backing the default (unlogged) request tally.
const COUNTER_SHARDS: usize = 16;

/// One cache line per counter so clones incrementing different shards never
/// share a line (the load engine issues hundreds of thousands of requests
/// across pool workers through clones of one fetcher).
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedCounter {
    value: AtomicU64,
}

/// A fixed set of relaxed atomic counters shared by every clone of a
/// fetcher. Each clone gets its own preferred shard at clone time, so the
/// per-request hot path is a single uncontended `fetch_add` — no lock, no
/// allocation — while `requests_issued` still reports the family-wide
/// total by summing shards.
#[derive(Debug, Default)]
struct CounterShards {
    counts: [PaddedCounter; COUNTER_SHARDS],
    /// Round-robin assignment of shards to clones.
    next: AtomicUsize,
}

impl CounterShards {
    fn assign(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS
    }

    fn total(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.value.load(Ordering::Relaxed))
            .sum()
    }
}

/// Where issued requests are accounted: the default path counts them on a
/// sharded atomic (no global lock, no per-hop `Request` construction); the
/// opt-in path ([`Fetcher::with_request_log`]) keeps the full log behind a
/// mutex for tests and small crawls that want to inspect traffic.
#[derive(Debug)]
enum RequestSink {
    Count {
        shards: Arc<CounterShards>,
        shard: usize,
    },
    Log(Arc<Mutex<Vec<Request>>>),
}

impl RequestSink {
    fn fresh_counting() -> RequestSink {
        let shards = Arc::new(CounterShards::default());
        // Shard 0 goes to the original; clones take 1, 2, ... round-robin.
        shards.next.store(1, Ordering::Relaxed);
        RequestSink::Count { shards, shard: 0 }
    }

    /// The sink a cloned fetcher gets: same family-wide accounting, own
    /// preferred shard so concurrent clones do not contend.
    fn fork(&self) -> RequestSink {
        match self {
            RequestSink::Count { shards, .. } => RequestSink::Count {
                shards: Arc::clone(shards),
                shard: shards.assign(),
            },
            RequestSink::Log(log) => RequestSink::Log(Arc::clone(log)),
        }
    }

    #[inline]
    fn note(&self, method: Method, url: &Url) {
        match self {
            RequestSink::Count { shards, shard } => {
                shards.counts[*shard].value.fetch_add(1, Ordering::Relaxed);
            }
            RequestSink::Log(log) => log.lock().push(Request {
                method,
                url: url.clone(),
                headers: HeaderMap::new(),
            }),
        }
    }
}

/// A deterministic HTTP client over a [`SimulatedWeb`].
///
/// The fetcher counts every request it issues (including redirect hops) on
/// a lock-free sharded counter shared by all of its clones, so experiments
/// can report crawl sizes from any copy. Full per-request logging — every
/// hop materialised as a [`Request`] behind a mutex — is opt-in via
/// [`Fetcher::with_request_log`], because under concurrent load that one
/// process-wide lock is exactly the contention the load engine exists to
/// measure.
#[derive(Debug)]
pub struct Fetcher {
    web: SimulatedWeb,
    policy: FetchPolicy,
    sink: RequestSink,
}

impl Clone for Fetcher {
    fn clone(&self) -> Fetcher {
        Fetcher {
            web: self.web.clone(),
            policy: self.policy,
            sink: self.sink.fork(),
        }
    }
}

impl Fetcher {
    /// Create a fetcher with the default policy.
    pub fn new(web: SimulatedWeb) -> Fetcher {
        Fetcher::with_policy(web, FetchPolicy::default())
    }

    /// Create a fetcher with an explicit policy.
    pub fn with_policy(web: SimulatedWeb, policy: FetchPolicy) -> Fetcher {
        Fetcher {
            web,
            policy,
            sink: RequestSink::fresh_counting(),
        }
    }

    /// Switch this fetcher (and every clone made from it afterwards) to
    /// full request logging: each hop is recorded as a [`Request`] in a
    /// shared log readable via [`request_log`](Fetcher::request_log).
    /// Counts issued before the switch are discarded.
    pub fn with_request_log(mut self) -> Fetcher {
        self.sink = RequestSink::Log(Arc::new(Mutex::new(Vec::new())));
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> FetchPolicy {
        self.policy
    }

    /// The underlying simulated web.
    pub fn web(&self) -> &SimulatedWeb {
        &self.web
    }

    /// Number of requests issued so far (including redirect hops) by this
    /// fetcher and every clone sharing its accounting.
    pub fn requests_issued(&self) -> usize {
        match &self.sink {
            RequestSink::Count { shards, .. } => shards.total() as usize,
            RequestSink::Log(log) => log.lock().len(),
        }
    }

    /// A copy of the request log, or `None` unless this fetcher was built
    /// with [`with_request_log`](Fetcher::with_request_log) — the default
    /// path never materialises requests or takes a lock.
    pub fn request_log(&self) -> Option<Vec<Request>> {
        match &self.sink {
            RequestSink::Count { .. } => None,
            RequestSink::Log(log) => Some(log.lock().clone()),
        }
    }

    /// GET a URL, following redirects per policy.
    pub fn get(&self, url: &Url) -> Result<Response, NetError> {
        self.execute(Method::Get, url)
    }

    /// HEAD a URL, following redirects per policy. The response body is
    /// always empty but headers and status are as GET would produce.
    pub fn head(&self, url: &Url) -> Result<Response, NetError> {
        self.execute(Method::Head, url)
    }

    /// GET a URL and require a success status: any non-2xx answer becomes
    /// [`NetError::HttpStatus`] carrying the real status code instead of
    /// erasing it.
    pub fn get_success(&self, url: &Url) -> Result<Response, NetError> {
        let resp = self.get(url)?;
        if !resp.status.is_success() {
            return Err(NetError::HttpStatus {
                url: resp.url.to_string(),
                status: resp.status,
            });
        }
        Ok(resp)
    }

    /// GET a URL and parse the body as JSON. Non-success statuses surface
    /// as [`NetError::HttpStatus`] (see [`get_success`](Fetcher::get_success)).
    pub fn get_json(&self, url: &Url) -> Result<serde_json::Value, NetError> {
        self.get_success(url)?.body_json()
    }

    fn execute(&self, method: Method, start: &Url) -> Result<Response, NetError> {
        let mut current = start.clone();
        let mut total_latency: u64 = 0;
        let mut redirects = 0usize;

        loop {
            if self.policy.require_https && !current.is_https() {
                return Err(NetError::HttpsRequired {
                    url: current.to_string(),
                });
            }
            self.sink.note(method, &current);

            let served = self.web.serve(&current);
            // `body` is a refcount bump of the interned page, never a copy.
            let (status, mut headers, body, latency) = match served {
                ServedPage::NoSuchHost => {
                    return Err(NetError::HostNotFound {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::Refused => {
                    return Err(NetError::ConnectionRefused {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::TlsUnavailable => {
                    return Err(NetError::ConnectionRefused {
                        host: current.host.to_string(),
                    })
                }
                ServedPage::Missing { latency } => (
                    StatusCode::NOT_FOUND,
                    HeaderMap::new(),
                    Bytes::new(),
                    latency.latency_for(0),
                ),
                ServedPage::Content {
                    content,
                    extra_headers,
                    latency,
                } => {
                    // The response mutates its headers (Content-Type,
                    // Location), so materialise a copy only when the path
                    // actually registered extra headers — the shared handle
                    // itself was never cloned by `serve`.
                    let mut h = extra_headers
                        .map(|shared| HeaderMap::clone(&shared))
                        .unwrap_or_default();
                    match content {
                        PageContent::Html(html) => {
                            let lat = latency.latency_for(html.len());
                            h.set("Content-Type", "text/html; charset=utf-8");
                            (StatusCode::OK, h, html.bytes(), lat)
                        }
                        PageContent::Json(json) => {
                            let lat = latency.latency_for(json.len());
                            h.set("Content-Type", "application/json");
                            (StatusCode::OK, h, json.bytes(), lat)
                        }
                        PageContent::Text(text) => {
                            let lat = latency.latency_for(text.len());
                            h.set("Content-Type", "text/plain; charset=utf-8");
                            (StatusCode::OK, h, text.bytes(), lat)
                        }
                        PageContent::Redirect {
                            location,
                            permanent,
                        } => {
                            let status = if permanent {
                                StatusCode::MOVED_PERMANENTLY
                            } else {
                                StatusCode::FOUND
                            };
                            h.set("Location", location.clone());
                            (status, h, Bytes::new(), latency.latency_for(0))
                        }
                        PageContent::Error { status, body } => {
                            let lat = latency.latency_for(body.len());
                            (status, h, body.bytes(), lat)
                        }
                    }
                }
            };

            total_latency += latency;
            if total_latency > self.policy.deadline_ms {
                return Err(NetError::Timeout {
                    url: current.to_string(),
                    latency_ms: total_latency,
                    deadline_ms: self.policy.deadline_ms,
                });
            }

            if status.is_redirect() {
                if redirects >= self.policy.max_redirects {
                    return Err(NetError::TooManyRedirects {
                        start: start.to_string(),
                        limit: self.policy.max_redirects,
                    });
                }
                let location = headers.get("location").unwrap_or("/").to_string();
                current = current.join(&location)?;
                redirects += 1;
                continue;
            }

            // HEAD advertises the length GET would have returned (the body
            // itself is dropped) — the interned body makes that length
            // available without having materialised a copy.
            let body_bytes = if method == Method::Head {
                headers.set("Content-Length", body.len().to_string());
                Bytes::new()
            } else {
                body
            };
            return Ok(Response {
                url: current,
                status,
                headers,
                body: body_bytes,
                latency_ms: total_latency,
                redirects_followed: redirects,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::SiteHost;

    fn web_with_example() -> SimulatedWeb {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html><body>home page</body></html>");
        host.add_json("/data.json", r#"{"ok": true}"#);
        host.add_content(
            "/old",
            PageContent::Redirect {
                location: "/".to_string(),
                permanent: true,
            },
        );
        host.add_content(
            "/loop",
            PageContent::Redirect {
                location: "/loop".to_string(),
                permanent: false,
            },
        );
        host.add_content(
            "/gone",
            PageContent::Error {
                status: StatusCode::GONE,
                body: "gone".into(),
            },
        );
        web.register(host);
        web
    }

    #[test]
    fn get_success() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert!(resp.body_text().contains("home page"));
        assert_eq!(resp.content_type(), Some("text/html; charset=utf-8"));
        assert!(resp.latency_ms > 0);
        assert_eq!(fetcher.requests_issued(), 1);
    }

    #[test]
    fn get_missing_path_is_404_response_not_error() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/nope").unwrap())
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn get_unknown_host_is_error() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get(&Url::parse("https://unknown.example/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HostNotFound { .. }));
    }

    #[test]
    fn redirects_are_followed() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/old").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert_eq!(resp.redirects_followed, 1);
        assert_eq!(resp.url.path, "/");
        // Two requests logged: the redirect and the destination.
        assert_eq!(fetcher.requests_issued(), 2);
    }

    #[test]
    fn redirect_loops_are_bounded() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get(&Url::parse("https://example.com/loop").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::TooManyRedirects { .. }));
    }

    #[test]
    fn https_required_policy_rejects_http() {
        let fetcher = Fetcher::with_policy(web_with_example(), FetchPolicy::strict());
        let err = fetcher
            .get(&Url::parse("http://example.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::HttpsRequired { .. }));
    }

    #[test]
    fn get_json_parses_and_errors() {
        let fetcher = Fetcher::new(web_with_example());
        let json = fetcher
            .get_json(&Url::parse("https://example.com/data.json").unwrap())
            .unwrap();
        assert_eq!(json["ok"], true);
        let err = fetcher
            .get_json(&Url::parse("https://example.com/missing.json").unwrap())
            .unwrap_err();
        // The real status is carried, not erased to a generic not-found.
        assert!(matches!(
            err,
            NetError::HttpStatus {
                status: StatusCode::NOT_FOUND,
                ..
            }
        ));
    }

    #[test]
    fn get_success_carries_the_real_status() {
        let fetcher = Fetcher::new(web_with_example());
        let err = fetcher
            .get_success(&Url::parse("https://example.com/gone").unwrap())
            .unwrap_err();
        match err {
            NetError::HttpStatus { url, status } => {
                assert_eq!(status, StatusCode::GONE);
                assert!(url.contains("/gone"));
                assert_eq!(err_class_of(status), "http-status");
            }
            other => panic!("expected HttpStatus, got {other:?}"),
        }
        // Success statuses pass through untouched.
        let resp = fetcher
            .get_success(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
    }

    fn err_class_of(status: StatusCode) -> &'static str {
        NetError::HttpStatus {
            url: String::new(),
            status,
        }
        .class()
    }

    #[test]
    fn request_logging_is_opt_in() {
        // Default path: counted, never logged — request_log() has nothing
        // to return because no Request was materialised and no lock taken.
        let fetcher = Fetcher::new(web_with_example());
        let url = Url::parse("https://example.com/old").unwrap();
        fetcher.get(&url).unwrap();
        assert_eq!(fetcher.requests_issued(), 2); // redirect hop + landing
        assert_eq!(fetcher.request_log(), None);

        // Opt-in path: every hop materialised in order.
        let logged = Fetcher::new(web_with_example()).with_request_log();
        logged.get(&url).unwrap();
        let log = logged.request_log().expect("opt-in log present");
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].url.path, "/old");
        assert_eq!(log[1].url.path, "/");
        assert_eq!(logged.requests_issued(), 2);
    }

    #[test]
    fn clones_share_request_accounting() {
        let fetcher = Fetcher::new(web_with_example());
        let url = Url::parse("https://example.com/").unwrap();
        fetcher.get(&url).unwrap();
        let clone = fetcher.clone();
        clone.get(&url).unwrap();
        clone.clone().get(&url).unwrap();
        // Every clone reports the family-wide total, whichever shard the
        // individual increments landed on.
        assert_eq!(fetcher.requests_issued(), 3);
        assert_eq!(clone.requests_issued(), 3);

        // Logged fetchers keep sharing the log across clones.
        let logged = Fetcher::new(web_with_example()).with_request_log();
        logged.clone().get(&url).unwrap();
        logged.get(&url).unwrap();
        assert_eq!(logged.request_log().unwrap().len(), 2);
    }

    #[test]
    fn head_has_empty_body_but_headers() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .head(&Url::parse("https://example.com/").unwrap())
            .unwrap();
        assert!(resp.status.is_success());
        assert!(resp.body.is_empty());
        assert!(resp.headers.contains("content-type"));
        // HEAD reports the length GET would have served, not 0.
        assert_eq!(
            resp.headers.get("content-length"),
            Some(
                "<html><body>home page</body></html>"
                    .len()
                    .to_string()
                    .as_str()
            )
        );
    }

    #[test]
    fn error_pages_return_their_status() {
        let fetcher = Fetcher::new(web_with_example());
        let resp = fetcher
            .get(&Url::parse("https://example.com/gone").unwrap())
            .unwrap();
        assert_eq!(resp.status, StatusCode::GONE);
        assert_eq!(resp.body_text(), "gone");
    }

    #[test]
    fn offline_host_refuses_connection() {
        let mut web = web_with_example();
        web.update_host(
            &rws_domain::DomainName::parse("example.com").unwrap(),
            |h| {
                h.set_offline(true);
            },
        );
        let fetcher = Fetcher::new(web);
        let err = fetcher
            .get(&Url::parse("https://example.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused { .. }));
    }

    #[test]
    fn timeout_when_latency_exceeds_deadline() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("slow.com").unwrap();
        host.add_page("/", "x");
        host.set_latency(crate::web::LatencyModel {
            base_ms: 50_000,
            per_kb_ms: 0,
        });
        web.register(host);
        let fetcher = Fetcher::new(web);
        let err = fetcher
            .get(&Url::parse("https://slow.com/").unwrap())
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout { .. }));
    }
}
