//! A small, strict URL type for the simulated web.
//!
//! Only the pieces of a URL the study needs are modelled: scheme
//! (`http`/`https`), host (a validated [`DomainName`]), optional port, path
//! and optional query string. Fragments are parsed and discarded, matching
//! what a fetcher would send on the wire.

use crate::error::NetError;
use rws_domain::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// URL scheme; the study only ever deals with HTTP(S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain-text HTTP — rejected by the RWS submission guidelines.
    Http,
    /// HTTPS.
    Https,
}

impl Scheme {
    /// Default port for the scheme.
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Scheme name without the `://`.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// The scheme.
    pub scheme: Scheme,
    /// The host name.
    pub host: DomainName,
    /// Explicit port, if one was given.
    pub port: Option<u16>,
    /// Absolute path, always starting with `/`.
    pub path: String,
    /// Query string without the leading `?`, if present.
    pub query: Option<String>,
}

impl Url {
    /// Parse an absolute `http`/`https` URL.
    pub fn parse(input: &str) -> Result<Url, NetError> {
        let fail = |reason: &str| NetError::InvalidUrl {
            input: input.to_string(),
            reason: reason.to_string(),
        };
        let trimmed = input.trim();
        let (scheme, rest) = if let Some(rest) = trimmed.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else if let Some(rest) = trimmed.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else {
            return Err(fail("missing http:// or https:// scheme"));
        };
        if rest.is_empty() {
            return Err(fail("missing host"));
        }
        // Split off fragment first (discarded), then query, then path.
        let rest = rest.split('#').next().unwrap_or(rest);
        let (authority_and_path, query) = match rest.split_once('?') {
            Some((a, q)) => (a, Some(q.to_string())),
            None => (rest, None),
        };
        let (authority, path) = match authority_and_path.find('/') {
            Some(idx) => (
                &authority_and_path[..idx],
                authority_and_path[idx..].to_string(),
            ),
            None => (authority_and_path, "/".to_string()),
        };
        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| fail(&format!("invalid port '{p}'")))?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        let host = DomainName::parse(host_str)
            .map_err(|e| fail(&format!("invalid host '{host_str}': {e}")))?;
        Ok(Url {
            scheme,
            host,
            port,
            path,
            query,
        })
    }

    /// Build an HTTPS URL for a host and path without going through the
    /// string parser. `path` must start with `/`.
    pub fn https(host: &DomainName, path: &str) -> Url {
        assert!(path.starts_with('/'), "path must be absolute, got '{path}'");
        Url {
            scheme: Scheme::Https,
            host: host.clone(),
            port: None,
            path: path.to_string(),
            query: None,
        }
    }

    /// Build a plain-HTTP URL (used by tests exercising HTTPS enforcement).
    pub fn http(host: &DomainName, path: &str) -> Url {
        assert!(path.starts_with('/'), "path must be absolute, got '{path}'");
        Url {
            scheme: Scheme::Http,
            host: host.clone(),
            port: None,
            path: path.to_string(),
            query: None,
        }
    }

    /// The effective port (explicit port or the scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or_else(|| self.scheme.default_port())
    }

    /// True for `https` URLs.
    pub fn is_https(&self) -> bool {
        self.scheme == Scheme::Https
    }

    /// The origin (scheme, host, port) triple as a display string, e.g.
    /// `https://example.com` — the unit same-origin checks operate on.
    pub fn origin(&self) -> String {
        match self.port {
            Some(p) => format!("{}://{}:{}", self.scheme.as_str(), self.host, p),
            None => format!("{}://{}", self.scheme.as_str(), self.host),
        }
    }

    /// A copy of this URL with a different path (query dropped).
    pub fn with_path(&self, path: &str) -> Url {
        assert!(path.starts_with('/'), "path must be absolute, got '{path}'");
        Url {
            scheme: self.scheme,
            host: self.host.clone(),
            port: self.port,
            path: path.to_string(),
            query: None,
        }
    }

    /// Resolve a possibly relative redirect target against this URL.
    /// Absolute `http(s)://` targets are parsed as-is; targets starting with
    /// `/` keep the current scheme/host.
    pub fn join(&self, target: &str) -> Result<Url, NetError> {
        if target.starts_with("http://") || target.starts_with("https://") {
            Url::parse(target)
        } else if target.starts_with('/') {
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p.to_string(), Some(q.to_string())),
                None => (target.to_string(), None),
            };
            Ok(Url {
                scheme: self.scheme,
                host: self.host.clone(),
                port: self.port,
                path,
                query,
            })
        } else {
            Err(NetError::InvalidUrl {
                input: target.to_string(),
                reason: "relative redirect targets must start with '/'".to_string(),
            })
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.origin(), self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Url {
    type Err = NetError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_https() {
        let u = Url::parse("https://example.com/path?x=1").unwrap();
        assert_eq!(u.scheme, Scheme::Https);
        assert_eq!(u.host.as_str(), "example.com");
        assert_eq!(u.path, "/path");
        assert_eq!(u.query.as_deref(), Some("x=1"));
        assert_eq!(u.effective_port(), 443);
        assert!(u.is_https());
    }

    #[test]
    fn parse_defaults_path_to_root() {
        let u = Url::parse("https://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.query, None);
    }

    #[test]
    fn parse_http_and_port() {
        let u = Url::parse("http://example.com:8080/x").unwrap();
        assert_eq!(u.scheme, Scheme::Http);
        assert_eq!(u.port, Some(8080));
        assert_eq!(u.effective_port(), 8080);
        assert!(!u.is_https());
    }

    #[test]
    fn parse_discards_fragment() {
        let u = Url::parse("https://example.com/page#section").unwrap();
        assert_eq!(u.path, "/page");
        assert_eq!(u.to_string(), "https://example.com/page");
    }

    #[test]
    fn parse_normalises_host_case() {
        let u = Url::parse("https://EXAMPLE.com/A").unwrap();
        assert_eq!(u.host.as_str(), "example.com");
        // Path case is preserved.
        assert_eq!(u.path, "/A");
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert!(Url::parse("ftp://example.com/").is_err());
        assert!(Url::parse("example.com").is_err());
        assert!(Url::parse("https://").is_err());
        assert!(Url::parse("https://bad host/").is_err());
        assert!(Url::parse("https://example.com:notaport/").is_err());
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "https://example.com/",
            "https://example.com/a/b?x=1",
            "http://example.com:8080/z",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(u.to_string(), s);
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn origin_includes_explicit_port_only() {
        assert_eq!(
            Url::parse("https://example.com/x").unwrap().origin(),
            "https://example.com"
        );
        assert_eq!(
            Url::parse("https://example.com:444/x").unwrap().origin(),
            "https://example.com:444"
        );
    }

    #[test]
    fn join_absolute_and_relative() {
        let base = Url::parse("https://example.com/a/b").unwrap();
        assert_eq!(
            base.join("https://other.com/c").unwrap().to_string(),
            "https://other.com/c"
        );
        assert_eq!(
            base.join("/redirected?y=2").unwrap().to_string(),
            "https://example.com/redirected?y=2"
        );
        assert!(base.join("no-leading-slash").is_err());
    }

    #[test]
    fn constructors_enforce_absolute_paths() {
        let host = DomainName::parse("example.com").unwrap();
        let u = Url::https(&host, "/ok");
        assert_eq!(u.to_string(), "https://example.com/ok");
        let u = Url::http(&host, "/ok");
        assert_eq!(u.to_string(), "http://example.com/ok");
    }

    #[test]
    #[should_panic(expected = "absolute")]
    fn https_constructor_panics_on_relative_path() {
        let host = DomainName::parse("example.com").unwrap();
        Url::https(&host, "relative");
    }

    #[test]
    fn with_path_replaces_path_and_drops_query() {
        let u = Url::parse("https://example.com/a?q=1").unwrap();
        let v = u.with_path("/b");
        assert_eq!(v.to_string(), "https://example.com/b");
    }
}
