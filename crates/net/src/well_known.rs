//! Constants and helpers for the RWS `.well-known` convention.
//!
//! The RWS submission guidelines require every member of a proposed set to
//! serve a JSON file at `/.well-known/related-website-set.json` that mirrors
//! the set being proposed. This proves the submitter has administrative
//! control of each domain; Table 3 shows that failing to serve this file is
//! by far the most common validation error (202 occurrences).

use crate::url::Url;
use rws_domain::DomainName;

/// The path every set member must serve its copy of the set at.
pub const WELL_KNOWN_RWS_PATH: &str = "/.well-known/related-website-set.json";

/// The header that service sites must carry to stay out of search indexes.
pub const X_ROBOTS_TAG: &str = "X-Robots-Tag";

/// The HTTPS URL of a domain's `.well-known` RWS file.
pub fn well_known_path(domain: &DomainName) -> Url {
    Url::https(domain, WELL_KNOWN_RWS_PATH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_url_shape() {
        let d = DomainName::parse("example.com").unwrap();
        let url = well_known_path(&d);
        assert_eq!(
            url.to_string(),
            "https://example.com/.well-known/related-website-set.json"
        );
        assert!(url.is_https());
    }

    #[test]
    fn constants_are_stable() {
        assert!(WELL_KNOWN_RWS_PATH.starts_with("/.well-known/"));
        assert_eq!(X_ROBOTS_TAG.to_ascii_lowercase(), "x-robots-tag");
    }
}
