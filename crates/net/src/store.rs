//! The sharded frozen page store.
//!
//! A single [`FrozenWeb`] is one `Arc<HashMap>` — perfect for lock-free
//! reads, but a serial wall at *generation* time: the whole host table
//! must be rendered before anything downstream starts. A
//! [`ShardedFrozenWeb`] splits the table into N independent
//! [`FrozenWeb`] shards routed by the workspace's FNV-1a host hash (the
//! same [`ShardRouter`] the memo tables use), so corpus generation can
//! fan one pool task per shard and the per-shard tables stay flat as
//! the corpus scales.
//!
//! The read surface is identical to [`FrozenWeb`] — `host`, `page_html`,
//! `page_body`, `serve` keep their signatures and still hand out genuine
//! borrows. A read resolves shard-then-host: one mask/modulo on the key
//! hash, then the shard's plain `HashMap` lookup. No lock appears
//! anywhere on the path, and cloning the whole sharded store is a single
//! refcount bump.

use std::sync::Arc;

use rws_domain::DomainName;
use rws_stats::shard::ShardRouter;

use crate::url::Url;
use crate::web::{FrozenWeb, PageBody, ServedPage, SimulatedWeb, SiteHost};

/// Size accounting for one frozen shard (or a whole table), used by the
/// bench trajectory's per-shard memory block. `body_bytes` counts the
/// interned page payloads — because bodies are interned `Bytes`, two
/// stores sharing hosts share those buffers and the sum is an upper
/// bound on exclusive ownership.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Hosts in the table.
    pub hosts: usize,
    /// Pages across all hosts.
    pub pages: usize,
    /// Total interned body bytes across all pages.
    pub body_bytes: usize,
}

impl StoreStats {
    fn add_host(&mut self, host: &SiteHost) {
        self.hosts += 1;
        for path in host.paths() {
            self.pages += 1;
            if let Some(body) = host.page_body(path) {
                self.body_bytes += body.len();
            }
        }
    }
}

/// An immutable host table partitioned over N [`FrozenWeb`] shards.
///
/// Hosts route to shards by the FNV-1a hash of their [`DomainName`] —
/// the exact assignment [`ShardRouter`] computes — so a domain's shard
/// is stable across platforms, processes, and shard-local generation
/// order. Any shard count ≥ 1 is valid; power-of-two counts route with
/// a mask, others with a modulo. A count of 1 is the unsharded baseline
/// (one shard holding everything), which the equivalence property tests
/// lean on.
#[derive(Debug, Clone)]
pub struct ShardedFrozenWeb {
    shards: Arc<Vec<FrozenWeb>>,
    router: ShardRouter,
}

impl ShardedFrozenWeb {
    /// Freeze an explicit host table into `shard_count` shards.
    pub fn from_hosts<I: IntoIterator<Item = SiteHost>>(
        hosts: I,
        shard_count: usize,
    ) -> ShardedFrozenWeb {
        let router = ShardRouter::new(shard_count);
        let mut buckets: Vec<Vec<SiteHost>> = (0..shard_count).map(|_| Vec::new()).collect();
        for host in hosts {
            buckets[router.route(host.domain())].push(host);
        }
        ShardedFrozenWeb {
            shards: Arc::new(buckets.into_iter().map(FrozenWeb::from_hosts).collect()),
            router,
        }
    }

    /// Reshard an existing single-table snapshot. Host clones are bundles
    /// of refcount bumps (interned bodies, shared header maps), so this
    /// duplicates table entries, not page payloads.
    pub fn from_frozen(frozen: &FrozenWeb, shard_count: usize) -> ShardedFrozenWeb {
        ShardedFrozenWeb::from_hosts(frozen.iter_hosts().map(|(_, h)| h.clone()), shard_count)
    }

    /// Assemble from per-shard tables that were *already routed* — the
    /// concurrent corpus generator builds each shard's `FrozenWeb` on its
    /// own pool task and stitches them here. Debug builds verify every
    /// host actually lives on its routed shard.
    pub fn from_routed_shards(shards: Vec<FrozenWeb>) -> ShardedFrozenWeb {
        assert!(!shards.is_empty(), "at least one shard required");
        let router = ShardRouter::new(shards.len());
        debug_assert!(shards.iter().enumerate().all(|(idx, shard)| {
            shard
                .iter_hosts()
                .all(|(domain, _)| router.route(domain) == idx)
        }));
        ShardedFrozenWeb {
            shards: Arc::new(shards),
            router,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `host` routes to.
    pub fn shard_of(&self, host: &DomainName) -> usize {
        self.router.route(host)
    }

    /// The per-shard tables, in shard order.
    pub fn shards(&self) -> &[FrozenWeb] {
        &self.shards
    }

    /// The host registered under `host`, if any. Lock-free: one hash to
    /// pick the shard, then the shard's map lookup.
    pub fn host(&self, host: &DomainName) -> Option<&SiteHost> {
        self.shards[self.router.route(host)].host(host)
    }

    /// True if a host with this name exists.
    pub fn has_host(&self, host: &DomainName) -> bool {
        self.host(host).is_some()
    }

    /// Number of hosts across all shards.
    pub fn host_count(&self) -> usize {
        self.shards.iter().map(FrozenWeb::host_count).sum()
    }

    /// All host names, sorted (across shards — same order a single-table
    /// [`FrozenWeb::hosts`] would produce).
    pub fn hosts(&self) -> Vec<DomainName> {
        let mut hosts: Vec<DomainName> = self
            .shards
            .iter()
            .flat_map(|s| s.iter_hosts().map(|(d, _)| d.clone()))
            .collect();
        hosts.sort();
        hosts
    }

    /// The interned body a host serves at `path`, borrowed from the
    /// snapshot.
    pub fn page_body(&self, host: &DomainName, path: &str) -> Option<&PageBody> {
        self.host(host).and_then(|h| h.page_body(path))
    }

    /// The HTML a host serves at `path`, borrowed from the snapshot.
    pub fn page_html(&self, host: &DomainName, path: &str) -> Option<&str> {
        self.host(host).and_then(|h| h.page_html(path))
    }

    /// Resolve what a host would serve for a URL — identical semantics to
    /// [`FrozenWeb::serve`], routed shard-then-host.
    pub fn serve(&self, url: &Url) -> ServedPage {
        self.shards[self.router.route(&url.host)].serve(url)
    }

    /// Collapse the shards back into one single-table [`FrozenWeb`].
    /// Table entries are cloned (refcount bumps); interned bodies are
    /// shared with the sharded store.
    pub fn collapse(&self) -> FrozenWeb {
        FrozenWeb::from_hosts(
            self.shards
                .iter()
                .flat_map(|s| s.iter_hosts().map(|(_, h)| h.clone())),
        )
    }

    /// A mutable web view over this sharded snapshot: reads fall through
    /// to the shards, writes land in a fresh overlay.
    pub fn to_web(&self) -> SimulatedWeb {
        SimulatedWeb::from_sharded(self.clone())
    }

    /// True when `other` shares this store's shard vector (refcount
    /// identity, not deep comparison).
    pub fn ptr_eq(&self, other: &ShardedFrozenWeb) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }

    /// Per-shard size accounting, in shard order — the numbers behind the
    /// bench trajectory's flat-per-shard-memory claim.
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards
            .iter()
            .map(|shard| {
                let mut stats = StoreStats::default();
                for (_, host) in shard.iter_hosts() {
                    stats.add_host(host);
                }
                stats
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_with_page(name: &str, path: &str, html: &str) -> SiteHost {
        let mut host = SiteHost::new(name).unwrap();
        host.add_page(path, html);
        host
    }

    fn sample_hosts(n: usize) -> Vec<SiteHost> {
        (0..n)
            .map(|i| host_with_page(&format!("site-{i}.example"), "/", &format!("<p>{i}</p>")))
            .collect()
    }

    #[test]
    fn routes_and_serves_like_single_table() {
        let single = FrozenWeb::from_hosts(sample_hosts(40));
        for count in [1usize, 2, 7, 16] {
            let sharded = ShardedFrozenWeb::from_frozen(&single, count);
            assert_eq!(sharded.shard_count(), count);
            assert_eq!(sharded.host_count(), single.host_count());
            assert_eq!(sharded.hosts(), single.hosts());
            for domain in single.hosts() {
                assert!(sharded.has_host(&domain));
                assert_eq!(
                    sharded.page_html(&domain, "/"),
                    single.page_html(&domain, "/")
                );
                assert!(sharded.shard_of(&domain) < count);
            }
        }
    }

    #[test]
    fn collapse_round_trips() {
        let single = FrozenWeb::from_hosts(sample_hosts(25));
        let collapsed = ShardedFrozenWeb::from_frozen(&single, 7).collapse();
        assert_eq!(collapsed.hosts(), single.hosts());
        for domain in single.hosts() {
            assert_eq!(
                collapsed.page_html(&domain, "/"),
                single.page_html(&domain, "/")
            );
        }
    }

    #[test]
    fn bodies_are_shared_not_copied() {
        let single = FrozenWeb::from_hosts(sample_hosts(5));
        let sharded = ShardedFrozenWeb::from_frozen(&single, 2);
        for domain in single.hosts() {
            let a = single.page_body(&domain, "/").unwrap();
            let b = sharded.page_body(&domain, "/").unwrap();
            assert!(
                std::ptr::eq(a.as_bytes().as_ptr(), b.as_bytes().as_ptr()),
                "sharding must bump refcounts, not copy page payloads"
            );
        }
    }

    #[test]
    fn clone_is_identity() {
        let sharded = ShardedFrozenWeb::from_hosts(sample_hosts(10), 4);
        let clone = sharded.clone();
        assert!(sharded.ptr_eq(&clone));
        assert!(!sharded.ptr_eq(&ShardedFrozenWeb::from_hosts(sample_hosts(10), 4)));
    }

    #[test]
    fn shard_stats_cover_every_host_and_byte() {
        let hosts = sample_hosts(30);
        let total_bytes: usize = hosts
            .iter()
            .map(|h| h.page_body("/").map_or(0, |b| b.len()))
            .sum();
        let sharded = ShardedFrozenWeb::from_hosts(hosts, 7);
        let stats = sharded.shard_stats();
        assert_eq!(stats.len(), 7);
        assert_eq!(stats.iter().map(|s| s.hosts).sum::<usize>(), 30);
        assert_eq!(stats.iter().map(|s| s.pages).sum::<usize>(), 30);
        assert_eq!(
            stats.iter().map(|s| s.body_bytes).sum::<usize>(),
            total_bytes
        );
    }

    #[test]
    fn from_routed_shards_matches_from_hosts() {
        let hosts = sample_hosts(20);
        let direct = ShardedFrozenWeb::from_hosts(hosts.clone(), 4);
        let router = ShardRouter::new(4);
        let mut buckets: Vec<Vec<SiteHost>> = (0..4).map(|_| Vec::new()).collect();
        for host in hosts {
            buckets[router.route(host.domain())].push(host);
        }
        let stitched = ShardedFrozenWeb::from_routed_shards(
            buckets.into_iter().map(FrozenWeb::from_hosts).collect(),
        );
        assert_eq!(stitched.hosts(), direct.hosts());
        for (a, b) in stitched.shards().iter().zip(direct.shards()) {
            assert_eq!(a.hosts(), b.hosts());
        }
    }
}
