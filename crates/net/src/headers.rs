//! A case-insensitive HTTP header map.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A case-insensitive, order-stable map of HTTP headers.
///
/// Header names are normalised to lowercase on insertion (HTTP/2 style);
/// values are stored verbatim. Multiple values for the same name are joined
/// with `", "` as permitted by RFC 9110 for list-valued fields — sufficient
/// for the headers the study inspects (`Content-Type`, `X-Robots-Tag`,
/// `Location`, `Set-Cookie` is handled by the browser crate separately).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: BTreeMap<String, String>,
}

impl HeaderMap {
    /// Create an empty header map.
    pub fn new() -> HeaderMap {
        HeaderMap::default()
    }

    /// Insert a header, replacing any existing value for the same
    /// (case-insensitive) name.
    pub fn set<N: AsRef<str>, V: Into<String>>(&mut self, name: N, value: V) -> &mut Self {
        self.entries
            .insert(name.as_ref().to_ascii_lowercase(), value.into());
        self
    }

    /// Append a value: if the header exists, the new value is joined with
    /// `", "`; otherwise it is inserted.
    pub fn append<N: AsRef<str>, V: AsRef<str>>(&mut self, name: N, value: V) -> &mut Self {
        let key = name.as_ref().to_ascii_lowercase();
        match self.entries.get_mut(&key) {
            Some(existing) => {
                existing.push_str(", ");
                existing.push_str(value.as_ref());
            }
            None => {
                self.entries.insert(key, value.as_ref().to_string());
            }
        }
        self
    }

    /// Get a header value by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// True if the header is present.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&name.to_ascii_lowercase())
    }

    /// True if the header is present and any comma-separated element equals
    /// `token` (ASCII case-insensitive) — e.g.
    /// `has_token("x-robots-tag", "noindex")`.
    pub fn has_token(&self, name: &str, token: &str) -> bool {
        self.get(name)
            .map(|v| {
                v.split(',')
                    .any(|part| part.trim().eq_ignore_ascii_case(token))
            })
            .unwrap_or(false)
    }

    /// Remove a header, returning its value if present.
    pub fn remove(&mut self, name: &str) -> Option<String> {
        self.entries.remove(&name.to_ascii_lowercase())
    }

    /// Number of distinct header names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no headers are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_are_case_insensitive() {
        let mut h = HeaderMap::new();
        h.set("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
        assert!(!h.contains("accept"));
    }

    #[test]
    fn set_replaces_existing_value() {
        let mut h = HeaderMap::new();
        h.set("X-Robots-Tag", "noindex");
        h.set("x-robots-tag", "none");
        assert_eq!(h.get("x-robots-tag"), Some("none"));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn append_joins_values() {
        let mut h = HeaderMap::new();
        h.append("X-Robots-Tag", "noindex");
        h.append("X-Robots-Tag", "nofollow");
        assert_eq!(h.get("x-robots-tag"), Some("noindex, nofollow"));
    }

    #[test]
    fn has_token_matches_list_elements() {
        let mut h = HeaderMap::new();
        h.set("X-Robots-Tag", "noindex, nofollow");
        assert!(h.has_token("x-robots-tag", "noindex"));
        assert!(h.has_token("x-robots-tag", "NOFOLLOW"));
        assert!(!h.has_token("x-robots-tag", "noarchive"));
        assert!(!h.has_token("missing", "noindex"));
    }

    #[test]
    fn remove_and_empty() {
        let mut h = HeaderMap::new();
        assert!(h.is_empty());
        h.set("Location", "/elsewhere");
        assert_eq!(h.remove("location"), Some("/elsewhere".to_string()));
        assert!(h.is_empty());
        assert_eq!(h.remove("location"), None);
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut h = HeaderMap::new();
        h.set("b-header", "2");
        h.set("a-header", "1");
        let names: Vec<&str> = h.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a-header", "b-header"]);
    }
}
