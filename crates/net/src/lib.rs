//! Simulated HTTP substrate for the Related Website Sets reproduction.
//!
//! The paper's tooling crawls the live Web: it fetches every proposed set
//! member's `/.well-known/related-website-set.json` file, checks HTTPS and
//! `X-Robots-Tag` headers (service sites must not be indexable), downloads
//! page HTML for the similarity analysis in Figure 4, and confirms that
//! survey sites are live. This environment is offline, so this crate
//! provides a deterministic, in-process stand-in for that Web:
//!
//! * [`Url`] — a small, strict URL type (scheme, host, port, path, query)
//!   restricted to the `http`/`https` schemes the study needs;
//! * [`Request`]/[`Response`]/[`HeaderMap`]/[`StatusCode`] — an HTTP message
//!   model sufficient for header- and status-level validation;
//! * [`SimulatedWeb`] — a registry mapping hosts to [`SiteHost`]s with
//!   routable paths, redirects, latency and failure injection; page bodies
//!   are interned ([`PageBody`]) and [`SimulatedWeb::freeze`] snapshots the
//!   registry into a lock-free, borrow-friendly [`FrozenWeb`];
//! * [`Fetcher`] — a client with redirect following, HTTPS enforcement and
//!   a request log, which is what the validation bot and corpus crawler use;
//! * [`FaultPlan`]/[`FaultInjector`] — deterministic transient-fault
//!   injection (refusals, latency spikes, 5xx bursts, truncated bodies,
//!   redirect storms) derived purely from `(seed, host, request ordinal)`,
//!   paired with a [`RetryPolicy`] whose backoff jitter comes from a
//!   derived rng stream, so fault-and-retry schedules replay identically.
//!
//! Everything is synchronous and deterministic: "latency" is simulated time
//! carried on the response, not wall-clock sleeping, so experiments are
//! exactly reproducible.
//!
//! ```
//! use rws_net::{Fetcher, SimulatedWeb, SiteHost, Url};
//!
//! let mut web = SimulatedWeb::new();
//! let mut host = SiteHost::new("example.com").unwrap();
//! host.add_page("/", "<html><body>Hello</body></html>");
//! web.register(host);
//!
//! let fetcher = Fetcher::new(web);
//! let resp = fetcher.get(&Url::parse("https://example.com/").unwrap()).unwrap();
//! assert!(resp.status.is_success());
//! assert!(resp.body_text().contains("Hello"));
//! ```

pub mod error;
pub mod fault;
pub mod fetcher;
pub mod headers;
pub mod message;
pub mod store;
pub mod url;
pub mod web;
pub mod well_known;

pub use error::NetError;
pub use fault::{Fault, FaultInjector, FaultPlan, FaultScale, FetchSession};
pub use fetcher::{FetchOutcome, FetchPolicy, Fetcher, RetryPolicy};
pub use headers::HeaderMap;
pub use message::{Method, Request, Response, StatusCode};
pub use store::{ShardedFrozenWeb, StoreStats};
pub use url::Url;
pub use web::{FrozenWeb, LatencyModel, PageBody, PageContent, ServedPage, SimulatedWeb, SiteHost};
pub use well_known::{well_known_path, WELL_KNOWN_RWS_PATH, X_ROBOTS_TAG};
