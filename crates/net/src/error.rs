//! Error types for the simulated network layer.

use crate::message::StatusCode;
use std::fmt;

/// Failures that the simulated fetcher can report.
///
/// These mirror the failure classes the RWS validation bot distinguishes
/// ("unable to fetch the .well-known JSON file" covers DNS failure,
/// connection refusal, non-success statuses and malformed payloads alike).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The URL string could not be parsed.
    InvalidUrl {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// No host with that name is registered in the simulated web.
    HostNotFound {
        /// The host that failed to resolve.
        host: String,
    },
    /// The host exists but refused the connection (simulated outage).
    ConnectionRefused {
        /// The unreachable host.
        host: String,
    },
    /// The request required HTTPS but the URL (or a redirect target) was
    /// plain HTTP. The RWS submission guidelines forbid non-HTTPS sites.
    HttpsRequired {
        /// The offending URL.
        url: String,
    },
    /// The server answered with a non-success status when the caller asked
    /// for success ([`Fetcher::get_success`](crate::Fetcher::get_success)
    /// and [`Fetcher::get_json`](crate::Fetcher::get_json)); the real
    /// status is carried rather than erased. Plain
    /// [`Fetcher::get`](crate::Fetcher::get) returns the
    /// [`Response`](crate::Response) instead.
    HttpStatus {
        /// The URL that produced the status.
        url: String,
        /// The non-success status the server returned.
        status: StatusCode,
    },
    /// Redirect chain exceeded the fetch policy's limit.
    TooManyRedirects {
        /// The URL that started the chain.
        start: String,
        /// The configured limit.
        limit: usize,
    },
    /// The response body was expected to be JSON but did not parse.
    InvalidJson {
        /// The URL whose body failed to parse.
        url: String,
        /// Parser error message.
        reason: String,
    },
    /// The simulated host timed out (latency exceeded the policy deadline).
    Timeout {
        /// The URL that timed out.
        url: String,
        /// Simulated latency in milliseconds.
        latency_ms: u64,
        /// The policy deadline in milliseconds.
        deadline_ms: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidUrl { input, reason } => {
                write!(f, "invalid URL '{input}': {reason}")
            }
            NetError::HostNotFound { host } => write!(f, "host '{host}' not found"),
            NetError::ConnectionRefused { host } => {
                write!(f, "connection to '{host}' refused")
            }
            NetError::HttpsRequired { url } => {
                write!(f, "HTTPS required but '{url}' is not https")
            }
            NetError::HttpStatus { url, status } => {
                write!(f, "unexpected HTTP {status} at '{url}'")
            }
            NetError::TooManyRedirects { start, limit } => {
                write!(f, "more than {limit} redirects starting from '{start}'")
            }
            NetError::InvalidJson { url, reason } => {
                write!(f, "body at '{url}' is not valid JSON: {reason}")
            }
            NetError::Timeout {
                url,
                latency_ms,
                deadline_ms,
            } => write!(
                f,
                "request to '{url}' timed out ({latency_ms}ms > {deadline_ms}ms deadline)"
            ),
        }
    }
}

impl NetError {
    /// A short, stable class label for aggregation (the load engine tallies
    /// error traffic by class; one label per variant).
    pub fn class(&self) -> &'static str {
        match self {
            NetError::InvalidUrl { .. } => "invalid-url",
            NetError::HostNotFound { .. } => "host-not-found",
            NetError::ConnectionRefused { .. } => "connection-refused",
            NetError::HttpsRequired { .. } => "https-required",
            NetError::HttpStatus { .. } => "http-status",
            NetError::TooManyRedirects { .. } => "too-many-redirects",
            NetError::InvalidJson { .. } => "invalid-json",
            NetError::Timeout { .. } => "timeout",
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NetError::HostNotFound {
            host: "missing.example".into(),
        };
        assert!(e.to_string().contains("missing.example"));
        let e = NetError::TooManyRedirects {
            start: "https://a.example/".into(),
            limit: 5,
        };
        assert!(e.to_string().contains('5'));
        let e = NetError::Timeout {
            url: "https://slow.example/".into(),
            latency_ms: 900,
            deadline_ms: 500,
        };
        assert!(e.to_string().contains("900"));
    }
}
