//! Error types for the simulated network layer.

use crate::message::StatusCode;
use std::fmt;

/// Failures that the simulated fetcher can report.
///
/// These mirror the failure classes the RWS validation bot distinguishes
/// ("unable to fetch the .well-known JSON file" covers DNS failure,
/// connection refusal, non-success statuses and malformed payloads alike).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The URL string could not be parsed.
    InvalidUrl {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// No host with that name is registered in the simulated web.
    HostNotFound {
        /// The host that failed to resolve.
        host: String,
    },
    /// The host exists but refused the connection (simulated outage).
    ConnectionRefused {
        /// The unreachable host.
        host: String,
    },
    /// The request required HTTPS but the URL (or a redirect target) was
    /// plain HTTP. The RWS submission guidelines forbid non-HTTPS sites.
    HttpsRequired {
        /// The offending URL.
        url: String,
    },
    /// The server answered with a non-success status when the caller asked
    /// for success ([`Fetcher::get_success`](crate::Fetcher::get_success)
    /// and [`Fetcher::get_json`](crate::Fetcher::get_json)); the real
    /// status is carried rather than erased. Plain
    /// [`Fetcher::get`](crate::Fetcher::get) returns the
    /// [`Response`](crate::Response) instead.
    HttpStatus {
        /// The URL that produced the status.
        url: String,
        /// The non-success status the server returned.
        status: StatusCode,
    },
    /// Redirect chain exceeded the fetch policy's limit.
    TooManyRedirects {
        /// The URL that started the chain.
        start: String,
        /// The configured limit.
        limit: usize,
    },
    /// The response body was expected to be JSON but did not parse.
    InvalidJson {
        /// The URL whose body failed to parse.
        url: String,
        /// Parser error message.
        reason: String,
    },
    /// The simulated host timed out (accumulated latency exceeded the
    /// policy deadline). The deadline covers the *whole* redirect chain, so
    /// the error carries both the URL the chain started from and the hop it
    /// died on — a mid-chain timeout is attributable to the chain, not
    /// misread as the final hop alone being slow.
    Timeout {
        /// The URL the fetch started from (the chain entry).
        start: String,
        /// The hop being fetched when the deadline was exceeded.
        url: String,
        /// Accumulated simulated latency across the chain, in milliseconds.
        latency_ms: u64,
        /// The policy deadline in milliseconds.
        deadline_ms: u64,
        /// Redirects already followed before the fatal hop.
        redirects_followed: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidUrl { input, reason } => {
                write!(f, "invalid URL '{input}': {reason}")
            }
            NetError::HostNotFound { host } => write!(f, "host '{host}' not found"),
            NetError::ConnectionRefused { host } => {
                write!(f, "connection to '{host}' refused")
            }
            NetError::HttpsRequired { url } => {
                write!(f, "HTTPS required but '{url}' is not https")
            }
            NetError::HttpStatus { url, status } => {
                write!(f, "unexpected HTTP {status} at '{url}'")
            }
            NetError::TooManyRedirects { start, limit } => {
                write!(f, "more than {limit} redirects starting from '{start}'")
            }
            NetError::InvalidJson { url, reason } => {
                write!(f, "body at '{url}' is not valid JSON: {reason}")
            }
            NetError::Timeout {
                start,
                url,
                latency_ms,
                deadline_ms,
                redirects_followed,
            } => write!(
                f,
                "request starting at '{start}' timed out at '{url}' after \
                 {redirects_followed} redirect(s) ({latency_ms}ms > {deadline_ms}ms deadline)"
            ),
        }
    }
}

impl NetError {
    /// A short, stable class label for aggregation (the load engine tallies
    /// error traffic by class; one label per variant).
    pub fn class(&self) -> &'static str {
        match self {
            NetError::InvalidUrl { .. } => "invalid-url",
            NetError::HostNotFound { .. } => "host-not-found",
            NetError::ConnectionRefused { .. } => "connection-refused",
            NetError::HttpsRequired { .. } => "https-required",
            NetError::HttpStatus { .. } => "http-status",
            NetError::TooManyRedirects { .. } => "too-many-redirects",
            NetError::InvalidJson { .. } => "invalid-json",
            NetError::Timeout { .. } => "timeout",
        }
    }

    /// Whether a retrying fetch path should attempt this request again.
    ///
    /// The split mirrors the transient fault classes the fault injector
    /// models: refused connections, deadline timeouts, 5xx answers,
    /// garbled/truncated JSON payloads and redirect storms can all clear on
    /// a re-check, while bad URLs, unknown hosts (the frozen store never
    /// grows a host mid-run), HTTPS-policy violations and non-5xx statuses
    /// are persistent. The `match` is deliberately total — no `_` arm — so
    /// adding a variant forces a classification decision here.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::InvalidUrl { .. } => false,
            NetError::HostNotFound { .. } => false,
            NetError::ConnectionRefused { .. } => true,
            NetError::HttpsRequired { .. } => false,
            NetError::HttpStatus { status, .. } => status.is_server_error(),
            NetError::TooManyRedirects { .. } => true,
            NetError::InvalidJson { .. } => true,
            NetError::Timeout { .. } => true,
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NetError::HostNotFound {
            host: "missing.example".into(),
        };
        assert!(e.to_string().contains("missing.example"));
        let e = NetError::TooManyRedirects {
            start: "https://a.example/".into(),
            limit: 5,
        };
        assert!(e.to_string().contains('5'));
        let e = NetError::Timeout {
            start: "https://entry.example/".into(),
            url: "https://slow.example/".into(),
            latency_ms: 900,
            deadline_ms: 500,
            redirects_followed: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("900"));
        assert!(msg.contains("entry.example"), "chain start missing: {msg}");
        assert!(msg.contains("slow.example"), "fatal hop missing: {msg}");
    }

    /// One representative of every variant, in declaration order. Adding a
    /// variant without extending this list fails the exhaustiveness
    /// assertions below.
    fn one_of_each() -> Vec<NetError> {
        vec![
            NetError::InvalidUrl {
                input: "x".into(),
                reason: "r".into(),
            },
            NetError::HostNotFound { host: "h".into() },
            NetError::ConnectionRefused { host: "h".into() },
            NetError::HttpsRequired { url: "u".into() },
            NetError::HttpStatus {
                url: "u".into(),
                status: StatusCode::NOT_FOUND,
            },
            NetError::TooManyRedirects {
                start: "s".into(),
                limit: 5,
            },
            NetError::InvalidJson {
                url: "u".into(),
                reason: "r".into(),
            },
            NetError::Timeout {
                start: "s".into(),
                url: "u".into(),
                latency_ms: 1,
                deadline_ms: 1,
                redirects_followed: 0,
            },
        ]
    }

    #[test]
    fn class_labels_are_unique_across_all_variants() {
        // Duplicate labels would silently merge counters in the load
        // report's error tally.
        let errors = one_of_each();
        let labels: std::collections::HashSet<&'static str> =
            errors.iter().map(NetError::class).collect();
        assert_eq!(labels.len(), errors.len(), "class labels collide");
    }

    #[test]
    fn retryable_classification_is_total_and_as_documented() {
        let expect = |err: &NetError| match err.class() {
            "invalid-url" | "host-not-found" | "https-required" => false,
            "connection-refused" | "too-many-redirects" | "invalid-json" | "timeout" => true,
            // 5xx retryable, everything else persistent.
            "http-status" => matches!(
                err,
                NetError::HttpStatus { status, .. } if status.is_server_error()
            ),
            other => panic!("unclassified label {other}"),
        };
        for err in one_of_each() {
            assert_eq!(err.is_retryable(), expect(&err), "{err}");
        }
        // The status split within http-status.
        let server_err = NetError::HttpStatus {
            url: "u".into(),
            status: StatusCode::SERVICE_UNAVAILABLE,
        };
        assert!(server_err.is_retryable());
        let client_err = NetError::HttpStatus {
            url: "u".into(),
            status: StatusCode::NOT_FOUND,
        };
        assert!(!client_err.is_retryable());
    }
}
