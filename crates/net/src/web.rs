//! The simulated Web: a registry of hosts, their pages and their behaviour.
//!
//! [`SimulatedWeb`] is the offline stand-in for the live Web the paper's
//! tooling crawls. Each registered [`SiteHost`] owns a set of paths mapping
//! to [`PageContent`] (HTML pages, JSON documents, redirects, or error
//! statuses), a per-host latency model, optional outage and HTTP-only
//! flags, and per-path extra headers (e.g. `X-Robots-Tag: noindex` on
//! service sites).
//!
//! # The frozen page store
//!
//! The corpus is write-once, read-hundreds-of-times: every page is rendered
//! exactly once during generation and then re-read by the classifier, the
//! Figure 4 similarity sweeps, the validation bot and the benches. The
//! storage layer therefore follows the standard read-mostly-snapshot
//! design:
//!
//! * page bodies are interned as [`PageBody`] — an immutable, UTF-8,
//!   refcounted buffer — at registration time, so *no* later layer ever
//!   copies a body (serving bumps a refcount, reading borrows `&str`);
//! * [`SimulatedWeb::freeze`] snapshots the host table into a
//!   [`FrozenWeb`]: an `Arc`-shared immutable map with **no lock on the
//!   read path**, whose accessors hand out real borrows
//!   ([`FrozenWeb::page_html`]) rather than guard-bounded views;
//! * the `SimulatedWeb` itself becomes a thin mutable *overlay* above its
//!   frozen base: post-freeze registrations (the governance replay's defect
//!   hosts) and copy-on-write [`update_host`](SimulatedWeb::update_host)
//!   mutations land in the overlay, while the frozen snapshot — and every
//!   borrowed view taken from it — stays valid and unchanged.

use crate::headers::HeaderMap;
use crate::message::StatusCode;
use crate::store::ShardedFrozenWeb;
use crate::url::Url;
use bytes::Bytes;
use parking_lot::RwLock;
use rws_domain::DomainName;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned, immutable page body: UTF-8 text backed by a refcounted
/// [`Bytes`] buffer. Cloning is O(1); [`as_str`](PageBody::as_str) borrows
/// and [`bytes`](PageBody::bytes) shares the buffer with a `Response`
/// without copying.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct PageBody {
    bytes: Bytes,
}

impl PageBody {
    /// The single intern point: every constructor funnels through here, so
    /// this is the one place the UTF-8 invariant behind
    /// [`as_str`](PageBody::as_str) is established.
    fn intern(bytes: Bytes) -> PageBody {
        debug_assert!(
            std::str::from_utf8(&bytes).is_ok(),
            "PageBody buffers must be valid UTF-8"
        );
        PageBody { bytes }
    }

    /// Intern a body. The single copy of the page's lifetime happens here.
    pub fn new<S: Into<String>>(text: S) -> PageBody {
        PageBody::intern(Bytes::from(text.into()))
    }

    /// Intern raw bytes after checking they are UTF-8 — the constructor to
    /// use for buffers that did not come from `str`/`String`. Returns
    /// `None` (rather than corrupting [`as_str`](PageBody::as_str)) when
    /// the bytes are not valid UTF-8.
    pub fn from_utf8(bytes: Bytes) -> Option<PageBody> {
        std::str::from_utf8(&bytes).ok()?;
        Some(PageBody::intern(bytes))
    }

    /// Borrow the body as text.
    pub fn as_str(&self) -> &str {
        // Safety: every constructor funnels through `intern`, whose callers
        // supply `str`/`String` data or (for `from_utf8`) pre-validate, so
        // the buffer is valid UTF-8 by construction.
        unsafe { std::str::from_utf8_unchecked(&self.bytes) }
    }

    /// A copy of this body cut to at most `max_len` bytes, snapped *down*
    /// to a char boundary so the result remains valid UTF-8 (the fault
    /// injector's truncated-payload fault). Bodies already within the limit
    /// are shared, not copied.
    pub fn truncated(&self, max_len: usize) -> PageBody {
        if max_len >= self.len() {
            return self.clone();
        }
        let s = self.as_str();
        let mut cut = max_len;
        while cut > 0 && !s.is_char_boundary(cut) {
            cut -= 1;
        }
        PageBody::from(&s[..cut])
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Share the underlying buffer (refcount bump, no copy) — what the
    /// fetcher puts on `Response.body`.
    pub fn bytes(&self) -> Bytes {
        self.bytes.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl std::ops::Deref for PageBody {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for PageBody {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<String> for PageBody {
    fn from(s: String) -> PageBody {
        PageBody::new(s)
    }
}

impl From<&str> for PageBody {
    /// Intern a borrowed body with a single copy, straight into the shared
    /// buffer — the path arena-rendered pages take (`PageBody::new` via
    /// `Into<String>` would copy twice: once into the `String`, once into
    /// `Bytes`).
    fn from(s: &str) -> PageBody {
        PageBody::intern(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl PartialEq<str> for PageBody {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for PageBody {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Debug for PageBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for PageBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a host serves at a particular path. Body-carrying variants hold
/// interned [`PageBody`]s, so cloning a `PageContent` (e.g. into a
/// [`ServedPage`]) is a refcount bump, never a page copy.
#[derive(Debug, Clone, PartialEq)]
pub enum PageContent {
    /// An HTML page served with `Content-Type: text/html`.
    Html(PageBody),
    /// A JSON document served with `Content-Type: application/json`.
    Json(PageBody),
    /// Plain text.
    Text(PageBody),
    /// A redirect to another URL or absolute path.
    Redirect {
        /// Redirect target (absolute URL or absolute path).
        location: String,
        /// Whether to use 301 (permanent) or 302 (found).
        permanent: bool,
    },
    /// A fixed non-success status with an optional body.
    Error {
        /// The status code to return.
        status: StatusCode,
        /// Body text served with the error.
        body: PageBody,
    },
}

impl PageContent {
    /// The interned body, for variants that carry one (redirects do not).
    pub fn body(&self) -> Option<&PageBody> {
        match self {
            PageContent::Html(body)
            | PageContent::Json(body)
            | PageContent::Text(body)
            | PageContent::Error { body, .. } => Some(body),
            PageContent::Redirect { .. } => None,
        }
    }

    /// The body as borrowed text, if this is an HTML page.
    pub fn html(&self) -> Option<&str> {
        match self {
            PageContent::Html(body) => Some(body.as_str()),
            _ => None,
        }
    }
}

/// Deterministic latency model for a host.
///
/// Latency is *simulated*: it is reported on the [`Response`] rather than
/// slept, so experiments remain fast and reproducible. The model is a base
/// cost plus a per-kilobyte transfer cost, which is enough to drive the
/// fetch-budget ablations.
///
/// [`Response`]: crate::message::Response
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-request cost in milliseconds (connection + TTFB).
    pub base_ms: u64,
    /// Additional cost per kilobyte of body, in milliseconds.
    pub per_kb_ms: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_ms: 40,
            per_kb_ms: 2,
        }
    }
}

impl LatencyModel {
    /// Latency for a response body of `body_len` bytes.
    pub fn latency_for(&self, body_len: usize) -> u64 {
        self.base_ms + self.per_kb_ms * (body_len as u64 / 1024)
    }
}

/// A single host in the simulated web.
#[derive(Debug, Clone)]
pub struct SiteHost {
    host: DomainName,
    pages: HashMap<String, PageContent>,
    page_headers: HashMap<String, Arc<HeaderMap>>,
    latency: LatencyModel,
    /// If true, connections are refused (simulated outage).
    offline: bool,
    /// If true, the host only serves plain HTTP (https URLs get redirected
    /// down to http, which the RWS validation rejects).
    http_only: bool,
}

impl SiteHost {
    /// Create a host for the given domain name string.
    pub fn new(host: &str) -> Result<SiteHost, rws_domain::DomainError> {
        Ok(SiteHost::for_domain(DomainName::parse(host)?))
    }

    /// Create a host from an already-validated domain name.
    pub fn for_domain(host: DomainName) -> SiteHost {
        SiteHost {
            host,
            pages: HashMap::new(),
            page_headers: HashMap::new(),
            latency: LatencyModel::default(),
            offline: false,
            http_only: false,
        }
    }

    /// The host's domain name.
    pub fn domain(&self) -> &DomainName {
        &self.host
    }

    /// Serve an HTML page at `path`. The body is interned once, here.
    pub fn add_page<S: Into<PageBody>>(&mut self, path: &str, html: S) -> &mut Self {
        self.pages
            .insert(path.to_string(), PageContent::Html(html.into()));
        self
    }

    /// Serve a JSON document at `path`.
    pub fn add_json<S: Into<PageBody>>(&mut self, path: &str, json: S) -> &mut Self {
        self.pages
            .insert(path.to_string(), PageContent::Json(json.into()));
        self
    }

    /// Serve arbitrary content at `path`.
    pub fn add_content(&mut self, path: &str, content: PageContent) -> &mut Self {
        self.pages.insert(path.to_string(), content);
        self
    }

    /// Add an extra response header for a specific path (e.g. the
    /// `X-Robots-Tag` header required on service sites).
    pub fn add_header(&mut self, path: &str, name: &str, value: &str) -> &mut Self {
        Arc::make_mut(self.page_headers.entry(path.to_string()).or_default()).set(name, value);
        self
    }

    /// Replace the latency model.
    pub fn set_latency(&mut self, latency: LatencyModel) -> &mut Self {
        self.latency = latency;
        self
    }

    /// Mark the host as offline (connections refused).
    pub fn set_offline(&mut self, offline: bool) -> &mut Self {
        self.offline = offline;
        self
    }

    /// Mark the host as HTTP-only (no TLS).
    pub fn set_http_only(&mut self, http_only: bool) -> &mut Self {
        self.http_only = http_only;
        self
    }

    /// Whether the host is currently offline.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Whether the host serves only plain HTTP.
    pub fn is_http_only(&self) -> bool {
        self.http_only
    }

    /// The latency model in force.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Content registered at `path`, if any.
    pub fn page(&self, path: &str) -> Option<&PageContent> {
        self.pages.get(path)
    }

    /// The interned body registered at `path`, if the content there carries
    /// one.
    pub fn page_body(&self, path: &str) -> Option<&PageBody> {
        self.pages.get(path).and_then(PageContent::body)
    }

    /// The HTML registered at `path`, borrowed, if that path serves HTML.
    pub fn page_html(&self, path: &str) -> Option<&str> {
        self.pages.get(path).and_then(PageContent::html)
    }

    /// Extra headers registered for `path`.
    pub fn headers_for(&self, path: &str) -> Option<&HeaderMap> {
        self.page_headers.get(path).map(Arc::as_ref)
    }

    /// Extra headers for `path` as a shared handle — what
    /// [`ServedPage::Content`] carries, so serving never copies the map.
    pub fn shared_headers_for(&self, path: &str) -> Option<&Arc<HeaderMap>> {
        self.page_headers.get(path)
    }

    /// All registered paths, sorted.
    pub fn paths(&self) -> Vec<&str> {
        let mut p: Vec<&str> = self.pages.keys().map(String::as_str).collect();
        p.sort_unstable();
        p
    }

    /// What this host serves for `url` (the host-level half of
    /// [`SimulatedWeb::serve`], shared with [`FrozenWeb::serve`]). Assumes
    /// `url.host` already routed here.
    fn serve_path(&self, url: &Url) -> ServedPage {
        if self.is_offline() {
            return ServedPage::Refused;
        }
        if url.is_https() && self.is_http_only() {
            return ServedPage::TlsUnavailable;
        }
        match self.page(&url.path) {
            Some(content) => ServedPage::Content {
                content: content.clone(),
                extra_headers: self.shared_headers_for(&url.path).cloned(),
                latency: self.latency(),
            },
            None => ServedPage::Missing {
                latency: self.latency(),
            },
        }
    }
}

/// An immutable, `Arc`-shared snapshot of a web's host table.
///
/// There is no lock anywhere on the read path: lookups walk a plain
/// `HashMap` behind an `Arc`, so accessors can hand out genuine borrows
/// ([`page_html`](FrozenWeb::page_html) returns `&str` tied to `&self`,
/// not to a lock guard) and concurrent pool tasks read without contention.
/// Cloning a `FrozenWeb` is a refcount bump.
#[derive(Debug, Clone, Default)]
pub struct FrozenWeb {
    hosts: Arc<HashMap<DomainName, SiteHost>>,
}

impl FrozenWeb {
    /// Freeze an explicit host table.
    pub fn from_hosts<I: IntoIterator<Item = SiteHost>>(hosts: I) -> FrozenWeb {
        FrozenWeb {
            hosts: Arc::new(hosts.into_iter().map(|h| (h.domain().clone(), h)).collect()),
        }
    }

    /// The host registered under `host`, if any. Lock-free.
    pub fn host(&self, host: &DomainName) -> Option<&SiteHost> {
        self.hosts.get(host)
    }

    /// True if a host with this name exists.
    pub fn has_host(&self, host: &DomainName) -> bool {
        self.hosts.contains_key(host)
    }

    /// Number of hosts in the snapshot.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// All host names, sorted.
    pub fn hosts(&self) -> Vec<DomainName> {
        let mut hosts: Vec<DomainName> = self.hosts.keys().cloned().collect();
        hosts.sort();
        hosts
    }

    /// The interned body a host serves at `path`, borrowed from the
    /// snapshot.
    pub fn page_body(&self, host: &DomainName, path: &str) -> Option<&PageBody> {
        self.hosts.get(host).and_then(|h| h.page_body(path))
    }

    /// The HTML a host serves at `path`, borrowed from the snapshot —
    /// the zero-copy read the classifier and the similarity sweeps run on.
    pub fn page_html(&self, host: &DomainName, path: &str) -> Option<&str> {
        self.hosts.get(host).and_then(|h| h.page_html(path))
    }

    /// Resolve what a host would serve for a URL — identical semantics to
    /// [`SimulatedWeb::serve`], without the lock. Body and headers on the
    /// result are refcount bumps into the snapshot.
    pub fn serve(&self, url: &Url) -> ServedPage {
        match self.hosts.get(&url.host) {
            Some(host) => host.serve_path(url),
            None => ServedPage::NoSuchHost,
        }
    }

    /// Iterate the host table, in map order (unspecified). Borrowed from
    /// the snapshot; used by the sharded store to reshard and collapse
    /// without copying page payloads.
    pub fn iter_hosts(&self) -> impl Iterator<Item = (&DomainName, &SiteHost)> {
        self.hosts.iter()
    }

    /// True when `other` shares this snapshot's host table (refcount
    /// identity, not deep comparison). This is the pin for
    /// [`SimulatedWeb::freeze`]'s fast path: freezing with an empty
    /// overlay hands back the *same* table, `ptr_eq`-verifiable.
    pub fn ptr_eq(&self, other: &FrozenWeb) -> bool {
        Arc::ptr_eq(&self.hosts, &other.hosts)
    }

    /// A mutable web view over this snapshot: reads fall through to the
    /// frozen base, writes land in a fresh overlay. The snapshot itself is
    /// never touched.
    pub fn to_web(&self) -> SimulatedWeb {
        SimulatedWeb::from_frozen(self.clone())
    }
}

/// The immutable base a [`SimulatedWeb`] reads through: one table, or a
/// sharded store. Reads resolve overlay-then-base either way; the
/// distinction only matters for which snapshot flavour freezing reuses.
#[derive(Debug, Clone)]
enum FrozenBase {
    Single(FrozenWeb),
    Sharded(ShardedFrozenWeb),
}

impl Default for FrozenBase {
    fn default() -> Self {
        FrozenBase::Single(FrozenWeb::default())
    }
}

impl FrozenBase {
    fn host(&self, host: &DomainName) -> Option<&SiteHost> {
        match self {
            FrozenBase::Single(f) => f.host(host),
            FrozenBase::Sharded(s) => s.host(host),
        }
    }

    fn has_host(&self, host: &DomainName) -> bool {
        match self {
            FrozenBase::Single(f) => f.has_host(host),
            FrozenBase::Sharded(s) => s.has_host(host),
        }
    }

    fn host_count(&self) -> usize {
        match self {
            FrozenBase::Single(f) => f.host_count(),
            FrozenBase::Sharded(s) => s.host_count(),
        }
    }

    fn host_names(&self) -> Vec<DomainName> {
        match self {
            FrozenBase::Single(f) => f.hosts.keys().cloned().collect(),
            FrozenBase::Sharded(s) => s
                .shards()
                .iter()
                .flat_map(|f| f.hosts.keys().cloned())
                .collect(),
        }
    }

    /// A fresh owned copy of the full table (refcount-bump host clones),
    /// the starting point for an overlay merge.
    fn cloned_table(&self) -> HashMap<DomainName, SiteHost> {
        match self {
            FrozenBase::Single(f) => (*f.hosts).clone(),
            FrozenBase::Sharded(s) => s
                .shards()
                .iter()
                .flat_map(|f| f.iter_hosts().map(|(d, h)| (d.clone(), h.clone())))
                .collect(),
        }
    }
}

/// Shared state of a [`SimulatedWeb`]: the immutable frozen base plus the
/// mutable overlay of post-freeze registrations and copy-on-write edits.
/// Overlay entries shadow same-named frozen hosts.
#[derive(Debug, Default)]
struct WebState {
    base: FrozenBase,
    overlay: HashMap<DomainName, SiteHost>,
}

impl WebState {
    fn host(&self, host: &DomainName) -> Option<&SiteHost> {
        self.overlay.get(host).or_else(|| self.base.host(host))
    }
}

/// The registry of every host in the simulated web.
///
/// Cloning a `SimulatedWeb` is cheap (it is an `Arc` around shared state),
/// so the same web can be handed to the fetcher, the validation bot and the
/// browser engine simultaneously. [`freeze`](SimulatedWeb::freeze) snapshots
/// the current hosts into an immutable [`FrozenWeb`]; later writes go to a
/// mutable overlay shared by every clone, leaving the snapshot untouched.
#[derive(Debug, Clone, Default)]
pub struct SimulatedWeb {
    inner: Arc<RwLock<WebState>>,
}

impl SimulatedWeb {
    /// Create an empty web.
    pub fn new() -> SimulatedWeb {
        SimulatedWeb::default()
    }

    /// Create a web whose read path falls through to an existing frozen
    /// snapshot (shared, not copied).
    pub fn from_frozen(frozen: FrozenWeb) -> SimulatedWeb {
        SimulatedWeb {
            inner: Arc::new(RwLock::new(WebState {
                base: FrozenBase::Single(frozen),
                overlay: HashMap::new(),
            })),
        }
    }

    /// Create a web whose read path falls through to a sharded frozen
    /// store (shared, not copied). Reads route overlay → shard → host;
    /// [`freeze_sharded`](SimulatedWeb::freeze_sharded) at the same shard
    /// count reuses the store when the overlay is empty.
    pub fn from_sharded(sharded: ShardedFrozenWeb) -> SimulatedWeb {
        SimulatedWeb {
            inner: Arc::new(RwLock::new(WebState {
                base: FrozenBase::Sharded(sharded),
                overlay: HashMap::new(),
            })),
        }
    }

    /// Register (or replace) a host. Post-freeze registrations land in the
    /// overlay and shadow any same-named frozen host.
    pub fn register(&mut self, host: SiteHost) {
        self.inner
            .write()
            .overlay
            .insert(host.domain().clone(), host);
    }

    /// True if a host with this name exists.
    pub fn has_host(&self, host: &DomainName) -> bool {
        let state = self.inner.read();
        state.overlay.contains_key(host) || state.base.has_host(host)
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        let state = self.inner.read();
        state.base.host_count()
            + state
                .overlay
                .keys()
                .filter(|d| !state.base.has_host(d))
                .count()
    }

    /// All registered host names, sorted.
    pub fn hosts(&self) -> Vec<DomainName> {
        let state = self.inner.read();
        let mut hosts: Vec<DomainName> = state.overlay.keys().cloned().collect();
        hosts.extend(
            state
                .base
                .host_names()
                .into_iter()
                .filter(|d| !state.overlay.contains_key(d)),
        );
        hosts.sort();
        hosts
    }

    /// Run a closure against a host's definition, if it exists.
    pub fn with_host<T>(&self, host: &DomainName, f: impl FnOnce(&SiteHost) -> T) -> Option<T> {
        self.inner.read().host(host).map(f)
    }

    /// Mutate a host's definition in place (e.g. take it offline mid-run).
    ///
    /// A frozen host is copied into the overlay first (cheap: interned
    /// bodies and shared header maps make the clone a bundle of refcount
    /// bumps), so the mutation is visible to every clone of this web while
    /// existing [`FrozenWeb`] snapshots keep serving the original.
    pub fn update_host(&mut self, host: &DomainName, f: impl FnOnce(&mut SiteHost)) -> bool {
        let mut state = self.inner.write();
        if let Some(h) = state.overlay.get_mut(host) {
            f(h);
            return true;
        }
        match state.base.host(host).cloned() {
            Some(mut h) => {
                f(&mut h);
                state.overlay.insert(host.clone(), h);
                true
            }
            None => false,
        }
    }

    /// Freeze the current host table into an immutable [`FrozenWeb`] and
    /// make it this web's new base (the overlay drains into it). Every
    /// clone of this web observes the freeze, since the state is shared.
    ///
    /// Freezing an already-frozen web with an empty overlay is free — it
    /// hands back the existing snapshot (a refcount bump,
    /// [`FrozenWeb::ptr_eq`]-verifiable), never a rebuilt table. A web
    /// whose base is *sharded* collapses it into a single table once and
    /// caches that as the new base, so repeat freezes are again free.
    pub fn freeze(&self) -> FrozenWeb {
        let mut state = self.inner.write();
        if state.overlay.is_empty() {
            if let FrozenBase::Single(frozen) = &state.base {
                return frozen.clone();
            }
        }
        let mut merged = state.base.cloned_table();
        merged.extend(state.overlay.drain());
        let frozen = FrozenWeb {
            hosts: Arc::new(merged),
        };
        state.base = FrozenBase::Single(frozen.clone());
        frozen
    }

    /// Freeze the current host table into a [`ShardedFrozenWeb`] over
    /// `shard_count` shards and make it this web's new base.
    ///
    /// Like [`freeze`](SimulatedWeb::freeze), the no-op case is free:
    /// an empty overlay over an already-sharded base at the same shard
    /// count hands back the existing store
    /// ([`ShardedFrozenWeb::ptr_eq`]-verifiable). Anything else — a
    /// single-table base, a different shard count, or pending overlay
    /// edits (which may land on different shards) — reshards once.
    pub fn freeze_sharded(&self, shard_count: usize) -> ShardedFrozenWeb {
        let mut state = self.inner.write();
        if state.overlay.is_empty() {
            if let FrozenBase::Sharded(sharded) = &state.base {
                if sharded.shard_count() == shard_count {
                    return sharded.clone();
                }
            }
        }
        let mut merged = state.base.cloned_table();
        merged.extend(state.overlay.drain());
        let sharded = ShardedFrozenWeb::from_hosts(merged.into_values(), shard_count);
        state.base = FrozenBase::Sharded(sharded.clone());
        sharded
    }

    /// The current frozen base as a single table (empty if no freeze ever
    /// happened). Overlay entries are *not* included; a sharded base is
    /// collapsed on the fly without replacing it.
    pub fn frozen_base(&self) -> FrozenWeb {
        match &self.inner.read().base {
            FrozenBase::Single(frozen) => frozen.clone(),
            FrozenBase::Sharded(sharded) => sharded.collapse(),
        }
    }

    /// The current sharded base, when the last freeze was sharded.
    pub fn sharded_base(&self) -> Option<ShardedFrozenWeb> {
        match &self.inner.read().base {
            FrozenBase::Single(_) => None,
            FrozenBase::Sharded(sharded) => Some(sharded.clone()),
        }
    }

    /// Resolve what a host would serve for a URL, without going through the
    /// fetcher's policy layer. This is the "server side" of the simulation.
    /// The returned body/headers are refcount bumps, not copies.
    pub fn serve(&self, url: &Url) -> ServedPage {
        match self.inner.read().host(&url.host) {
            Some(host) => host.serve_path(url),
            None => ServedPage::NoSuchHost,
        }
    }
}

/// The raw outcome of asking the simulated web to serve a URL.
///
/// `Content` shares the host's interned body and header map: constructing a
/// `ServedPage` never copies page text.
#[derive(Debug, Clone, PartialEq)]
pub enum ServedPage {
    /// No host by that name is registered (DNS failure analogue).
    NoSuchHost,
    /// The host is offline.
    Refused,
    /// The host exists but does not speak TLS, and an https URL was used.
    TlsUnavailable,
    /// The path is not registered on the host → 404.
    Missing {
        /// Host latency model, used to price the 404.
        latency: LatencyModel,
    },
    /// The path resolved to content.
    Content {
        /// What to serve (interned body; cloning bumped a refcount).
        content: PageContent,
        /// Extra per-path headers, shared with the host's definition.
        extra_headers: Option<Arc<HeaderMap>>,
        /// Host latency model.
        latency: LatencyModel,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn register_and_lookup_hosts() {
        let mut web = SimulatedWeb::new();
        assert_eq!(web.host_count(), 0);
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html></html>");
        web.register(host);
        assert!(web.has_host(&dn("example.com")));
        assert!(!web.has_host(&dn("other.com")));
        assert_eq!(web.host_count(), 1);
        assert_eq!(web.hosts(), vec![dn("example.com")]);
    }

    #[test]
    fn serve_content_and_missing() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html>home</html>");
        host.add_json("/.well-known/related-website-set.json", "{}");
        web.register(host);

        match web.serve(&Url::parse("https://example.com/").unwrap()) {
            ServedPage::Content { content, .. } => {
                assert_eq!(content, PageContent::Html("<html>home</html>".into()));
            }
            other => panic!("expected content, got {other:?}"),
        }
        assert!(matches!(
            web.serve(&Url::parse("https://example.com/missing").unwrap()),
            ServedPage::Missing { .. }
        ));
        assert_eq!(
            web.serve(&Url::parse("https://unknown.com/").unwrap()),
            ServedPage::NoSuchHost
        );
    }

    #[test]
    fn serve_respects_offline_and_http_only() {
        let mut web = SimulatedWeb::new();
        let mut down = SiteHost::new("down.com").unwrap();
        down.add_page("/", "x").set_offline(true);
        web.register(down);
        let mut insecure = SiteHost::new("insecure.com").unwrap();
        insecure.add_page("/", "x").set_http_only(true);
        web.register(insecure);

        assert_eq!(
            web.serve(&Url::parse("https://down.com/").unwrap()),
            ServedPage::Refused
        );
        assert_eq!(
            web.serve(&Url::parse("https://insecure.com/").unwrap()),
            ServedPage::TlsUnavailable
        );
        // Plain http to the http-only host still works.
        assert!(matches!(
            web.serve(&Url::parse("http://insecure.com/").unwrap()),
            ServedPage::Content { .. }
        ));
    }

    #[test]
    fn per_path_headers_are_served() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("svc.example.com").unwrap();
        host.add_page("/", "service");
        host.add_header("/", "X-Robots-Tag", "noindex");
        web.register(host);
        match web.serve(&Url::parse("https://svc.example.com/").unwrap()) {
            ServedPage::Content { extra_headers, .. } => {
                assert!(extra_headers
                    .expect("headers present")
                    .has_token("x-robots-tag", "noindex"));
            }
            other => panic!("expected content, got {other:?}"),
        }
    }

    #[test]
    fn served_headers_share_the_hosts_map() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("svc.example.com").unwrap();
        host.add_page("/", "service");
        host.add_header("/", "X-Robots-Tag", "noindex");
        web.register(host);
        let url = Url::parse("https://svc.example.com/").unwrap();
        let (a, b) = match (web.serve(&url), web.serve(&url)) {
            (
                ServedPage::Content {
                    extra_headers: Some(a),
                    ..
                },
                ServedPage::Content {
                    extra_headers: Some(b),
                    ..
                },
            ) => (a, b),
            other => panic!("expected two content serves, got {other:?}"),
        };
        // Two serves hand out the same shared map, not two copies.
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn update_host_mutates_in_place() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "x");
        web.register(host);
        assert!(web.update_host(&dn("example.com"), |h| {
            h.set_offline(true);
        }));
        assert_eq!(
            web.serve(&Url::parse("https://example.com/").unwrap()),
            ServedPage::Refused
        );
        assert!(!web.update_host(&dn("missing.com"), |_| {}));
    }

    #[test]
    fn cloned_web_shares_state() {
        let mut web = SimulatedWeb::new();
        let clone = web.clone();
        let mut host = SiteHost::new("shared.com").unwrap();
        host.add_page("/", "x");
        web.register(host);
        assert!(clone.has_host(&dn("shared.com")));
    }

    #[test]
    fn freeze_produces_lock_free_equivalent_reads() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html>frozen home</html>");
        host.add_header("/", "X-Robots-Tag", "noindex");
        web.register(host);
        let url = Url::parse("https://example.com/").unwrap();
        let before = web.serve(&url);
        let frozen = web.freeze();
        assert_eq!(frozen.serve(&url), before);
        assert_eq!(web.serve(&url), before);
        assert_eq!(frozen.host_count(), 1);
        assert_eq!(frozen.hosts(), web.hosts());
        assert_eq!(
            frozen.page_html(&dn("example.com"), "/"),
            Some("<html>frozen home</html>")
        );
        assert!(frozen.page_html(&dn("example.com"), "/missing").is_none());
        assert!(frozen.page_html(&dn("missing.com"), "/").is_none());
    }

    #[test]
    fn served_body_is_a_refcount_bump_of_the_interned_page() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html>interned</html>");
        web.register(host);
        let frozen = web.freeze();
        let url = Url::parse("https://example.com/").unwrap();
        let interned_ptr = frozen
            .page_body(&dn("example.com"), "/")
            .unwrap()
            .as_bytes()
            .as_ptr();
        match frozen.serve(&url) {
            ServedPage::Content { content, .. } => {
                let body = content.body().unwrap();
                assert_eq!(body.as_bytes().as_ptr(), interned_ptr, "body was copied");
            }
            other => panic!("expected content, got {other:?}"),
        }
    }

    #[test]
    fn post_freeze_writes_go_to_the_overlay_and_spare_the_snapshot() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "stable");
        web.register(host);
        let frozen = web.freeze();

        // A new host lands in the overlay: visible through the web, not the
        // earlier snapshot.
        let mut late = SiteHost::new("late.com").unwrap();
        late.add_page("/", "late");
        web.register(late);
        assert!(web.has_host(&dn("late.com")));
        assert!(!frozen.has_host(&dn("late.com")));
        assert_eq!(web.host_count(), 2);

        // A copy-on-write mutation of a frozen host: the web serves the new
        // behaviour, the snapshot keeps the original.
        assert!(web.update_host(&dn("example.com"), |h| {
            h.set_offline(true);
        }));
        let url = Url::parse("https://example.com/").unwrap();
        assert_eq!(web.serve(&url), ServedPage::Refused);
        assert!(matches!(frozen.serve(&url), ServedPage::Content { .. }));

        // Re-freezing folds the overlay in.
        let refrozen = web.freeze();
        assert_eq!(refrozen.host_count(), 2);
        assert_eq!(refrozen.serve(&url), ServedPage::Refused);
    }

    #[test]
    fn frozen_to_web_round_trip() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "x");
        web.register(host);
        let frozen = web.freeze();
        let mut view = frozen.to_web();
        assert!(view.has_host(&dn("example.com")));
        // Writes to the view do not disturb the snapshot.
        view.update_host(&dn("example.com"), |h| {
            h.set_offline(true);
        });
        assert!(!frozen.host(&dn("example.com")).unwrap().is_offline());
    }

    #[test]
    fn latency_model_prices_body_size() {
        let m = LatencyModel {
            base_ms: 10,
            per_kb_ms: 5,
        };
        assert_eq!(m.latency_for(0), 10);
        assert_eq!(m.latency_for(2048), 20);
        let d = LatencyModel::default();
        assert!(d.latency_for(0) > 0);
    }

    #[test]
    fn site_host_paths_sorted() {
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/b", "x").add_page("/a", "y");
        assert_eq!(host.paths(), vec!["/a", "/b"]);
        assert!(host.page("/a").is_some());
        assert!(host.page("/missing").is_none());
    }

    #[test]
    fn page_body_behaves_like_its_text() {
        let body = PageBody::from("héllo <b>world</b>");
        assert_eq!(body.as_str(), "héllo <b>world</b>");
        assert_eq!(body, "héllo <b>world</b>");
        assert_eq!(body.len(), "héllo <b>world</b>".len());
        assert!(!body.is_empty());
        assert!(PageBody::default().is_empty());
        assert_eq!(format!("{body}"), "héllo <b>world</b>");
        assert_eq!(format!("{body:?}"), format!("{:?}", "héllo <b>world</b>"));
        // Clones share the buffer.
        let clone = body.clone();
        assert_eq!(clone.as_bytes().as_ptr(), body.as_bytes().as_ptr());
        // bytes() shares it too.
        assert_eq!(body.bytes().as_ptr(), body.as_bytes().as_ptr());
    }

    #[test]
    fn page_body_rejects_non_utf8_bytes() {
        // The only constructor that can admit raw bytes checks them; the
        // `str`/`String` constructors are valid by their argument types.
        assert!(PageBody::from_utf8(Bytes::from_static(b"\xFF\xFEbad")).is_none());
        // A lone continuation byte is also rejected.
        assert!(PageBody::from_utf8(Bytes::from_static(b"ok \x80")).is_none());
        let ok = PageBody::from_utf8(Bytes::from_static("héllo".as_bytes())).unwrap();
        assert_eq!(ok.as_str(), "héllo");
    }

    #[test]
    fn truncated_snaps_to_char_boundaries() {
        let body = PageBody::from("héllo"); // 'é' spans bytes 1..3
        assert_eq!(body.truncated(2).as_str(), "h"); // mid-'é' snaps down
        assert_eq!(body.truncated(3).as_str(), "hé");
        assert_eq!(body.truncated(0).as_str(), "");
        // At or past the length: shared, not copied.
        let full = body.truncated(body.len());
        assert_eq!(full.as_bytes().as_ptr(), body.as_bytes().as_ptr());
        let past = body.truncated(body.len() + 10);
        assert_eq!(past.as_str(), "héllo");
        // The result is always valid UTF-8 at every cut point.
        for cut in 0..=body.len() {
            let t = body.truncated(cut);
            assert!(std::str::from_utf8(t.as_bytes()).is_ok());
            assert!(t.len() <= cut);
        }
    }
}
