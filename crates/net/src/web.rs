//! The simulated Web: a registry of hosts, their pages and their behaviour.
//!
//! [`SimulatedWeb`] is the offline stand-in for the live Web the paper's
//! tooling crawls. Each registered [`SiteHost`] owns a set of paths mapping
//! to [`PageContent`] (HTML pages, JSON documents, redirects, or error
//! statuses), a per-host latency model, optional outage and HTTP-only
//! flags, and per-path extra headers (e.g. `X-Robots-Tag: noindex` on
//! service sites).

use crate::headers::HeaderMap;
use crate::message::StatusCode;
use crate::url::Url;
use parking_lot::RwLock;
use rws_domain::DomainName;
use std::collections::HashMap;
use std::sync::Arc;

/// What a host serves at a particular path.
#[derive(Debug, Clone, PartialEq)]
pub enum PageContent {
    /// An HTML page served with `Content-Type: text/html`.
    Html(String),
    /// A JSON document served with `Content-Type: application/json`.
    Json(String),
    /// Plain text.
    Text(String),
    /// A redirect to another URL or absolute path.
    Redirect {
        /// Redirect target (absolute URL or absolute path).
        location: String,
        /// Whether to use 301 (permanent) or 302 (found).
        permanent: bool,
    },
    /// A fixed non-success status with an optional body.
    Error {
        /// The status code to return.
        status: StatusCode,
        /// Body text served with the error.
        body: String,
    },
}

/// Deterministic latency model for a host.
///
/// Latency is *simulated*: it is reported on the [`Response`] rather than
/// slept, so experiments remain fast and reproducible. The model is a base
/// cost plus a per-kilobyte transfer cost, which is enough to drive the
/// fetch-budget ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-request cost in milliseconds (connection + TTFB).
    pub base_ms: u64,
    /// Additional cost per kilobyte of body, in milliseconds.
    pub per_kb_ms: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_ms: 40,
            per_kb_ms: 2,
        }
    }
}

impl LatencyModel {
    /// Latency for a response body of `body_len` bytes.
    pub fn latency_for(&self, body_len: usize) -> u64 {
        self.base_ms + self.per_kb_ms * (body_len as u64 / 1024)
    }
}

/// A single host in the simulated web.
#[derive(Debug, Clone)]
pub struct SiteHost {
    host: DomainName,
    pages: HashMap<String, PageContent>,
    page_headers: HashMap<String, HeaderMap>,
    latency: LatencyModel,
    /// If true, connections are refused (simulated outage).
    offline: bool,
    /// If true, the host only serves plain HTTP (https URLs get redirected
    /// down to http, which the RWS validation rejects).
    http_only: bool,
}

impl SiteHost {
    /// Create a host for the given domain name string.
    pub fn new(host: &str) -> Result<SiteHost, rws_domain::DomainError> {
        Ok(SiteHost {
            host: DomainName::parse(host)?,
            pages: HashMap::new(),
            page_headers: HashMap::new(),
            latency: LatencyModel::default(),
            offline: false,
            http_only: false,
        })
    }

    /// Create a host from an already-validated domain name.
    pub fn for_domain(host: DomainName) -> SiteHost {
        SiteHost {
            host,
            pages: HashMap::new(),
            page_headers: HashMap::new(),
            latency: LatencyModel::default(),
            offline: false,
            http_only: false,
        }
    }

    /// The host's domain name.
    pub fn domain(&self) -> &DomainName {
        &self.host
    }

    /// Serve an HTML page at `path`.
    pub fn add_page<S: Into<String>>(&mut self, path: &str, html: S) -> &mut Self {
        self.pages
            .insert(path.to_string(), PageContent::Html(html.into()));
        self
    }

    /// Serve a JSON document at `path`.
    pub fn add_json<S: Into<String>>(&mut self, path: &str, json: S) -> &mut Self {
        self.pages
            .insert(path.to_string(), PageContent::Json(json.into()));
        self
    }

    /// Serve arbitrary content at `path`.
    pub fn add_content(&mut self, path: &str, content: PageContent) -> &mut Self {
        self.pages.insert(path.to_string(), content);
        self
    }

    /// Add an extra response header for a specific path (e.g. the
    /// `X-Robots-Tag` header required on service sites).
    pub fn add_header(&mut self, path: &str, name: &str, value: &str) -> &mut Self {
        self.page_headers
            .entry(path.to_string())
            .or_default()
            .set(name, value);
        self
    }

    /// Replace the latency model.
    pub fn set_latency(&mut self, latency: LatencyModel) -> &mut Self {
        self.latency = latency;
        self
    }

    /// Mark the host as offline (connections refused).
    pub fn set_offline(&mut self, offline: bool) -> &mut Self {
        self.offline = offline;
        self
    }

    /// Mark the host as HTTP-only (no TLS).
    pub fn set_http_only(&mut self, http_only: bool) -> &mut Self {
        self.http_only = http_only;
        self
    }

    /// Whether the host is currently offline.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Whether the host serves only plain HTTP.
    pub fn is_http_only(&self) -> bool {
        self.http_only
    }

    /// The latency model in force.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Content registered at `path`, if any.
    pub fn page(&self, path: &str) -> Option<&PageContent> {
        self.pages.get(path)
    }

    /// Extra headers registered for `path`.
    pub fn headers_for(&self, path: &str) -> Option<&HeaderMap> {
        self.page_headers.get(path)
    }

    /// All registered paths, sorted.
    pub fn paths(&self) -> Vec<&str> {
        let mut p: Vec<&str> = self.pages.keys().map(String::as_str).collect();
        p.sort_unstable();
        p
    }
}

/// The registry of every host in the simulated web.
///
/// Cloning a `SimulatedWeb` is cheap (it is an `Arc` around shared state),
/// so the same web can be handed to the fetcher, the validation bot and the
/// browser engine simultaneously.
#[derive(Debug, Clone, Default)]
pub struct SimulatedWeb {
    inner: Arc<RwLock<HashMap<DomainName, SiteHost>>>,
}

impl SimulatedWeb {
    /// Create an empty web.
    pub fn new() -> SimulatedWeb {
        SimulatedWeb::default()
    }

    /// Register (or replace) a host.
    pub fn register(&mut self, host: SiteHost) {
        self.inner.write().insert(host.domain().clone(), host);
    }

    /// True if a host with this name exists.
    pub fn has_host(&self, host: &DomainName) -> bool {
        self.inner.read().contains_key(host)
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.inner.read().len()
    }

    /// All registered host names, sorted.
    pub fn hosts(&self) -> Vec<DomainName> {
        let mut hosts: Vec<DomainName> = self.inner.read().keys().cloned().collect();
        hosts.sort();
        hosts
    }

    /// Run a closure against a host's definition, if it exists.
    pub fn with_host<T>(&self, host: &DomainName, f: impl FnOnce(&SiteHost) -> T) -> Option<T> {
        self.inner.read().get(host).map(f)
    }

    /// Mutate a host's definition in place (e.g. take it offline mid-run).
    pub fn update_host(&mut self, host: &DomainName, f: impl FnOnce(&mut SiteHost)) -> bool {
        match self.inner.write().get_mut(host) {
            Some(h) => {
                f(h);
                true
            }
            None => false,
        }
    }

    /// Resolve what a host would serve for a URL, without going through the
    /// fetcher's policy layer. This is the "server side" of the simulation.
    pub fn serve(&self, url: &Url) -> ServedPage {
        let guard = self.inner.read();
        let Some(host) = guard.get(&url.host) else {
            return ServedPage::NoSuchHost;
        };
        if host.is_offline() {
            return ServedPage::Refused;
        }
        if url.is_https() && host.is_http_only() {
            return ServedPage::TlsUnavailable;
        }
        let extra_headers = host.headers_for(&url.path).cloned().unwrap_or_default();
        match host.page(&url.path) {
            Some(content) => ServedPage::Content {
                content: content.clone(),
                extra_headers,
                latency: host.latency(),
            },
            None => ServedPage::Missing {
                latency: host.latency(),
            },
        }
    }
}

/// The raw outcome of asking the simulated web to serve a URL.
#[derive(Debug, Clone, PartialEq)]
pub enum ServedPage {
    /// No host by that name is registered (DNS failure analogue).
    NoSuchHost,
    /// The host is offline.
    Refused,
    /// The host exists but does not speak TLS, and an https URL was used.
    TlsUnavailable,
    /// The path is not registered on the host → 404.
    Missing {
        /// Host latency model, used to price the 404.
        latency: LatencyModel,
    },
    /// The path resolved to content.
    Content {
        /// What to serve.
        content: PageContent,
        /// Extra per-path headers.
        extra_headers: HeaderMap,
        /// Host latency model.
        latency: LatencyModel,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn register_and_lookup_hosts() {
        let mut web = SimulatedWeb::new();
        assert_eq!(web.host_count(), 0);
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html></html>");
        web.register(host);
        assert!(web.has_host(&dn("example.com")));
        assert!(!web.has_host(&dn("other.com")));
        assert_eq!(web.host_count(), 1);
        assert_eq!(web.hosts(), vec![dn("example.com")]);
    }

    #[test]
    fn serve_content_and_missing() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "<html>home</html>");
        host.add_json("/.well-known/related-website-set.json", "{}");
        web.register(host);

        match web.serve(&Url::parse("https://example.com/").unwrap()) {
            ServedPage::Content { content, .. } => {
                assert_eq!(content, PageContent::Html("<html>home</html>".into()));
            }
            other => panic!("expected content, got {other:?}"),
        }
        assert!(matches!(
            web.serve(&Url::parse("https://example.com/missing").unwrap()),
            ServedPage::Missing { .. }
        ));
        assert_eq!(
            web.serve(&Url::parse("https://unknown.com/").unwrap()),
            ServedPage::NoSuchHost
        );
    }

    #[test]
    fn serve_respects_offline_and_http_only() {
        let mut web = SimulatedWeb::new();
        let mut down = SiteHost::new("down.com").unwrap();
        down.add_page("/", "x").set_offline(true);
        web.register(down);
        let mut insecure = SiteHost::new("insecure.com").unwrap();
        insecure.add_page("/", "x").set_http_only(true);
        web.register(insecure);

        assert_eq!(
            web.serve(&Url::parse("https://down.com/").unwrap()),
            ServedPage::Refused
        );
        assert_eq!(
            web.serve(&Url::parse("https://insecure.com/").unwrap()),
            ServedPage::TlsUnavailable
        );
        // Plain http to the http-only host still works.
        assert!(matches!(
            web.serve(&Url::parse("http://insecure.com/").unwrap()),
            ServedPage::Content { .. }
        ));
    }

    #[test]
    fn per_path_headers_are_served() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("svc.example.com").unwrap();
        host.add_page("/", "service");
        host.add_header("/", "X-Robots-Tag", "noindex");
        web.register(host);
        match web.serve(&Url::parse("https://svc.example.com/").unwrap()) {
            ServedPage::Content { extra_headers, .. } => {
                assert!(extra_headers.has_token("x-robots-tag", "noindex"));
            }
            other => panic!("expected content, got {other:?}"),
        }
    }

    #[test]
    fn update_host_mutates_in_place() {
        let mut web = SimulatedWeb::new();
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/", "x");
        web.register(host);
        assert!(web.update_host(&dn("example.com"), |h| {
            h.set_offline(true);
        }));
        assert_eq!(
            web.serve(&Url::parse("https://example.com/").unwrap()),
            ServedPage::Refused
        );
        assert!(!web.update_host(&dn("missing.com"), |_| {}));
    }

    #[test]
    fn cloned_web_shares_state() {
        let mut web = SimulatedWeb::new();
        let clone = web.clone();
        let mut host = SiteHost::new("shared.com").unwrap();
        host.add_page("/", "x");
        web.register(host);
        assert!(clone.has_host(&dn("shared.com")));
    }

    #[test]
    fn latency_model_prices_body_size() {
        let m = LatencyModel {
            base_ms: 10,
            per_kb_ms: 5,
        };
        assert_eq!(m.latency_for(0), 10);
        assert_eq!(m.latency_for(2048), 20);
        let d = LatencyModel::default();
        assert!(d.latency_for(0) > 0);
    }

    #[test]
    fn site_host_paths_sorted() {
        let mut host = SiteHost::new("example.com").unwrap();
        host.add_page("/b", "x").add_page("/a", "y");
        assert_eq!(host.paths(), vec!["/a", "/b"]);
        assert!(host.page("/a").is_some());
        assert!(host.page("/missing").is_none());
    }
}
