//! A Tranco-style top-sites ranking.
//!
//! The survey's comparison groups (3 and 4) pair RWS members with sites
//! "drawn randomly from the Tranco Top 10K list, filtered to sites within
//! the same / a different Forcepoint category". This module provides the
//! ranked list those draws come from.

use crate::category::SiteCategory;
use rws_domain::DomainName;
use serde::{Deserialize, Serialize};

/// One entry of the ranking.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrancoEntry {
    /// 1-based rank (1 = most popular).
    pub rank: usize,
    /// The ranked domain.
    pub domain: DomainName,
    /// The domain's category.
    pub category: SiteCategory,
}

/// A ranked list of top sites.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrancoList {
    entries: Vec<TrancoEntry>,
}

impl TrancoList {
    /// Build a ranking from `(domain, category)` pairs already in rank order.
    pub fn from_ranked(entries: Vec<(DomainName, SiteCategory)>) -> TrancoList {
        TrancoList {
            entries: entries
                .into_iter()
                .enumerate()
                .map(|(i, (domain, category))| TrancoEntry {
                    rank: i + 1,
                    domain,
                    category,
                })
                .collect(),
        }
    }

    /// Number of ranked sites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in rank order.
    pub fn iter(&self) -> impl Iterator<Item = &TrancoEntry> {
        self.entries.iter()
    }

    /// The top `n` entries.
    pub fn top(&self, n: usize) -> &[TrancoEntry] {
        &self.entries[..n.min(self.entries.len())]
    }

    /// The rank of a domain, if it is ranked.
    pub fn rank_of(&self, domain: &DomainName) -> Option<usize> {
        self.entries
            .iter()
            .find(|e| &e.domain == domain)
            .map(|e| e.rank)
    }

    /// Entries in the given category, in rank order.
    pub fn in_category(&self, category: SiteCategory) -> Vec<&TrancoEntry> {
        self.entries
            .iter()
            .filter(|e| e.category == category)
            .collect()
    }

    /// Entries *not* in the given category, in rank order.
    pub fn outside_category(&self, category: SiteCategory) -> Vec<&TrancoEntry> {
        self.entries
            .iter()
            .filter(|e| e.category != category)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn sample() -> TrancoList {
        TrancoList::from_ranked(vec![
            (dn("searchhub.com"), SiteCategory::SearchEnginesAndPortals),
            (dn("dailywire-news.com"), SiteCategory::NewsAndMedia),
            (dn("shopmart.com"), SiteCategory::Shopping),
            (dn("technews.com"), SiteCategory::NewsAndMedia),
        ])
    }

    #[test]
    fn ranks_are_one_based_and_ordered() {
        let list = sample();
        assert_eq!(list.len(), 4);
        assert_eq!(list.iter().next().unwrap().rank, 1);
        assert_eq!(list.rank_of(&dn("shopmart.com")), Some(3));
        assert_eq!(list.rank_of(&dn("missing.com")), None);
    }

    #[test]
    fn top_n_clamps() {
        let list = sample();
        assert_eq!(list.top(2).len(), 2);
        assert_eq!(list.top(100).len(), 4);
    }

    #[test]
    fn category_filters_partition_the_list() {
        let list = sample();
        let news = list.in_category(SiteCategory::NewsAndMedia);
        let other = list.outside_category(SiteCategory::NewsAndMedia);
        assert_eq!(news.len(), 2);
        assert_eq!(other.len(), 2);
        assert_eq!(news.len() + other.len(), list.len());
        assert!(news
            .iter()
            .all(|e| e.category == SiteCategory::NewsAndMedia));
    }

    #[test]
    fn empty_list_behaviour() {
        let list = TrancoList::default();
        assert!(list.is_empty());
        assert!(list.top(5).is_empty());
        assert!(list.in_category(SiteCategory::NewsAndMedia).is_empty());
    }
}
