//! Arena-backed page rendering.
//!
//! [`crate::template::render_site`] builds a page out of per-block
//! `format!` calls — every article card, nav link and chrome fragment is a
//! fresh heap `String` that is immediately copied into the next-larger
//! fragment and dropped. That churn is pure overhead: the generator renders
//! each page exactly once and interns the finished bytes. [`RenderArena`]
//! replaces it with one reusable output buffer per worker: every fragment
//! is written in place with `write!`-style appenders in final document
//! order, so a warm arena (capacity grown by the first render) builds a
//! whole page without touching the allocator — the corpus alloc tests pin
//! this — and hands the finished `&str` straight to `PageBody` interning.
//!
//! The `format!` renderer is retained verbatim as the byte-for-byte oracle
//! (`render_site` / `render_about_page`): the property tests assert both
//! paths produce identical HTML for every seed, category, language and
//! brand, and the `render_arena` bench kernel measures the arena against
//! it.

use crate::brand::Brand;
use crate::category::SiteCategory;
use crate::site::Language;
use crate::template::TemplateStyle;
use rws_domain::DomainName;
use rws_stats::rng::Rng;
use std::fmt::Write;

/// Reusable render scratch: the page output buffer plus the two derived
/// strings (`css_prefix`, tagline) the templates splice in repeatedly.
/// Create one per worker, render any number of pages through it; buffers
/// are cleared (never shrunk) between pages.
#[derive(Debug, Default, Clone)]
pub struct RenderArena {
    /// The page being built; borrowed out by the `*_into` methods.
    buf: String,
    /// The brand's CSS class prefix (`slug-palette`), cached per render so
    /// splicing it does not call the allocating [`Brand::css_prefix`].
    prefix: String,
    /// The brand tagline, computed once per render and spliced twice.
    tagline: String,
}

impl RenderArena {
    /// A fresh, cold arena.
    pub fn new() -> RenderArena {
        RenderArena::default()
    }

    /// Bytes currently reserved for the page buffer (diagnostics).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reset the buffers for a new page of `brand`, keeping capacity.
    fn begin(&mut self, brand: &Brand) {
        self.buf.clear();
        self.prefix.clear();
        let _ = write!(self.prefix, "{}-{}", brand.slug, brand.palette);
        self.tagline.clear();
    }

    /// Render a site's front page into the arena, returning the finished
    /// HTML. Byte-for-byte identical to [`crate::template::render_site`]
    /// with the same inputs, consuming the RNG in the same order.
    pub fn render_site_into<R: Rng + ?Sized>(
        &mut self,
        domain: &DomainName,
        brand: &Brand,
        category: SiteCategory,
        language: Language,
        rng: &mut R,
    ) -> &str {
        self.begin(brand);
        let style = TemplateStyle::for_category(category);
        let keywords = style.keywords();
        let lang_attr = match language {
            Language::English => "en",
            Language::NonEnglish => "xx",
        };
        match language {
            Language::English => {
                let _ = write!(self.tagline, "{} — {}", brand.name, keywords[0]);
            }
            Language::NonEnglish => {
                let _ = write!(self.tagline, "{} — lorem ipsum dolor", brand.name);
            }
        }
        // The oracle draws the block count before rendering anything; keep
        // the draw here so the streams stay aligned.
        let block_count = rng.range_usize(3, 7);

        let brand_hash: u64 = brand.slug.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });

        // Head and header chrome, in document order.
        let w = &mut self.buf;
        let prefix = &self.prefix;
        let _ = write!(
            w,
            "<!DOCTYPE html>\n<html lang=\"{lang_attr}\">\n<head>\n  <title>{} | {}</title>\n  <meta name=\"description\" content=\"{}\">\n  <style>.{prefix}-logo {{ color: {palette}; }}</style>\n</head>\n<body class=\"{prefix}-body theme-{palette}\">\n  <header class=\"{prefix}-header site-header\">\n    <div class=\"{prefix}-logo\">{brand_name}</div>\n    <nav class=\"{prefix}-nav\"><a class=\"{prefix}-nav-link\" href=\"/\">Home</a><a class=\"{prefix}-nav-link\" href=\"/about\">About</a>",
            brand.name,
            domain,
            self.tagline,
            palette = brand.palette,
            brand_name = brand.name,
        );
        // Nav links stream straight into the page — no Vec<String> + join.
        for i in 0..(2 + (brand_hash % 4) as usize) {
            let _ = write!(
                w,
                "<a class=\"{prefix}-nav-link\" href=\"/section{i}\">Section {i}</a>"
            );
        }
        let _ = write!(w, "</nav>\n    ");
        if brand_hash & 0x10 != 0 {
            let _ = write!(
                w,
                "<div class=\"{prefix}-promo\"><span class=\"{prefix}-promo-text\">{}</span><button class=\"{prefix}-promo-cta\">Subscribe</button></div>",
                self.tagline,
            );
        }
        let _ = write!(w, "\n  </header>\n  ");

        // Style-specific structure, with the article blocks streamed in
        // place. Infrastructure draws the block stream but renders none of
        // it (matching the oracle, which builds and discards the string):
        // render into the buffer, then truncate back.
        match style {
            TemplateStyle::NewsPortal => {
                let _ = write!(w, "<section class=\"{prefix}-headlines grid-news\">");
                write_blocks(w, prefix, keywords, language, block_count, rng);
                let _ = write!(
                    w,
                    "</section><aside class=\"{prefix}-trending sidebar\"><ul class=\"{prefix}-trend-list\"><li>{}</li><li>{}</li></ul></aside>",
                    keywords[0], keywords[1],
                );
            }
            TemplateStyle::TechProduct => {
                let _ = write!(
                    w,
                    "<section class=\"{prefix}-hero docs-hero\"><pre class=\"{prefix}-code\">GET /v1/status</pre></section><section class=\"{prefix}-features feature-grid\">"
                );
                write_blocks(w, prefix, keywords, language, block_count, rng);
                let _ = write!(w, "</section>");
            }
            TemplateStyle::Corporate => {
                let _ = write!(
                    w,
                    "<section class=\"{prefix}-mission corporate-banner\"><h2 class=\"{prefix}-mission-title\">{}</h2></section><section class=\"{prefix}-services\">",
                    self.tagline,
                );
                write_blocks(w, prefix, keywords, language, block_count, rng);
                let _ = write!(w, "</section>");
            }
            TemplateStyle::Storefront => {
                let _ = write!(w, "<section class=\"{prefix}-products product-grid\">");
                write_blocks(w, prefix, keywords, language, block_count, rng);
                let _ = write!(
                    w,
                    "</section><div class=\"{prefix}-cart cart-widget\"><button class=\"{prefix}-buy\">Add to cart</button></div>"
                );
            }
            TemplateStyle::Infrastructure => {
                // Consume the block draws without emitting the blocks.
                let mark = w.len();
                write_blocks(w, prefix, keywords, language, block_count, rng);
                w.truncate(mark);
                let _ = write!(
                    w,
                    "<main class=\"{prefix}-status minimal\"><p class=\"{prefix}-notice\">{} endpoint</p><code class=\"{prefix}-snippet\">t.js?id={}</code></main>",
                    keywords[0], brand.slug,
                );
            }
            TemplateStyle::Portal => {
                let _ = write!(
                    w,
                    "<form class=\"{prefix}-search search-box\"><input class=\"{prefix}-query\" name=\"q\"><button class=\"{prefix}-go\">Search</button></form><section class=\"{prefix}-directory\">"
                );
                write_blocks(w, prefix, keywords, language, block_count, rng);
                let _ = write!(w, "</section>");
            }
            TemplateStyle::SocialFeed => {
                let _ = write!(w, "<section class=\"{prefix}-feed feed-stream\">");
                write_blocks(w, prefix, keywords, language, block_count, rng);
                let _ = write!(
                    w,
                    "</section><nav class=\"{prefix}-actions\"><button class=\"{prefix}-follow\">Follow</button><button class=\"{prefix}-share\">Share</button></nav>"
                );
            }
            TemplateStyle::Showcase => {
                let _ = write!(w, "<section class=\"{prefix}-carousel showcase\">");
                write_blocks(w, prefix, keywords, language, block_count, rng);
                let _ = write!(
                    w,
                    "</section><footer class=\"{prefix}-tickets\"><a class=\"{prefix}-cta\" href=\"/tickets\">{}</a></footer>",
                    keywords[0],
                );
            }
        }

        // Footer chrome.
        let _ = write!(
            w,
            "\n  <footer class=\"{prefix}-footer site-footer\">\n    <p class=\"{prefix}-copyright\">© 2024 {org}. All rights reserved.</p>\n    <p class=\"{prefix}-legal\">Operated by {org}. <a class=\"{prefix}-about-link\" href=\"/about\">About {}</a></p>\n    ",
            brand.name,
            org = brand.organisation_name,
        );
        if brand_hash & 0x20 != 0 {
            let _ = write!(
                w,
                "<form class=\"{prefix}-newsletter\"><label class=\"{prefix}-newsletter-label\">Newsletter</label><input class=\"{prefix}-newsletter-email\" name=\"email\"><button class=\"{prefix}-newsletter-submit\">Sign up</button></form>"
            );
        }
        let _ = write!(w, "\n    ");
        if brand_hash & 0x40 != 0 {
            let _ = write!(
                w,
                "<ul class=\"{prefix}-social\"><li class=\"{prefix}-social-item\"><a href=\"/rss\">RSS</a></li><li class=\"{prefix}-social-item\"><a href=\"/contact\">Contact</a></li></ul>"
            );
        }
        let _ = write!(w, "\n  </footer>\n</body>\n</html>");
        &self.buf
    }

    /// Render the `/about` page into the arena. Byte-for-byte identical to
    /// [`crate::template::render_about_page`].
    pub fn render_about_page_into(
        &mut self,
        domain: &DomainName,
        brand: &Brand,
        language: Language,
    ) -> &str {
        self.begin(brand);
        let w = &mut self.buf;
        let prefix = &self.prefix;
        let _ = write!(
            w,
            "<!DOCTYPE html><html><head><title>About {brand}</title></head><body class=\"{prefix}-body\"><main class=\"{prefix}-about about-page\"><h1 class=\"{prefix}-about-title\">About</h1><p class=\"{prefix}-about-body\">",
            brand = brand.name,
        );
        match language {
            Language::English => {
                let _ = write!(
                    w,
                    "{} is operated by {}. Visit us at {}.",
                    brand.name, brand.organisation_name, domain,
                );
            }
            Language::NonEnglish => {
                let _ = write!(
                    w,
                    "{} — lorem ipsum {}. {}.",
                    brand.name, brand.organisation_name, domain,
                );
            }
        }
        let _ = write!(w, "</p></main></body></html>");
        &self.buf
    }
}

/// Stream the article/card blocks into `w`, drawing from the RNG exactly as
/// the oracle's block loop does: one keyword pick per block, then the
/// filler-sentence draws (word count, then one pick per word).
fn write_blocks<R: Rng + ?Sized>(
    w: &mut String,
    prefix: &str,
    keywords: &[&str],
    language: Language,
    block_count: usize,
    rng: &mut R,
) {
    const EN_WORDS: &[&str] = &[
        "today",
        "readers",
        "update",
        "latest",
        "coverage",
        "exclusive",
        "analysis",
        "weekly",
        "guide",
        "insight",
    ];
    const XX_WORDS: &[&str] = &[
        "lorem",
        "ipsum",
        "dolor",
        "amet",
        "consectetur",
        "adipiscing",
        "elit",
        "sed",
        "tempor",
        "incididunt",
    ];
    let words = match language {
        Language::English => EN_WORDS,
        Language::NonEnglish => XX_WORDS,
    };
    for i in 0..block_count {
        let kw = keywords[rng.range_usize(0, keywords.len())];
        let _ = write!(
            w,
            "<article class=\"{prefix}-card {prefix}-card-{i}\"><h3 class=\"{prefix}-card-title\">{kw}</h3><p class=\"{prefix}-card-body\">{kw}"
        );
        for _ in 0..rng.range_usize(4, 9) {
            w.push(' ');
            w.push_str(words[rng.range_usize(0, words.len())]);
        }
        let _ = write!(w, "</p></article>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{render_about_page, render_site};
    use rws_stats::rng::Xoshiro256StarStar;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn arena_matches_format_oracle_across_categories_and_languages() {
        let mut arena = RenderArena::new();
        for seed in 0..8u64 {
            let mut brand_rng = Xoshiro256StarStar::new(seed);
            let brand = Brand::generate(&mut brand_rng);
            let domain = dn(&format!("{}.example", brand.slug));
            for category in SiteCategory::ALL {
                for language in [Language::English, Language::NonEnglish] {
                    let mut a = Xoshiro256StarStar::new(seed ^ 0xabcd);
                    let mut b = a.clone();
                    let oracle = render_site(&domain, &brand, category, language, &mut a);
                    let fast = arena.render_site_into(&domain, &brand, category, language, &mut b);
                    assert_eq!(fast, oracle, "divergence on {category:?}/{language:?}");
                    // Both paths must leave the RNG in the same state.
                    assert_eq!(a.next_u64(), b.next_u64());
                }
            }
        }
    }

    #[test]
    fn arena_about_page_matches_oracle() {
        let mut arena = RenderArena::new();
        let brand = Brand::named("Northpost");
        let domain = dn("northpost.com");
        for language in [Language::English, Language::NonEnglish] {
            assert_eq!(
                arena.render_about_page_into(&domain, &brand, language),
                render_about_page(&domain, &brand, language),
            );
        }
    }

    #[test]
    fn arena_is_reusable_and_keeps_capacity() {
        let mut arena = RenderArena::new();
        let brand = Brand::named("Northpost");
        let domain = dn("northpost.com");
        let mut rng = Xoshiro256StarStar::new(3);
        let first = arena
            .render_site_into(
                &domain,
                &brand,
                SiteCategory::NewsAndMedia,
                Language::English,
                &mut rng,
            )
            .to_string();
        let grown = arena.capacity();
        let mut rng2 = Xoshiro256StarStar::new(3);
        let second = arena
            .render_site_into(
                &domain,
                &brand,
                SiteCategory::NewsAndMedia,
                Language::English,
                &mut rng2,
            )
            .to_string();
        assert_eq!(first, second, "same seed renders the same page");
        assert!(arena.capacity() >= grown.min(arena.capacity()));
        assert_eq!(arena.capacity(), grown, "warm re-render never reallocates");
    }
}
