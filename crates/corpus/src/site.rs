//! Site specifications: the metadata the generators attach to every domain.

use crate::brand::Brand;
use crate::category::SiteCategory;
use rws_domain::DomainName;
use serde::{Deserialize, Serialize};

/// The primary language a site publishes in.
///
/// The paper filtered the RWS list down from 146 sites to 31 primarily
/// English-language sites before building survey pairs, so language is part
/// of every site's specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// Primarily English-language content.
    English,
    /// Primarily non-English content (the paper does not need finer
    /// granularity than this).
    NonEnglish,
}

/// The role a site plays in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteRole {
    /// An RWS set primary.
    SetPrimary,
    /// An RWS associated site.
    SetAssociated,
    /// An RWS service site.
    SetService,
    /// An RWS ccTLD variant.
    SetCctld,
    /// A top site outside any RWS set (drawn for survey groups 3 and 4).
    TopSite,
}

/// Full specification of one synthetic site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// The site's registrable domain.
    pub domain: DomainName,
    /// The brand presented on the site.
    pub brand: Brand,
    /// Content category.
    pub category: SiteCategory,
    /// Primary language.
    pub language: Language,
    /// Role in the corpus.
    pub role: SiteRole,
    /// Whether the site is currently live (the paper manually filtered out
    /// dead sites before the survey).
    pub live: bool,
    /// Index of the owning organisation in the corpus, if the site belongs
    /// to one.
    pub organisation: Option<usize>,
}

impl SiteSpec {
    /// True if this site is a member of an RWS set (any role except
    /// [`SiteRole::TopSite`]).
    pub fn in_rws_set(&self) -> bool {
        !matches!(self.role, SiteRole::TopSite)
    }

    /// True if the site passes the paper's survey filter: live and primarily
    /// English-language.
    pub fn survey_eligible(&self) -> bool {
        self.live && self.language == Language::English
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brand::Brand;

    fn spec(role: SiteRole, language: Language, live: bool) -> SiteSpec {
        SiteSpec {
            domain: DomainName::parse("example.com").unwrap(),
            brand: Brand::named("Example"),
            category: SiteCategory::NewsAndMedia,
            language,
            role,
            live,
            organisation: Some(0),
        }
    }

    #[test]
    fn rws_membership_by_role() {
        assert!(spec(SiteRole::SetPrimary, Language::English, true).in_rws_set());
        assert!(spec(SiteRole::SetService, Language::English, true).in_rws_set());
        assert!(!spec(SiteRole::TopSite, Language::English, true).in_rws_set());
    }

    #[test]
    fn survey_eligibility_requires_live_and_english() {
        assert!(spec(SiteRole::SetPrimary, Language::English, true).survey_eligible());
        assert!(!spec(SiteRole::SetPrimary, Language::NonEnglish, true).survey_eligible());
        assert!(!spec(SiteRole::SetPrimary, Language::English, false).survey_eligible());
    }
}
