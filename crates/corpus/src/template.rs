//! HTML templates.
//!
//! Every synthetic site renders a front page from a per-category template
//! parameterised by its brand. Two sites rendered from the *same* template
//! with the *same* brand share their tag structure and CSS classes (high
//! Figure 4 similarity); sites rendered from different templates or with
//! different brands share very little — which is how the corpus reproduces
//! the paper's finding that most set members look nothing like their
//! primaries (median joint similarity ≈ 0.04).

use crate::brand::Brand;
use crate::category::SiteCategory;
use crate::site::Language;
use rws_domain::DomainName;
use rws_stats::rng::Rng;
use serde::{Deserialize, Serialize};

/// Visual/structural template style. Usually derived from the category, but
/// separable so tests can force template collisions or divergences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateStyle {
    /// Headline-grid news layout.
    NewsPortal,
    /// Documentation/product layout.
    TechProduct,
    /// Corporate marketing layout.
    Corporate,
    /// Product-grid storefront.
    Storefront,
    /// Minimal landing page for infrastructure/analytics endpoints.
    Infrastructure,
    /// Search/portal layout.
    Portal,
    /// Feed-style social layout.
    SocialFeed,
    /// Media/entertainment layout.
    Showcase,
}

impl TemplateStyle {
    /// The default template for a category.
    pub fn for_category(category: SiteCategory) -> TemplateStyle {
        match category {
            SiteCategory::NewsAndMedia => TemplateStyle::NewsPortal,
            SiteCategory::InformationTechnology => TemplateStyle::TechProduct,
            SiteCategory::BusinessAndEconomy => TemplateStyle::Corporate,
            SiteCategory::Shopping => TemplateStyle::Storefront,
            SiteCategory::AnalyticsInfrastructure | SiteCategory::CompromisedSpam => {
                TemplateStyle::Infrastructure
            }
            SiteCategory::SearchEnginesAndPortals => TemplateStyle::Portal,
            SiteCategory::SocialNetworking => TemplateStyle::SocialFeed,
            SiteCategory::Entertainment
            | SiteCategory::Travel
            | SiteCategory::Games
            | SiteCategory::AdultContent => TemplateStyle::Showcase,
            SiteCategory::Unknown => TemplateStyle::Corporate,
        }
    }

    /// Category-flavoured vocabulary injected into headlines and body copy so
    /// that the keyword classifier (rws-classify) has signal to work with.
    pub fn keywords(self) -> &'static [&'static str] {
        match self {
            TemplateStyle::NewsPortal => &[
                "breaking news",
                "politics",
                "headlines",
                "report",
                "editorial",
            ],
            TemplateStyle::TechProduct => {
                &["software", "developer", "platform", "api", "release notes"]
            }
            TemplateStyle::Corporate => {
                &["business", "finance", "investors", "markets", "services"]
            }
            TemplateStyle::Storefront => &["shop", "cart", "checkout", "products", "free shipping"],
            TemplateStyle::Infrastructure => {
                &["analytics", "tracking", "measurement", "tag", "pixel"]
            }
            TemplateStyle::Portal => &["search", "portal", "directory", "results", "explore"],
            TemplateStyle::SocialFeed => &["friends", "share", "community", "follow", "feed"],
            TemplateStyle::Showcase => &["entertainment", "stream", "travel", "games", "tickets"],
        }
    }
}

/// Render the front page of a site.
///
/// The page contains the cues the paper's survey participants report using
/// (Table 2): the domain name itself, branding elements (logo block, palette
/// classes), header text, footer text naming the operating organisation, and
/// an about link.
pub fn render_site<R: Rng + ?Sized>(
    domain: &DomainName,
    brand: &Brand,
    category: SiteCategory,
    language: Language,
    rng: &mut R,
) -> String {
    let style = TemplateStyle::for_category(category);
    let prefix = brand.css_prefix();
    let keywords = style.keywords();
    let lang_attr = match language {
        Language::English => "en",
        Language::NonEnglish => "xx",
    };
    let tagline = match language {
        Language::English => format!("{} — {}", brand.name, keywords[0]),
        Language::NonEnglish => format!("{} — lorem ipsum dolor", brand.name),
    };

    // Article/card blocks vary in count so structurally identical templates
    // still differ slightly between sites, as real pages do.
    let block_count = rng.range_usize(3, 7);
    let mut blocks = String::new();
    for i in 0..block_count {
        let kw = keywords[rng.range_usize(0, keywords.len())];
        blocks.push_str(&format!(
            r#"<article class="{prefix}-card {prefix}-card-{i}"><h3 class="{prefix}-card-title">{kw}</h3><p class="{prefix}-card-body">{body}</p></article>"#,
            body = filler_sentence(rng, language, kw),
        ));
    }

    let structure = match style {
        TemplateStyle::NewsPortal => format!(
            r#"<section class="{prefix}-headlines grid-news">{blocks}</section><aside class="{prefix}-trending sidebar"><ul class="{prefix}-trend-list"><li>{k0}</li><li>{k1}</li></ul></aside>"#,
            k0 = keywords[0],
            k1 = keywords[1],
        ),
        TemplateStyle::TechProduct => format!(
            r#"<section class="{prefix}-hero docs-hero"><pre class="{prefix}-code">GET /v1/status</pre></section><section class="{prefix}-features feature-grid">{blocks}</section>"#,
        ),
        TemplateStyle::Corporate => format!(
            r#"<section class="{prefix}-mission corporate-banner"><h2 class="{prefix}-mission-title">{tagline}</h2></section><section class="{prefix}-services">{blocks}</section>"#,
        ),
        TemplateStyle::Storefront => format!(
            r#"<section class="{prefix}-products product-grid">{blocks}</section><div class="{prefix}-cart cart-widget"><button class="{prefix}-buy">Add to cart</button></div>"#,
        ),
        TemplateStyle::Infrastructure => format!(
            r#"<main class="{prefix}-status minimal"><p class="{prefix}-notice">{k0} endpoint</p><code class="{prefix}-snippet">t.js?id={slug}</code></main>"#,
            k0 = keywords[0],
            slug = brand.slug,
        ),
        TemplateStyle::Portal => format!(
            r#"<form class="{prefix}-search search-box"><input class="{prefix}-query" name="q"><button class="{prefix}-go">Search</button></form><section class="{prefix}-directory">{blocks}</section>"#,
        ),
        TemplateStyle::SocialFeed => format!(
            r#"<section class="{prefix}-feed feed-stream">{blocks}</section><nav class="{prefix}-actions"><button class="{prefix}-follow">Follow</button><button class="{prefix}-share">Share</button></nav>"#,
        ),
        TemplateStyle::Showcase => format!(
            r#"<section class="{prefix}-carousel showcase">{blocks}</section><footer class="{prefix}-tickets"><a class="{prefix}-cta" href="/tickets">{k0}</a></footer>"#,
            k0 = keywords[0],
        ),
    };

    // Brand-dependent chrome variation: real sites differ in their header
    // and footer scaffolding even when they use the same page archetype, so
    // derive a few structural choices deterministically from the brand. This
    // keeps two pages of the *same* brand structurally identical while
    // pushing cross-brand structural similarity down towards the low values
    // the paper measures (Figure 4).
    let brand_hash: u64 = brand.slug.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let nav_links: String = (0..(2 + (brand_hash % 4) as usize))
        .map(|i| format!(r#"<a class="{prefix}-nav-link" href="/section{i}">Section {i}</a>"#))
        .collect();
    let promo_banner = if brand_hash & 0x10 != 0 {
        format!(
            r#"<div class="{prefix}-promo"><span class="{prefix}-promo-text">{tagline}</span><button class="{prefix}-promo-cta">Subscribe</button></div>"#
        )
    } else {
        String::new()
    };
    let newsletter = if brand_hash & 0x20 != 0 {
        format!(
            r#"<form class="{prefix}-newsletter"><label class="{prefix}-newsletter-label">Newsletter</label><input class="{prefix}-newsletter-email" name="email"><button class="{prefix}-newsletter-submit">Sign up</button></form>"#
        )
    } else {
        String::new()
    };
    let social_links = if brand_hash & 0x40 != 0 {
        format!(
            r#"<ul class="{prefix}-social"><li class="{prefix}-social-item"><a href="/rss">RSS</a></li><li class="{prefix}-social-item"><a href="/contact">Contact</a></li></ul>"#
        )
    } else {
        String::new()
    };

    format!(
        r#"<!DOCTYPE html>
<html lang="{lang_attr}">
<head>
  <title>{title}</title>
  <meta name="description" content="{tagline}">
  <style>.{prefix}-logo {{ color: {palette}; }}</style>
</head>
<body class="{prefix}-body theme-{palette}">
  <header class="{prefix}-header site-header">
    <div class="{prefix}-logo">{brand_name}</div>
    <nav class="{prefix}-nav"><a class="{prefix}-nav-link" href="/">Home</a><a class="{prefix}-nav-link" href="/about">About</a>{nav_links}</nav>
    {promo_banner}
  </header>
  {structure}
  <footer class="{prefix}-footer site-footer">
    <p class="{prefix}-copyright">© 2024 {org}. All rights reserved.</p>
    <p class="{prefix}-legal">Operated by {org}. <a class="{prefix}-about-link" href="/about">About {brand_name}</a></p>
    {newsletter}
    {social_links}
  </footer>
</body>
</html>"#,
        title = format_args!("{} | {}", brand.name, domain),
        brand_name = brand.name,
        org = brand.organisation_name,
        palette = brand.palette,
    )
}

/// Render the `/about` page, which names the operating organisation — one of
/// the cues participants report using.
pub fn render_about_page(domain: &DomainName, brand: &Brand, language: Language) -> String {
    let prefix = brand.css_prefix();
    let body = match language {
        Language::English => format!(
            "{brand} is operated by {org}. Visit us at {domain}.",
            brand = brand.name,
            org = brand.organisation_name,
        ),
        Language::NonEnglish => format!(
            "{brand} — lorem ipsum {org}. {domain}.",
            brand = brand.name,
            org = brand.organisation_name,
        ),
    };
    format!(
        r#"<!DOCTYPE html><html><head><title>About {brand}</title></head><body class="{prefix}-body"><main class="{prefix}-about about-page"><h1 class="{prefix}-about-title">About</h1><p class="{prefix}-about-body">{body}</p></main></body></html>"#,
        brand = brand.name,
    )
}

fn filler_sentence<R: Rng + ?Sized>(rng: &mut R, language: Language, keyword: &str) -> String {
    const EN_WORDS: &[&str] = &[
        "today",
        "readers",
        "update",
        "latest",
        "coverage",
        "exclusive",
        "analysis",
        "weekly",
        "guide",
        "insight",
    ];
    const XX_WORDS: &[&str] = &[
        "lorem",
        "ipsum",
        "dolor",
        "amet",
        "consectetur",
        "adipiscing",
        "elit",
        "sed",
        "tempor",
        "incididunt",
    ];
    let words = match language {
        Language::English => EN_WORDS,
        Language::NonEnglish => XX_WORDS,
    };
    let mut s = String::from(keyword);
    for _ in 0..rng.range_usize(4, 9) {
        s.push(' ');
        s.push_str(words[rng.range_usize(0, words.len())]);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_html::similarity::{html_similarity, SimilarityWeights};
    use rws_stats::rng::Xoshiro256StarStar;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn rendering_is_deterministic_for_a_seed() {
        let brand = Brand::named("Northpost");
        let mut a = Xoshiro256StarStar::new(5);
        let mut b = Xoshiro256StarStar::new(5);
        let pa = render_site(
            &dn("northpost.com"),
            &brand,
            SiteCategory::NewsAndMedia,
            Language::English,
            &mut a,
        );
        let pb = render_site(
            &dn("northpost.com"),
            &brand,
            SiteCategory::NewsAndMedia,
            Language::English,
            &mut b,
        );
        assert_eq!(pa, pb);
    }

    #[test]
    fn page_contains_survey_cues() {
        let brand = Brand::named("Northpost");
        let mut rng = Xoshiro256StarStar::new(6);
        let html = render_site(
            &dn("northpost.com"),
            &brand,
            SiteCategory::NewsAndMedia,
            Language::English,
            &mut rng,
        );
        assert!(html.contains("northpost.com"), "domain cue");
        assert!(html.contains("Northpost"), "brand cue");
        assert!(html.contains("site-header"), "header cue");
        assert!(html.contains("Northpost Group"), "footer organisation cue");
        assert!(html.contains("/about"), "about-page cue");
    }

    #[test]
    fn same_brand_same_category_pages_are_similar() {
        let brand = Brand::named("Northpost");
        let mut rng = Xoshiro256StarStar::new(7);
        let a = render_site(
            &dn("northpost.com"),
            &brand,
            SiteCategory::NewsAndMedia,
            Language::English,
            &mut rng,
        );
        let b = render_site(
            &dn("northpost.co.uk"),
            &brand,
            SiteCategory::NewsAndMedia,
            Language::English,
            &mut rng,
        );
        let sim = html_similarity(&a, &b, SimilarityWeights::default());
        assert!(
            sim.style > 0.8,
            "style similarity {} should be high",
            sim.style
        );
        assert!(
            sim.joint > 0.6,
            "joint similarity {} should be high",
            sim.joint
        );
    }

    #[test]
    fn different_brand_different_category_pages_are_dissimilar() {
        let mut rng = Xoshiro256StarStar::new(8);
        let news_brand = Brand::generate(&mut rng);
        let shop_brand = Brand::generate(&mut rng);
        let a = render_site(
            &dn("somenews.com"),
            &news_brand,
            SiteCategory::NewsAndMedia,
            Language::English,
            &mut rng,
        );
        let b = render_site(
            &dn("someshop.com"),
            &shop_brand,
            SiteCategory::Shopping,
            Language::English,
            &mut rng,
        );
        let sim = html_similarity(&a, &b, SimilarityWeights::default());
        assert!(
            sim.style < 0.2,
            "style similarity {} should be low",
            sim.style
        );
        assert!(
            sim.joint < 0.3,
            "joint similarity {} should be low",
            sim.joint
        );
    }

    #[test]
    fn non_english_pages_marked_and_filled() {
        let brand = Brand::named("Weltkurier");
        let mut rng = Xoshiro256StarStar::new(9);
        let html = render_site(
            &dn("weltkurier.de"),
            &brand,
            SiteCategory::NewsAndMedia,
            Language::NonEnglish,
            &mut rng,
        );
        assert!(html.contains("lang=\"xx\""));
        assert!(html.contains("lorem"));
    }

    #[test]
    fn about_page_names_the_organisation() {
        let brand = Brand::named("Northpost");
        let about = render_about_page(&dn("northpost.com"), &brand, Language::English);
        assert!(about.contains("operated by Northpost Group"));
        assert!(about.contains("about-page"));
    }

    #[test]
    fn every_category_has_a_template_with_keywords() {
        for c in SiteCategory::ALL {
            let style = TemplateStyle::for_category(c);
            assert!(!style.keywords().is_empty());
        }
    }
}
