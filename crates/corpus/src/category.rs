//! Site categories, mirroring the Forcepoint ThreatSeeker groupings the
//! paper uses in Figures 8 and 9.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad content category of a site.
///
/// The variants are the categories the paper plots after merging similar
/// Forcepoint categories (Figures 8 and 9): news and media, information
/// technology, business and economy, search engines and portals, social
/// networking, analytics/infrastructure, adult content, compromised/spam,
/// shopping (folded into "other" in the paper's plots), entertainment,
/// travel, games, and unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SiteCategory {
    /// News publishers and media brands.
    NewsAndMedia,
    /// IT publications, software and developer services.
    InformationTechnology,
    /// General business, finance, commerce.
    BusinessAndEconomy,
    /// Search engines and web portals.
    SearchEnginesAndPortals,
    /// Social networks and community sites.
    SocialNetworking,
    /// Web analytics, advertising and serving infrastructure.
    AnalyticsInfrastructure,
    /// Online shops and marketplaces.
    Shopping,
    /// Entertainment, streaming and celebrity content.
    Entertainment,
    /// Travel booking and tourism.
    Travel,
    /// Online games and gaming media.
    Games,
    /// Adult content.
    AdultContent,
    /// Compromised or spam-serving sites.
    CompromisedSpam,
    /// Category could not be determined.
    Unknown,
}

impl SiteCategory {
    /// Every category, in a stable order.
    pub const ALL: [SiteCategory; 13] = [
        SiteCategory::NewsAndMedia,
        SiteCategory::InformationTechnology,
        SiteCategory::BusinessAndEconomy,
        SiteCategory::SearchEnginesAndPortals,
        SiteCategory::SocialNetworking,
        SiteCategory::AnalyticsInfrastructure,
        SiteCategory::Shopping,
        SiteCategory::Entertainment,
        SiteCategory::Travel,
        SiteCategory::Games,
        SiteCategory::AdultContent,
        SiteCategory::CompromisedSpam,
        SiteCategory::Unknown,
    ];

    /// The label the paper uses in its figures.
    pub fn label(self) -> &'static str {
        match self {
            SiteCategory::NewsAndMedia => "news and media",
            SiteCategory::InformationTechnology => "information technology",
            SiteCategory::BusinessAndEconomy => "business and economy",
            SiteCategory::SearchEnginesAndPortals => "search engines and portals",
            SiteCategory::SocialNetworking => "social networking",
            SiteCategory::AnalyticsInfrastructure => "analytics/infrastructure",
            SiteCategory::Shopping => "shopping",
            SiteCategory::Entertainment => "entertainment",
            SiteCategory::Travel => "travel",
            SiteCategory::Games => "games",
            SiteCategory::AdultContent => "adult content",
            SiteCategory::CompromisedSpam => "compromised/spam",
            SiteCategory::Unknown => "unknown",
        }
    }

    /// Parse a label back to a category (the inverse of [`label`](Self::label)).
    pub fn from_label(label: &str) -> Option<SiteCategory> {
        SiteCategory::ALL
            .into_iter()
            .find(|c| c.label() == label.trim().to_ascii_lowercase())
    }

    /// The bucket used in the paper's figures: the named major categories
    /// keep their own label, while the smaller ones are merged into
    /// "other" (Figures 8 and 9 note that "smaller categories are grouped
    /// into Other").
    pub fn figure_bucket(self) -> &'static str {
        match self {
            SiteCategory::NewsAndMedia
            | SiteCategory::InformationTechnology
            | SiteCategory::BusinessAndEconomy
            | SiteCategory::SearchEnginesAndPortals
            | SiteCategory::SocialNetworking
            | SiteCategory::AnalyticsInfrastructure
            | SiteCategory::AdultContent
            | SiteCategory::CompromisedSpam => self.label(),
            SiteCategory::Unknown => "unknown",
            SiteCategory::Shopping
            | SiteCategory::Entertainment
            | SiteCategory::Travel
            | SiteCategory::Games => "other",
        }
    }
}

impl fmt::Display for SiteCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for c in SiteCategory::ALL {
            assert_eq!(SiteCategory::from_label(c.label()), Some(c));
            assert_eq!(c.to_string(), c.label());
        }
        assert_eq!(
            SiteCategory::from_label("NEWS AND MEDIA"),
            Some(SiteCategory::NewsAndMedia)
        );
        assert_eq!(SiteCategory::from_label("nonexistent"), None);
    }

    #[test]
    fn figure_buckets_merge_small_categories() {
        assert_eq!(SiteCategory::Shopping.figure_bucket(), "other");
        assert_eq!(SiteCategory::Travel.figure_bucket(), "other");
        assert_eq!(SiteCategory::NewsAndMedia.figure_bucket(), "news and media");
        assert_eq!(SiteCategory::Unknown.figure_bucket(), "unknown");
        assert_eq!(
            SiteCategory::AnalyticsInfrastructure.figure_bucket(),
            "analytics/infrastructure"
        );
    }

    #[test]
    fn all_contains_every_variant_once() {
        let mut labels: Vec<&str> = SiteCategory::ALL.iter().map(|c| c.label()).collect();
        let before = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), before);
        assert_eq!(before, 13);
    }
}
