//! Synthetic web corpus for the Related Website Sets reproduction.
//!
//! The paper's measurements run over live artefacts we cannot reach offline:
//! the RWS list itself (146 member sites as of 26 March 2024), the web pages
//! of those sites (for the HTML-similarity analysis of Figure 4 and the
//! branding cues participants use), and the Tranco Top-10K list from which
//! 200 comparison sites are drawn. This crate generates a deterministic
//! synthetic stand-in for all of that:
//!
//! * [`Organisation`]s that own families of branded [`SiteSpec`]s (a
//!   primary, associated brands, service infrastructure, ccTLD variants);
//! * an [`RwsList`](rws_model::RwsList) built from those families and
//!   calibrated to the paper's published list statistics (share of sets with
//!   each subset type, mean associated sites per set, SLD edit-distance mix,
//!   language mix);
//! * HTML for every site, produced from per-category templates with
//!   per-brand CSS classes, so related sites share branding to a controlled
//!   degree and unrelated sites do not;
//! * a [`TrancoList`] of top sites for the survey's comparison groups; and
//! * population of a [`SimulatedWeb`](rws_net::SimulatedWeb) with all pages
//!   and correctly-formed `.well-known` files.
//!
//! Everything is seeded: the same [`CorpusConfig`] and seed reproduce the
//! same corpus bit-for-bit.

pub mod brand;
pub mod category;
pub mod generator;
pub mod render;
pub mod scale;
pub mod site;
pub mod template;
pub mod tranco;

pub use brand::{Brand, Organisation};
pub use category::SiteCategory;
pub use generator::{Corpus, CorpusConfig, CorpusGenerator};
pub use render::RenderArena;
pub use scale::CorpusScale;
pub use site::{Language, SiteRole, SiteSpec};
pub use template::{render_about_page, render_site, TemplateStyle};
pub use tranco::{TrancoEntry, TrancoList};
