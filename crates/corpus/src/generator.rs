//! The corpus generator: organisations, sets, top sites, pages and the
//! simulated web.
//!
//! The generator is calibrated to the published characteristics of the RWS
//! list as of 26 March 2024 (Section 4 of the paper):
//!
//! * 41 sets; 92.7% with at least one associated site, 22% with at least one
//!   service site, 14.6% with at least one ccTLD site; mean 2.6 associated
//!   sites per set;
//! * associated-site SLDs: ≈9.3% identical to the primary's SLD, some
//!   sharing a stem, half at edit distance ≥ 6 (Figure 3);
//! * HTML largely dissimilar between members and primaries (Figure 4);
//! * only 31 of 146 member sites primarily English-language (Section 3).
//!
//! All of those rates are exposed on [`CorpusConfig`] so ablation benches
//! can sweep them.

use crate::brand::{Brand, Organisation};
use crate::category::SiteCategory;
use crate::render::RenderArena;
use crate::site::{Language, SiteRole, SiteSpec};
use crate::tranco::TrancoList;
use rws_domain::DomainName;
use rws_engine::{EngineBackend, EngineContext};
use rws_model::{RwsList, RwsSet, WellKnownFile};
use rws_net::{FrozenWeb, ShardedFrozenWeb, SimulatedWeb, SiteHost, WELL_KNOWN_RWS_PATH};
use rws_stats::rng::{Rng, Xoshiro256StarStar};
use rws_stats::shard::ShardRouter;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Generic top-level domains used for primaries and distinct associated
/// sites.
const GENERIC_TLDS: &[&str] = &[
    "com", "com", "com", "org", "net", "io", "co", "xyz", "site", "online", "news", "media",
];

/// Country-code suffixes used for ccTLD variants and non-English sites.
const COUNTRY_SUFFIXES: &[&str] = &[
    "de", "fr", "in", "ru", "br", "jp", "es", "it", "pl", "co.uk", "com.au", "nl", "se",
];

/// Tunable parameters of the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Master seed; every run with the same config is identical.
    pub seed: u64,
    /// Number of organisations, i.e. of Related Website Sets (paper: 41).
    pub organisations: usize,
    /// Probability a set has at least one associated site (paper: 0.927).
    pub prob_set_has_associated: f64,
    /// Mean associated sites per set across all sets (paper: 2.6).
    pub mean_associated_per_set: f64,
    /// Probability a set has at least one service site (paper: 0.22).
    pub prob_set_has_service: f64,
    /// Probability a set has at least one ccTLD variant (paper: 0.146).
    pub prob_set_has_cctld: f64,
    /// Probability an associated site's SLD is identical to the primary's
    /// (paper: ≈0.093).
    pub prob_identical_sld: f64,
    /// Probability an associated site's SLD shares the primary's stem
    /// (e.g. `autobild` / `bild`).
    pub prob_shared_stem: f64,
    /// Probability an associated site presents the organisation's shared
    /// branding (logo text, palette, footer attribution).
    pub prob_shared_branding: f64,
    /// Probability an associated site keeps the primary's content category.
    pub prob_same_category: f64,
    /// Probability a whole organisation publishes primarily in English
    /// (paper: 31 of 146 member sites after filtering).
    pub prob_english_org: f64,
    /// Probability any given member site is live.
    pub prob_live: f64,
    /// Number of Tranco-style top sites to generate outside the RWS list.
    pub top_sites: usize,
    /// Probability a top site is primarily English-language.
    pub prob_top_site_english: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x5257_5321,
            organisations: 41,
            prob_set_has_associated: 0.927,
            mean_associated_per_set: 2.6,
            prob_set_has_service: 0.22,
            prob_set_has_cctld: 0.146,
            prob_identical_sld: 0.093,
            prob_shared_stem: 0.30,
            prob_shared_branding: 0.60,
            prob_same_category: 0.40,
            prob_english_org: 0.25,
            prob_live: 0.985,
            top_sites: 1500,
            prob_top_site_english: 0.85,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for fast unit tests.
    pub fn small(seed: u64) -> CorpusConfig {
        CorpusConfig {
            seed,
            organisations: 10,
            top_sites: 120,
            ..CorpusConfig::default()
        }
    }
}

/// The fully-generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The configuration it was generated from.
    pub config: CorpusConfig,
    /// Organisations owning the sets.
    pub organisations: Vec<Organisation>,
    /// Every site's specification, keyed by domain.
    pub sites: BTreeMap<DomainName, SiteSpec>,
    /// The generated Related Website Sets list.
    pub list: RwsList,
    /// The Tranco-style top-site ranking (non-RWS sites only).
    pub tranco: TrancoList,
    /// The simulated web holding every site's pages and well-known files.
    /// Frozen by construction: generation renders every host into the
    /// sharded store and this web reads through it, so later writes (the
    /// governance replay's defect hosts) land in an overlay without
    /// disturbing the snapshot below.
    pub web: SimulatedWeb,
    /// The frozen page store as one table: the immutable snapshot
    /// generation collapsed the shards into. Reads take no lock and borrow
    /// straight from the interned pages — the classifier, the Figure 4
    /// sweeps and the benches all read through here.
    pub frozen: FrozenWeb,
    /// The same store, sharded as generated: N per-shard host tables
    /// routed by the FNV-1a domain hash. Page bodies are shared with
    /// `frozen` (interned once), so keeping both views costs table
    /// entries, not page payloads.
    pub sharded: ShardedFrozenWeb,
}

impl Corpus {
    /// The specification of a site, if it exists in the corpus.
    pub fn site(&self, domain: &DomainName) -> Option<&SiteSpec> {
        self.sites.get(domain)
    }

    /// The front-page HTML of a site, borrowed from the frozen store —
    /// the zero-copy read every hot path uses. No lock is taken.
    ///
    /// This (like [`with_html`](Corpus::with_html) and
    /// [`html_of`](Corpus::html_of)) reads the generation-time snapshot:
    /// post-generation overlay writes to `web` (defect hosts, `update_host`
    /// edits) are deliberately *not* visible here — route reads that must
    /// observe live mutations through `web.serve`/`web.with_host`.
    pub fn page_html(&self, domain: &DomainName) -> Option<&str> {
        self.frozen.page_html(domain, "/")
    }

    /// Run a closure over the borrowed front-page HTML of a site, if it
    /// exists — convenience over [`page_html`](Corpus::page_html) for call
    /// sites that fold the page into a result (classification, profiling).
    pub fn with_html<T>(&self, domain: &DomainName, f: impl FnOnce(&str) -> T) -> Option<T> {
        self.page_html(domain).map(f)
    }

    /// The front-page HTML of a site as an owned copy. Compatibility
    /// wrapper over the borrowed view — and the oracle the zero-copy
    /// equivalence tests compare [`with_html`](Corpus::with_html) against.
    pub fn html_of(&self, domain: &DomainName) -> Option<String> {
        self.page_html(domain).map(str::to_string)
    }

    /// All sites that are members of RWS sets.
    pub fn rws_member_sites(&self) -> Vec<&SiteSpec> {
        self.sites.values().filter(|s| s.in_rws_set()).collect()
    }

    /// All sites eligible for the survey (live, English) that are RWS set
    /// primaries or associated sites — the pool the paper's filtering
    /// produced (31 of 146 sites).
    pub fn survey_eligible_members(&self) -> Vec<&SiteSpec> {
        self.sites
            .values()
            .filter(|s| {
                s.survey_eligible()
                    && matches!(s.role, SiteRole::SetPrimary | SiteRole::SetAssociated)
            })
            .collect()
    }

    /// The category of a domain as recorded in the corpus (ground truth,
    /// before any classifier runs).
    pub fn category_of(&self, domain: &DomainName) -> Option<SiteCategory> {
        self.sites.get(domain).map(|s| s.category)
    }
}

/// Weighted category distribution for set primaries, approximating Figure 8
/// (news and media the largest single category, followed by IT, business,
/// portals and analytics, with a tail of smaller categories).
const PRIMARY_CATEGORY_WEIGHTS: &[(SiteCategory, f64)] = &[
    (SiteCategory::NewsAndMedia, 0.30),
    (SiteCategory::InformationTechnology, 0.15),
    (SiteCategory::BusinessAndEconomy, 0.14),
    (SiteCategory::SearchEnginesAndPortals, 0.08),
    (SiteCategory::AnalyticsInfrastructure, 0.06),
    (SiteCategory::Shopping, 0.08),
    (SiteCategory::Entertainment, 0.06),
    (SiteCategory::SocialNetworking, 0.04),
    (SiteCategory::Travel, 0.03),
    (SiteCategory::Games, 0.03),
    (SiteCategory::AdultContent, 0.02),
    (SiteCategory::Unknown, 0.01),
];

/// Weighted category distribution for top sites (groups 3 and 4 of the
/// survey draw from these).
const TOP_SITE_CATEGORY_WEIGHTS: &[(SiteCategory, f64)] = &[
    (SiteCategory::NewsAndMedia, 0.18),
    (SiteCategory::InformationTechnology, 0.14),
    (SiteCategory::BusinessAndEconomy, 0.16),
    (SiteCategory::SearchEnginesAndPortals, 0.06),
    (SiteCategory::AnalyticsInfrastructure, 0.05),
    (SiteCategory::Shopping, 0.14),
    (SiteCategory::Entertainment, 0.10),
    (SiteCategory::SocialNetworking, 0.06),
    (SiteCategory::Travel, 0.05),
    (SiteCategory::Games, 0.04),
    (SiteCategory::AdultContent, 0.01),
    (SiteCategory::Unknown, 0.01),
];

fn pick_category<R: Rng + ?Sized>(weights: &[(SiteCategory, f64)], rng: &mut R) -> SiteCategory {
    let ws: Vec<f64> = weights.iter().map(|(_, w)| *w).collect();
    let idx = rws_stats::sampling::weighted_choice(&ws, rng).unwrap_or(0);
    weights[idx].0
}

/// The corpus generator.
pub struct CorpusGenerator {
    config: CorpusConfig,
    /// How many shards the page store is generated into. Deliberately
    /// *not* part of [`CorpusConfig`]: the shard count is an execution
    /// detail (like the pool width) and must never influence an output
    /// byte, so it stays off the serialized, seed-bearing configuration.
    shards: usize,
}

impl CorpusGenerator {
    /// Create a generator from a configuration. The store shard count
    /// defaults to [`rws_stats::shard::store_shard_count`] (the
    /// `RWS_STORE_SHARDS` env override, 8 otherwise).
    pub fn new(config: CorpusConfig) -> CorpusGenerator {
        CorpusGenerator {
            config,
            shards: rws_stats::shard::store_shard_count(),
        }
    }

    /// Override the store shard count (≥ 1). A count of 1 is the
    /// unsharded serial baseline: one shard holding every host, rendered
    /// by a single task.
    pub fn with_shards(mut self, shards: usize) -> CorpusGenerator {
        assert!(shards >= 1, "shard count must be at least 1");
        self.shards = shards;
        self
    }

    /// The configured store shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Generate the full corpus on a default (embedded-snapshot) context.
    pub fn generate(&self) -> Corpus {
        self.generate_with(&EngineContext::embedded())
    }

    /// Generate the full corpus, resolving sites through the backend's
    /// shared [`rws_engine::SiteResolver`] and rendering pages on its pool.
    /// Output bytes depend only on the configuration — never on the
    /// backend's execution mode or the shard count.
    pub fn generate_with<E: EngineBackend>(&self, ctx: &E) -> Corpus {
        let cfg = self.config;
        let resolver = ctx.resolver();
        let mut rng = Xoshiro256StarStar::new(cfg.seed).derive("corpus");
        let mut used_domains: HashSet<DomainName> = HashSet::new();
        let mut sites: BTreeMap<DomainName, SiteSpec> = BTreeMap::new();
        let mut organisations = Vec::new();
        let mut rws_sets = Vec::new();

        // --- Organisations and their Related Website Sets -----------------
        for org_id in 0..cfg.organisations {
            let org = Organisation::generate(org_id, &mut rng);
            let language = if rng.chance(cfg.prob_english_org) {
                Language::English
            } else {
                Language::NonEnglish
            };
            let primary_category = pick_category(PRIMARY_CATEGORY_WEIGHTS, &mut rng);
            let primary_domain =
                self.fresh_domain(&org.flagship.slug, language, &mut used_domains, &mut rng);
            let mut set = RwsSet::for_primary(primary_domain.clone());
            set.set_contact(format!("webmaster@{primary_domain}"));

            sites.insert(
                primary_domain.clone(),
                SiteSpec {
                    domain: primary_domain.clone(),
                    brand: org.flagship.clone(),
                    category: primary_category,
                    language,
                    role: SiteRole::SetPrimary,
                    live: rng.chance(cfg.prob_live),
                    organisation: Some(org_id),
                },
            );

            // Associated sites.
            let associated_count = if rng.chance(cfg.prob_set_has_associated) {
                let mean_given_any =
                    (cfg.mean_associated_per_set / cfg.prob_set_has_associated).max(1.0);
                1 + rng.poisson(mean_given_any - 1.0) as usize
            } else {
                0
            };
            for _ in 0..associated_count {
                let shared_branding = rng.chance(cfg.prob_shared_branding);
                let brand = org.flagship.sibling(&mut rng, shared_branding);
                let category = if rng.chance(cfg.prob_same_category) {
                    primary_category
                } else {
                    pick_category(PRIMARY_CATEGORY_WEIGHTS, &mut rng)
                };
                let slug_choice = rng.next_f64();
                let domain = if slug_choice < cfg.prob_identical_sld {
                    // Identical SLD, different (generic) TLD: poalim.xyz / poalim.site.
                    self.fresh_domain_with_sld(
                        &org.flagship.slug,
                        language,
                        &mut used_domains,
                        &mut rng,
                    )
                } else if slug_choice < cfg.prob_identical_sld + cfg.prob_shared_stem {
                    // Shared stem: autobild.de alongside bild.de.
                    let stem_slug = format!("{}{}", brand_stem(&mut rng), org.flagship.slug);
                    self.fresh_domain(&stem_slug, language, &mut used_domains, &mut rng)
                } else {
                    // Entirely distinct name.
                    self.fresh_domain(&brand.slug, language, &mut used_domains, &mut rng)
                };
                set.add_associated(
                    &format!("https://{domain}"),
                    &format!(
                        "Affiliated {} brand of {}",
                        category.label(),
                        org.flagship.organisation_name
                    ),
                )
                .expect("generated associated domains are unique");
                sites.insert(
                    domain.clone(),
                    SiteSpec {
                        domain,
                        brand,
                        category,
                        language,
                        role: SiteRole::SetAssociated,
                        live: rng.chance(cfg.prob_live),
                        organisation: Some(org_id),
                    },
                );
            }

            // Service sites.
            if rng.chance(cfg.prob_set_has_service) {
                let service_count = 1 + rng.geometric_capped(0.6, 2) as usize;
                for s in 0..service_count {
                    let service_slug = format!(
                        "{}{}",
                        org.flagship.slug,
                        ["static", "cdn", "assets", "login"][s.min(3)]
                    );
                    let domain = self.fresh_domain(
                        &service_slug,
                        Language::English,
                        &mut used_domains,
                        &mut rng,
                    );
                    set.add_service(
                        &format!("https://{domain}"),
                        &format!(
                            "Serving infrastructure for {} properties",
                            org.flagship.name
                        ),
                    )
                    .expect("generated service domains are unique");
                    sites.insert(
                        domain.clone(),
                        SiteSpec {
                            domain,
                            brand: org.flagship.clone(),
                            category: SiteCategory::AnalyticsInfrastructure,
                            language,
                            role: SiteRole::SetService,
                            live: rng.chance(cfg.prob_live),
                            organisation: Some(org_id),
                        },
                    );
                }
            }

            // ccTLD variants of the primary.
            if rng.chance(cfg.prob_set_has_cctld) {
                let variant_count = 1 + rng.geometric_capped(0.5, 2) as usize;
                let mut variants = Vec::new();
                let mut tried = HashSet::new();
                for _ in 0..variant_count {
                    let suffix = COUNTRY_SUFFIXES[rng.range_usize(0, COUNTRY_SUFFIXES.len())];
                    if !tried.insert(suffix) {
                        continue;
                    }
                    let candidate = DomainName::parse(&format!(
                        "{}.{suffix}",
                        resolver
                            .second_level_label(&primary_domain)
                            .unwrap_or_else(|| org.flagship.slug.clone())
                    ))
                    .expect("generated ccTLD domains are valid");
                    if used_domains.insert(candidate.clone()) {
                        variants.push(candidate);
                    }
                }
                if !variants.is_empty() {
                    let variant_strs: Vec<String> =
                        variants.iter().map(|d| format!("https://{d}")).collect();
                    let refs: Vec<&str> = variant_strs.iter().map(String::as_str).collect();
                    set.add_cctld_variants(&format!("https://{primary_domain}"), &refs)
                        .expect("generated ccTLD variants are unique");
                    for domain in variants {
                        sites.insert(
                            domain.clone(),
                            SiteSpec {
                                domain,
                                brand: org.flagship.clone(),
                                category: primary_category,
                                language: Language::NonEnglish,
                                role: SiteRole::SetCctld,
                                live: rng.chance(cfg.prob_live),
                                organisation: Some(org_id),
                            },
                        );
                    }
                }
            }

            organisations.push(org);
            rws_sets.push(set);
        }

        let list = RwsList::from_sets(rws_sets).expect("generated sets are disjoint");

        // --- Top sites outside the RWS list --------------------------------
        let mut tranco_entries = Vec::new();
        for _ in 0..cfg.top_sites {
            let brand = Brand::generate(&mut rng);
            let language = if rng.chance(cfg.prob_top_site_english) {
                Language::English
            } else {
                Language::NonEnglish
            };
            let category = pick_category(TOP_SITE_CATEGORY_WEIGHTS, &mut rng);
            let domain = self.fresh_domain(&brand.slug, language, &mut used_domains, &mut rng);
            tranco_entries.push((domain.clone(), category));
            sites.insert(
                domain.clone(),
                SiteSpec {
                    domain,
                    brand,
                    category,
                    language,
                    role: SiteRole::TopSite,
                    live: true,
                    organisation: None,
                },
            );
        }
        let tranco = TrancoList::from_ranked(tranco_entries);

        // --- Populate the sharded page store -------------------------------
        // Per-site work (template rendering dominates) is independent: each
        // site draws from an rng stream derived from its own domain
        // (`derive` reads the parent rng without consuming it), so hosts
        // can be rendered in any order without changing a single output
        // byte. Sites are routed to shards by the same FNV-1a domain hash
        // the store reads with, and one pool task renders each shard's
        // sites in sorted order through its own reusable RenderArena —
        // pages build up in one warm buffer per worker and the finished
        // bytes are interned into the PageBody in a single copy. The
        // per-shard tables are then stitched into a ShardedFrozenWeb; the
        // shard count never feeds the rng, so every count (including the
        // 1-shard serial baseline) is byte-for-byte identical.
        let router = ShardRouter::new(self.shards);
        let mut shard_specs: Vec<Vec<&SiteSpec>> = (0..self.shards).map(|_| Vec::new()).collect();
        for spec in sites.values() {
            shard_specs[router.route(&spec.domain)].push(spec);
        }
        let shard_tables = ctx.par_map_coarse(&shard_specs, |_, specs| {
            let mut arena = RenderArena::new();
            FrozenWeb::from_hosts(
                specs
                    .iter()
                    .map(|spec| render_host(&mut arena, spec, &rng, &list)),
            )
        });
        let sharded = ShardedFrozenWeb::from_routed_shards(shard_tables);
        // Build phase over: the store is frozen. Every page body was
        // interned exactly once above; from here on the corpus is a
        // read-mostly snapshot (lock-free borrows). The web reads through
        // the sharded store, and anything the governance replay registers
        // later lives in its overlay.
        let frozen = sharded.collapse();
        let web = SimulatedWeb::from_sharded(sharded.clone());

        Corpus {
            config: cfg,
            organisations,
            sites,
            list,
            tranco,
            web,
            frozen,
            sharded,
        }
    }

    /// Generate a unique domain from a slug, with a TLD chosen by language.
    fn fresh_domain<R: Rng + ?Sized>(
        &self,
        slug: &str,
        language: Language,
        used: &mut HashSet<DomainName>,
        rng: &mut R,
    ) -> DomainName {
        for attempt in 0..64 {
            let tld = match language {
                Language::English => GENERIC_TLDS[rng.range_usize(0, GENERIC_TLDS.len())],
                Language::NonEnglish => {
                    // Non-English organisations mostly register under a ccTLD,
                    // with some generic TLD use.
                    if rng.chance(0.7) {
                        COUNTRY_SUFFIXES[rng.range_usize(0, COUNTRY_SUFFIXES.len())]
                    } else {
                        GENERIC_TLDS[rng.range_usize(0, GENERIC_TLDS.len())]
                    }
                }
            };
            let name = if attempt == 0 {
                format!("{slug}.{tld}")
            } else {
                format!("{slug}{attempt}.{tld}")
            };
            if let Ok(domain) = DomainName::parse(&name) {
                if used.insert(domain.clone()) {
                    return domain;
                }
            }
        }
        unreachable!("could not find a unique domain for slug '{slug}' after 64 attempts");
    }

    /// Generate a unique domain that keeps exactly the given SLD (used for
    /// the identical-SLD associated sites) by varying only the TLD.
    fn fresh_domain_with_sld<R: Rng + ?Sized>(
        &self,
        sld: &str,
        _language: Language,
        used: &mut HashSet<DomainName>,
        rng: &mut R,
    ) -> DomainName {
        for _ in 0..64 {
            let tld = GENERIC_TLDS[rng.range_usize(0, GENERIC_TLDS.len())];
            if let Ok(domain) = DomainName::parse(&format!("{sld}.{tld}")) {
                if used.insert(domain.clone()) {
                    return domain;
                }
            }
        }
        // All generic TLDs taken for this SLD: fall back to a suffixed slug,
        // which no longer has an identical SLD but keeps generation total.
        self.fresh_domain(&format!("{sld}app"), Language::English, used, rng)
    }
}

/// Render one site's host: pages, well-known file, headers. Pure in
/// `(spec, rng, list)` — the per-site rng stream is derived from the
/// *shared* post-spec-phase rng by domain, so the result is independent
/// of which shard task (or thread) runs it.
fn render_host(
    arena: &mut RenderArena,
    spec: &SiteSpec,
    rng: &Xoshiro256StarStar,
    list: &RwsList,
) -> SiteHost {
    let mut host = SiteHost::for_domain(spec.domain.clone());
    if !spec.live {
        host.set_offline(true);
    }
    let mut page_rng = rng.derive(spec.domain.as_str());
    let html = arena.render_site_into(
        &spec.domain,
        &spec.brand,
        spec.category,
        spec.language,
        &mut page_rng,
    );
    host.add_page("/", html);
    host.add_page(
        "/about",
        arena.render_about_page_into(&spec.domain, &spec.brand, spec.language),
    );
    // RWS members serve their well-known files; service sites also
    // carry the X-Robots-Tag header the validator checks for.
    if let Some(set) = list.set_for(&spec.domain) {
        let wk = if set.primary() == &spec.domain {
            WellKnownFile::for_primary(set)
        } else {
            WellKnownFile::for_member(set.primary())
        };
        host.add_json(WELL_KNOWN_RWS_PATH, wk.to_json_string());
        if spec.role == SiteRole::SetService {
            host.add_header("/", "X-Robots-Tag", "noindex");
            host.add_header(WELL_KNOWN_RWS_PATH, "X-Robots-Tag", "noindex");
        }
    }
    host
}

fn brand_stem<R: Rng + ?Sized>(rng: &mut R) -> &'static str {
    const STEMS: &[&str] = &[
        "auto", "sport", "tech", "shop", "travel", "job", "immo", "finanz", "kino", "wetter",
    ];
    STEMS[rng.range_usize(0, STEMS.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_model::{MemberRole, SetValidator};

    fn corpus() -> Corpus {
        CorpusGenerator::new(CorpusConfig::small(11)).generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CorpusGenerator::new(CorpusConfig::small(3)).generate();
        let b = CorpusGenerator::new(CorpusConfig::small(3)).generate();
        assert_eq!(a.list.set_count(), b.list.set_count());
        assert_eq!(a.list.all_domains(), b.list.all_domains());
        assert_eq!(
            a.tranco
                .iter()
                .map(|e| e.domain.clone())
                .collect::<Vec<_>>(),
            b.tranco
                .iter()
                .map(|e| e.domain.clone())
                .collect::<Vec<_>>()
        );
        // Pages are identical too.
        let d = a.list.all_domains()[0].clone();
        assert_eq!(a.html_of(&d), b.html_of(&d));
    }

    #[test]
    fn corpus_has_expected_shape() {
        let c = corpus();
        assert_eq!(c.list.set_count(), 10);
        assert_eq!(c.organisations.len(), 10);
        assert_eq!(c.tranco.len(), 120);
        // Every RWS member and every top site has a spec and a host.
        for domain in c.list.all_domains() {
            assert!(c.sites.contains_key(&domain));
            assert!(c.web.has_host(&domain));
        }
        assert!(c.web.host_count() >= c.list.domain_count() + c.tranco.len());
    }

    #[test]
    fn roles_match_list_membership() {
        let c = corpus();
        for spec in c.sites.values() {
            match spec.role {
                SiteRole::TopSite => assert!(c.list.set_for(&spec.domain).is_none()),
                SiteRole::SetPrimary => {
                    assert_eq!(c.list.role_of(&spec.domain), Some(MemberRole::Primary))
                }
                SiteRole::SetAssociated => {
                    assert_eq!(c.list.role_of(&spec.domain), Some(MemberRole::Associated))
                }
                SiteRole::SetService => {
                    assert_eq!(c.list.role_of(&spec.domain), Some(MemberRole::Service))
                }
                SiteRole::SetCctld => {
                    assert_eq!(c.list.role_of(&spec.domain), Some(MemberRole::Cctld))
                }
            }
        }
    }

    #[test]
    fn live_set_members_pass_validation() {
        let c = corpus();
        let validator = SetValidator::new(c.web.clone());
        for set in c.list.sets() {
            // Only sets whose members are all live are expected to validate
            // cleanly (offline members legitimately fail the fetch check).
            let all_live = set
                .domains()
                .iter()
                .all(|d| c.site(d).map(|s| s.live).unwrap_or(false));
            if all_live {
                let report = validator.validate(set);
                assert!(
                    report.passed(),
                    "set {} failed validation: {:?}",
                    set.primary(),
                    report.issues
                );
            }
        }
    }

    #[test]
    fn calibration_of_full_size_corpus() {
        let c = CorpusGenerator::new(CorpusConfig::default()).generate();
        assert_eq!(c.list.set_count(), 41);
        let with_assoc = c.list.sets().filter(|s| s.associated_count() > 0).count() as f64 / 41.0;
        assert!(
            with_assoc > 0.8,
            "share of sets with associated sites {with_assoc}"
        );
        let total_assoc: usize = c.list.sets().map(|s| s.associated_count()).sum();
        let mean_assoc = total_assoc as f64 / 41.0;
        assert!(
            (1.6..=3.8).contains(&mean_assoc),
            "mean associated sites per set {mean_assoc} out of range"
        );
        // Some English-language survey-eligible members must exist.
        assert!(c.survey_eligible_members().len() >= 10);
        // And the majority of members should be non-English, as in the paper.
        let members = c.rws_member_sites();
        let english = members
            .iter()
            .filter(|s| s.language == Language::English)
            .count();
        assert!(
            english * 2 < members.len(),
            "{english}/{} English members",
            members.len()
        );
    }

    #[test]
    fn html_is_served_for_live_sites() {
        let c = corpus();
        let spec = c.sites.values().find(|s| s.live).unwrap();
        let html = c.html_of(&spec.domain).unwrap();
        assert!(html.contains(&spec.brand.name));
        assert!(c.category_of(&spec.domain).is_some());
    }

    #[test]
    fn borrowed_views_match_the_owned_compatibility_wrapper() {
        let c = corpus();
        for domain in c.sites.keys() {
            assert_eq!(
                c.with_html(domain, str::to_string),
                c.html_of(domain),
                "with_html/html_of divergence on {domain}"
            );
            assert_eq!(c.page_html(domain).map(str::to_string), c.html_of(domain));
        }
    }

    #[test]
    fn corpus_web_is_frozen_by_construction() {
        let c = corpus();
        // Every generated host lives in the frozen snapshot, and the web
        // serves identically through its frozen base.
        assert_eq!(c.frozen.host_count(), c.web.host_count());
        for domain in c.sites.keys() {
            assert!(c.frozen.has_host(domain));
            let url = rws_net::Url::https(domain, "/");
            assert_eq!(c.frozen.serve(&url), c.web.serve(&url));
        }
        // The served body is a refcount bump of the interned page, not a
        // copy.
        let live = c.sites.values().find(|s| s.live).unwrap();
        let url = rws_net::Url::https(&live.domain, "/");
        let interned = c.frozen.page_body(&live.domain, "/").unwrap().bytes();
        match c.web.serve(&url) {
            rws_net::ServedPage::Content { content, .. } => {
                let body = content.body().unwrap();
                assert_eq!(body.as_bytes().as_ptr(), interned.as_ptr());
            }
            other => panic!("expected content, got {other:?}"),
        }
    }

    #[test]
    fn service_sites_carry_robots_header() {
        let c = CorpusGenerator::new(CorpusConfig::default()).generate();
        let service = c.sites.values().find(|s| s.role == SiteRole::SetService);
        if let Some(spec) = service {
            let has_header = c
                .web
                .with_host(&spec.domain, |h| {
                    h.headers_for("/")
                        .map(|hs| hs.contains("x-robots-tag"))
                        .unwrap_or(false)
                })
                .unwrap();
            assert!(
                has_header,
                "service site {} missing X-Robots-Tag",
                spec.domain
            );
        }
    }

    #[test]
    fn identical_sld_associated_sites_exist_in_large_corpus() {
        let c = CorpusGenerator::new(CorpusConfig::default()).generate();
        let psl = rws_domain::PublicSuffixList::embedded();
        let mut identical = 0usize;
        let mut total = 0usize;
        for (primary, member, role) in c.list.member_primary_pairs() {
            if role == MemberRole::Associated {
                total += 1;
                let a = psl.second_level_label(&member);
                let b = psl.second_level_label(&primary);
                if a.is_some() && a == b {
                    identical += 1;
                }
            }
        }
        assert!(
            total > 20,
            "expected a substantial number of associated sites, got {total}"
        );
        assert!(
            identical >= 1,
            "expected at least one identical-SLD associated site"
        );
    }
}
