//! The corpus-scale knob, mirroring `SurveyScale` and `LoadScale`.

use crate::generator::CorpusConfig;
use serde::{Deserialize, Serialize};

/// How big a generated corpus is.
///
/// Mirrors `rws_survey::SurveyScale` / `rws_load::LoadScale`: a small
/// base size plus a [`times`](CorpusScale::times) multiplier, so tests
/// generate in milliseconds while the bench trajectory measures
/// generation throughput (sites/sec, sharded vs. serial) on corpora an
/// order of magnitude larger — from the same code path. Only *sizes*
/// live here; the calibration rates stay on [`CorpusConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusScale {
    /// Number of organisations (Related Website Sets).
    pub organisations: usize,
    /// Number of Tranco-style top sites outside the RWS list.
    pub top_sites: usize,
}

impl CorpusScale {
    /// The paper's calibrated size: 41 sets, 1500 top sites.
    pub fn paper() -> CorpusScale {
        CorpusScale {
            organisations: 41,
            top_sites: 1500,
        }
    }

    /// A small smoke-test scale, matching [`CorpusConfig::small`].
    pub fn smoke() -> CorpusScale {
        CorpusScale {
            organisations: 10,
            top_sites: 120,
        }
    }

    /// Scale both site populations by `factor`.
    pub fn times(self, factor: usize) -> CorpusScale {
        CorpusScale {
            organisations: self.organisations * factor,
            top_sites: self.top_sites * factor,
        }
    }

    /// Apply this scale to a configuration, keeping every calibration
    /// rate (and the seed) untouched.
    pub fn apply(self, config: CorpusConfig) -> CorpusConfig {
        CorpusConfig {
            organisations: self.organisations,
            top_sites: self.top_sites,
            ..config
        }
    }

    /// A config at this scale with the given seed and default rates.
    pub fn config(self, seed: u64) -> CorpusConfig {
        self.apply(CorpusConfig {
            seed,
            ..CorpusConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_scales_both_populations() {
        let base = CorpusScale::smoke();
        let scaled = base.times(3);
        assert_eq!(scaled.organisations, base.organisations * 3);
        assert_eq!(scaled.top_sites, base.top_sites * 3);
    }

    #[test]
    fn apply_keeps_rates_and_seed() {
        let config = CorpusConfig::small(77);
        let scaled = CorpusScale::paper().apply(config);
        assert_eq!(scaled.seed, 77);
        assert_eq!(scaled.organisations, 41);
        assert_eq!(scaled.top_sites, 1500);
        assert_eq!(scaled.prob_live, config.prob_live);
        assert_eq!(scaled.prob_english_org, config.prob_english_org);
    }

    #[test]
    fn smoke_matches_small_config() {
        let small = CorpusConfig::small(5);
        let scaled = CorpusScale::smoke().config(5);
        assert_eq!(small, scaled);
    }
}
