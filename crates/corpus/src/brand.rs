//! Brands and organisations.
//!
//! Related Website Sets are supposed to group sites that share a "clearly
//! presented common affiliation". In the synthetic corpus that affiliation
//! is modelled explicitly: an [`Organisation`] owns a family of sites, and
//! each site presents a [`Brand`]. Whether an associated site *shares* the
//! organisation's brand (same name stem, same CSS palette, same footer
//! attribution) or presents a distinct brand is the lever that controls how
//! detectable the relationship is — both to the HTML-similarity metrics of
//! Figure 4 and to the simulated survey participants of Section 3.

use rws_stats::rng::Rng;
use serde::{Deserialize, Serialize};

/// Name-stem fragments used to synthesise brand names.
const NAME_STEMS: &[&str] = &[
    "alpha", "north", "bright", "summit", "cedar", "harbor", "lumen", "vertex", "orbit", "pioneer",
    "quartz", "sierra", "atlas", "beacon", "crest", "drift", "ember", "falcon", "garnet", "helix",
    "indigo", "juniper", "krypton", "lattice", "meridian", "nimbus", "onyx", "prism", "quill",
    "raven", "sable", "tundra", "umber", "vortex", "willow", "xenon", "yonder", "zephyr", "cobalt",
    "delta", "echo", "fjord", "glade", "hollow", "iris", "jade", "karst", "lotus", "mesa", "nova",
];

/// Suffixes appended to stems for brand and domain variety.
const NAME_SUFFIXES: &[&str] = &[
    "media", "news", "daily", "post", "times", "tech", "soft", "labs", "works", "shop", "store",
    "market", "travel", "games", "play", "data", "metrics", "cloud", "net", "hub", "zone", "point",
    "group", "corp", "digital", "online", "press", "wire", "review", "journal",
];

/// Colour palette tokens used to derive CSS class prefixes.
const PALETTES: &[&str] = &[
    "crimson", "azure", "amber", "emerald", "violet", "slate", "coral", "teal", "gold", "rose",
    "lime", "navy", "plum", "rust", "mint",
];

/// A brand as presented on a site: name, palette and CSS prefix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Brand {
    /// Human-readable brand name, e.g. "Northpost Daily".
    pub name: String,
    /// A short lowercase token used as the CSS class prefix and in domain
    /// names, e.g. "northpost".
    pub slug: String,
    /// Palette token controlling the shared look of the brand's sites.
    pub palette: String,
    /// The organisation name shown in footers and about pages.
    pub organisation_name: String,
}

impl Brand {
    /// A brand with the given display name and defaults derived from it
    /// (useful in tests).
    pub fn named(name: &str) -> Brand {
        let slug: String = name
            .to_ascii_lowercase()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        Brand {
            organisation_name: format!("{name} Group"),
            palette: "slate".to_string(),
            name: name.to_string(),
            slug,
        }
    }

    /// Generate a fresh brand from the RNG.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Brand {
        let stem = NAME_STEMS[rng.range_usize(0, NAME_STEMS.len())];
        let suffix = NAME_SUFFIXES[rng.range_usize(0, NAME_SUFFIXES.len())];
        let palette = PALETTES[rng.range_usize(0, PALETTES.len())].to_string();
        let slug = format!("{stem}{suffix}");
        let name = format!("{} {}", capitalise(stem), capitalise(suffix));
        Brand {
            organisation_name: format!("{name} Holdings"),
            palette,
            name,
            slug,
        }
    }

    /// Derive a sibling brand for another property of the same organisation.
    ///
    /// With `share_branding` the sibling keeps the organisation name, the
    /// palette and a slug containing the parent's stem (the `autobild.de` ↔
    /// `bild.de` pattern); without it the sibling looks like an unrelated
    /// company (the `nourishingpursuits.com` ↔ `cafemedia.com` pattern).
    pub fn sibling<R: Rng + ?Sized>(&self, rng: &mut R, share_branding: bool) -> Brand {
        if share_branding {
            let prefix = NAME_SUFFIXES[rng.range_usize(0, NAME_SUFFIXES.len())];
            Brand {
                name: format!("{} {}", capitalise(prefix), self.name.clone()),
                slug: format!("{prefix}{}", self.slug),
                palette: self.palette.clone(),
                organisation_name: self.organisation_name.clone(),
            }
        } else {
            // The presented brand is entirely distinct — including the
            // organisation named in the footer — so nothing on the page
            // reveals the affiliation. (True ownership is tracked on the
            // corpus's `SiteSpec::organisation`, not on the brand.)
            Brand::generate(rng)
        }
    }

    /// The CSS class prefix used by this brand's templates.
    pub fn css_prefix(&self) -> String {
        format!("{}-{}", self.slug, self.palette)
    }
}

fn capitalise(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// An organisation owning a family of branded sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Organisation {
    /// Index of the organisation within the corpus.
    pub id: usize,
    /// The organisation's flagship brand (used by its set primary).
    pub flagship: Brand,
}

impl Organisation {
    /// Create an organisation with a generated flagship brand.
    pub fn generate<R: Rng + ?Sized>(id: usize, rng: &mut R) -> Organisation {
        Organisation {
            id,
            flagship: Brand::generate(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_stats::rng::Xoshiro256StarStar;

    #[test]
    fn generated_brands_are_deterministic() {
        let mut a = Xoshiro256StarStar::new(7);
        let mut b = Xoshiro256StarStar::new(7);
        assert_eq!(Brand::generate(&mut a), Brand::generate(&mut b));
    }

    #[test]
    fn generated_brand_fields_nonempty_and_slug_lowercase() {
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..50 {
            let brand = Brand::generate(&mut rng);
            assert!(!brand.name.is_empty());
            assert!(!brand.slug.is_empty());
            assert!(brand
                .slug
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            assert!(brand.css_prefix().contains(&brand.palette));
        }
    }

    #[test]
    fn shared_branding_sibling_keeps_stem_and_palette() {
        let mut rng = Xoshiro256StarStar::new(2);
        let parent = Brand::generate(&mut rng);
        let sibling = parent.sibling(&mut rng, true);
        assert!(sibling.slug.contains(&parent.slug));
        assert_eq!(sibling.palette, parent.palette);
        assert_eq!(sibling.organisation_name, parent.organisation_name);
        assert_ne!(sibling.slug, parent.slug);
    }

    #[test]
    fn unshared_branding_sibling_presents_nothing_in_common() {
        let mut rng = Xoshiro256StarStar::new(3);
        let parent = Brand::generate(&mut rng);
        let sibling = parent.sibling(&mut rng, false);
        assert_ne!(sibling.slug, parent.slug);
        assert_ne!(sibling.organisation_name, parent.organisation_name);
    }

    #[test]
    fn named_brand_slug_is_sanitised() {
        let brand = Brand::named("Café Media 24");
        assert_eq!(brand.slug, "cafmedia24");
        assert_eq!(brand.organisation_name, "Café Media 24 Group");
    }

    #[test]
    fn organisation_generation() {
        let mut rng = Xoshiro256StarStar::new(4);
        let org = Organisation::generate(3, &mut rng);
        assert_eq!(org.id, 3);
        assert!(!org.flagship.name.is_empty());
    }
}
