//! Property tests for the corpus's frozen page store, across corpus seeds.
//!
//! * `Corpus::with_html` (borrowed view) ≡ `Corpus::html_of` (the owned
//!   compatibility wrapper, the pre-frozen-store oracle) on every site;
//! * the frozen snapshot serves every corpus URL identically to the
//!   mutable web that was frozen into it;
//! * freezing happens by construction: every generated host is in the
//!   snapshot, and post-generation overlay writes never disturb it.

use proptest::prelude::*;
use rws_corpus::{CorpusConfig, CorpusGenerator};
use rws_net::{ServedPage, SiteHost, Url, WELL_KNOWN_RWS_PATH};

proptest! {
    /// Borrowed page views agree with the owned oracle on every site of
    /// corpora generated from arbitrary seeds.
    #[test]
    fn with_html_matches_html_of_across_seeds(seed in 0u64..1_000_000) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(seed % 97)).generate();
        for domain in corpus.sites.keys() {
            prop_assert_eq!(
                corpus.with_html(domain, str::to_string),
                corpus.html_of(domain),
                "borrowed/owned divergence on {}", domain
            );
            prop_assert_eq!(
                corpus.page_html(domain).map(str::len),
                corpus.html_of(domain).map(|s| s.len())
            );
        }
    }

    /// The frozen store answers every corpus URL (front page, about page,
    /// well-known file) exactly as the web does, and overlay writes after
    /// generation leave the snapshot untouched.
    #[test]
    fn frozen_serves_match_the_web_across_seeds(seed in 0u64..1_000_000) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(seed % 89)).generate();
        prop_assert_eq!(corpus.frozen.host_count(), corpus.web.host_count());

        let mut probes: Vec<Url> = Vec::new();
        for domain in corpus.sites.keys().take(60) {
            prop_assert!(corpus.frozen.has_host(domain));
            probes.push(Url::https(domain, "/"));
            probes.push(Url::https(domain, "/about"));
            probes.push(Url::https(domain, WELL_KNOWN_RWS_PATH));
        }
        let before: Vec<ServedPage> = probes.iter().map(|u| corpus.frozen.serve(u)).collect();
        for (url, expected) in probes.iter().zip(&before) {
            prop_assert_eq!(&corpus.web.serve(url), expected, "divergence on {}", url);
        }

        // A post-generation registration (what the governance replay does
        // with defect hosts) is invisible to the snapshot.
        let mut web = corpus.web.clone();
        let mut defect = SiteHost::new("defect-host.example.com").unwrap();
        defect.add_page("/", "half-configured");
        web.register(defect);
        let defect_domain = rws_domain::DomainName::parse("defect-host.example.com").unwrap();
        prop_assert!(corpus.web.has_host(&defect_domain));
        prop_assert!(!corpus.frozen.has_host(&defect_domain));
        for (url, expected) in probes.iter().zip(&before) {
            prop_assert_eq!(&corpus.frozen.serve(url), expected);
        }
    }
}
