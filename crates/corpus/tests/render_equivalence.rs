//! Property tests for the arena renderer: byte-for-byte equality with the
//! retained `format!` oracle across arbitrary seeds, brands, categories and
//! languages — including arenas reused (warm) across many differently-sized
//! pages, the way the generator's workers drive them.

use proptest::prelude::*;
use rws_corpus::{render_about_page, render_site, Brand, Language, RenderArena, SiteCategory};
use rws_domain::DomainName;
use rws_stats::rng::{Rng, Xoshiro256StarStar};

proptest! {
    /// One warm arena rendering a stream of random pages reproduces the
    /// oracle byte-for-byte and leaves the RNG in the oracle's exact state.
    #[test]
    fn arena_render_matches_format_oracle(seed in 0u64..1_000_000) {
        let mut arena = RenderArena::new();
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..6 {
            let brand = Brand::generate(&mut rng);
            let domain = DomainName::parse(&format!("{}.example", brand.slug)).unwrap();
            let category = SiteCategory::ALL[rng.range_usize(0, SiteCategory::ALL.len())];
            let language = if rng.chance(0.5) {
                Language::English
            } else {
                Language::NonEnglish
            };
            let mut oracle_rng = rng.derive(domain.as_str());
            let mut arena_rng = oracle_rng.clone();
            let oracle = render_site(&domain, &brand, category, language, &mut oracle_rng);
            let fast = arena.render_site_into(&domain, &brand, category, language, &mut arena_rng);
            prop_assert_eq!(fast, oracle.as_str(), "page divergence on {:?}/{:?}", category, language);
            prop_assert_eq!(oracle_rng.next_u64(), arena_rng.next_u64(), "rng streams diverged");

            let about_oracle = render_about_page(&domain, &brand, language);
            let about_fast = arena.render_about_page_into(&domain, &brand, language);
            prop_assert_eq!(about_fast, about_oracle.as_str());
        }
    }
}
