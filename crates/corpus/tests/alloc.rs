//! Allocation-count gates for the arena renderer.
//!
//! The point of [`RenderArena`] is that page build-up stops touching the
//! allocator: after a first render has grown the buffers, re-rendering a
//! site into the warm arena must perform **zero** heap allocations, and
//! handing the finished page to `PageBody` interning must cost exactly the
//! single final copy. A counting global allocator pins both — and pins
//! that the retained `format!` oracle still pays per-block churn, which is
//! what the `render_arena` bench kernel measures against.
//!
//! Everything lives in one `#[test]` so the process-global counter is not
//! polluted by a sibling test thread.

use rws_corpus::{render_site, Brand, Language, RenderArena, SiteCategory};
use rws_domain::DomainName;
use rws_net::PageBody;
use rws_stats::rng::Xoshiro256StarStar;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper counting every allocation and reallocation.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocs_during<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let value = f();
    (ALLOCS.load(Ordering::Relaxed) - before, value)
}

#[test]
fn warm_arena_renders_without_allocating() {
    let brand = Brand::named("Northpost");
    let domain = DomainName::parse("northpost.com").unwrap();
    let category = SiteCategory::NewsAndMedia;
    let language = Language::English;

    let mut arena = RenderArena::new();
    // Warm-up: the first render grows the arena's buffers.
    let mut rng = Xoshiro256StarStar::new(42);
    let warm_len = arena
        .render_site_into(&domain, &brand, category, language, &mut rng)
        .len();
    assert!(warm_len > 500, "sanity: a real page was rendered");
    arena.render_about_page_into(&domain, &brand, language);

    // Re-rendering the same site into the warm arena: zero allocations.
    let (site_allocs, _) = allocs_during(|| {
        let mut rng = Xoshiro256StarStar::new(42);
        arena
            .render_site_into(&domain, &brand, category, language, &mut rng)
            .len()
    });
    assert_eq!(
        site_allocs, 0,
        "warm arena site render must not touch the allocator"
    );

    let (about_allocs, _) = allocs_during(|| {
        arena
            .render_about_page_into(&domain, &brand, language)
            .len()
    });
    assert_eq!(
        about_allocs, 0,
        "warm arena about render must not touch the allocator"
    );

    // Interning the finished page costs the single final copy: the shared
    // buffer `PageBody` hands out (at most an extra bookkeeping allocation,
    // never a copy-into-String *and* a copy-into-buffer).
    let mut rng = Xoshiro256StarStar::new(42);
    let page = arena.render_site_into(&domain, &brand, category, language, &mut rng);
    let (intern_allocs, body) = allocs_during(|| PageBody::from(page));
    assert_eq!(body.as_str(), page, "intern preserves the bytes");
    assert!(
        (1..=2).contains(&intern_allocs),
        "interning must cost exactly the final copy, got {intern_allocs} allocations"
    );

    // The retained format! oracle pays per-block churn on every render —
    // the gap the render_arena bench kernel reports.
    let (oracle_allocs, oracle) = allocs_during(|| {
        let mut rng = Xoshiro256StarStar::new(42);
        render_site(&domain, &brand, category, language, &mut rng)
    });
    assert_eq!(
        oracle.as_str(),
        {
            let mut rng = Xoshiro256StarStar::new(42);
            arena.render_site_into(&domain, &brand, category, language, &mut rng)
        },
        "oracle and arena agree byte-for-byte"
    );
    assert!(
        oracle_allocs > 10,
        "sanity: the format! oracle allocates per block, got {oracle_allocs}"
    );
}
