//! Sharded generation is observationally invisible.
//!
//! Contracts, across arbitrary corpus seeds:
//!
//! * generating into any shard count {1, 2, 7, 16} produces the *same
//!   corpus* — specs, list, tranco ranking and every page byte — as the
//!   single-shard baseline (the shard count is an execution detail and
//!   must never reach an output byte);
//! * generating on a forced 3-worker pool equals sequential generation
//!   (the repo's pooled-equivalence convention: the global pool on a
//!   single-core CI box drains inline, so the pool is forced);
//! * the `sharded` store a corpus carries serves every probe identically
//!   to its collapsed `frozen` twin, and shares page-body storage with it.

use proptest::prelude::*;
use rws_corpus::{Corpus, CorpusConfig, CorpusGenerator};
use rws_engine::{EngineContext, InlineBackend, SiteResolver, ThreadPool};
use rws_net::{ServedPage, Url, WELL_KNOWN_RWS_PATH};

const SHARD_COUNTS: &[usize] = &[1, 2, 7, 16];

/// A deliberately tiny corpus: the sweep generates it several times per
/// proptest case.
fn tiny_config(seed: u64) -> CorpusConfig {
    CorpusConfig {
        organisations: 6,
        top_sites: 40,
        ..CorpusConfig::small(seed)
    }
}

/// Probe URLs covering every host's front page, about page and well-known
/// file.
fn probes(corpus: &Corpus) -> Vec<Url> {
    let mut urls = Vec::new();
    for domain in corpus.sites.keys() {
        urls.push(Url::https(domain, "/"));
        urls.push(Url::https(domain, "/about"));
        urls.push(Url::https(domain, WELL_KNOWN_RWS_PATH));
    }
    urls
}

/// Field-for-field corpus equality: structured outputs by `==`, the page
/// store by serving every probe URL from both snapshots.
fn assert_same_corpus(baseline: &Corpus, candidate: &Corpus) {
    prop_assert_eq!(&baseline.config, &candidate.config);
    prop_assert_eq!(&baseline.organisations, &candidate.organisations);
    prop_assert_eq!(&baseline.sites, &candidate.sites);
    prop_assert_eq!(&baseline.list, &candidate.list);
    prop_assert_eq!(&baseline.tranco, &candidate.tranco);
    prop_assert_eq!(baseline.frozen.hosts(), candidate.frozen.hosts());
    for url in probes(baseline) {
        prop_assert_eq!(
            &baseline.frozen.serve(&url),
            &candidate.frozen.serve(&url),
            "page divergence on {} ({} shards)",
            &url,
            candidate.sharded.shard_count()
        );
    }
}

proptest! {
    /// Sharded ≡ unsharded generation: every shard count produces the
    /// byte-identical corpus.
    #[test]
    fn any_shard_count_generates_the_identical_corpus(seed in 0u64..1_000_000) {
        let config = tiny_config(seed % 83);
        let ctx = EngineContext::embedded();
        let baseline = CorpusGenerator::new(config).with_shards(1).generate_with(&ctx);
        prop_assert_eq!(baseline.sharded.shard_count(), 1);
        for &count in &SHARD_COUNTS[1..] {
            let candidate = CorpusGenerator::new(config).with_shards(count).generate_with(&ctx);
            prop_assert_eq!(candidate.sharded.shard_count(), count);
            assert_same_corpus(&baseline, &candidate);
        }
    }

    /// Pooled sharded generation ≡ sequential: a forced 3-worker pool
    /// renders shards concurrently yet lands on the same bytes, across
    /// seeds and a non-power-of-two shard count.
    #[test]
    fn pooled_generation_matches_sequential_across_seeds(seed in 0u64..1_000_000) {
        let config = tiny_config(seed % 89);
        let pooled_ctx = EngineContext::with_parts(ThreadPool::new(3), SiteResolver::embedded());
        let inline_ctx = InlineBackend::new(SiteResolver::embedded());
        for &count in &[7usize, 8] {
            let generator = CorpusGenerator::new(config).with_shards(count);
            let pooled = generator.generate_with(&pooled_ctx);
            let sequential = generator.generate_with(&inline_ctx);
            assert_same_corpus(&sequential, &pooled);
        }
    }

    /// The sharded store a corpus carries is the same snapshot as its
    /// collapsed single table: identical serves, shared page bodies, and
    /// every host reachable on its routed shard.
    #[test]
    fn corpus_sharded_store_matches_frozen(seed in 0u64..1_000_000) {
        let corpus = CorpusGenerator::new(tiny_config(seed % 97)).generate();
        prop_assert_eq!(corpus.sharded.host_count(), corpus.frozen.host_count());
        prop_assert_eq!(corpus.sharded.hosts(), corpus.frozen.hosts());
        for url in probes(&corpus) {
            let from_shards: ServedPage = corpus.sharded.serve(&url);
            prop_assert_eq!(&from_shards, &corpus.frozen.serve(&url), "divergence on {}", &url);
        }
        // Bodies are interned once: the sharded view borrows the same
        // allocation as the collapsed table, not a copy.
        for domain in corpus.sites.keys() {
            let single = corpus.frozen.page_body(domain, "/").unwrap();
            let sharded = corpus.sharded.page_body(domain, "/").unwrap();
            prop_assert!(std::ptr::eq(single.as_ptr(), sharded.as_ptr()));
        }
    }
}
