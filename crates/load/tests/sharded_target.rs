//! Load runs against a sharded store ≡ runs against the single table.
//!
//! `LoadTarget::from_corpus_sharded` routes every fetch shard-then-host
//! through the corpus's [`ShardedFrozenWeb`]; `from_corpus` reads the
//! collapsed single table. The store layout is an execution detail, so a
//! replay over either target must produce the identical `LoadReport` —
//! sequentially and on a forced 3-worker pool (the repo's convention:
//! single-core CI drains the global pool inline, so the pool is forced).

use rws_corpus::{Corpus, CorpusConfig, CorpusGenerator};
use rws_engine::{EngineContext, SiteResolver, ThreadPool};
use rws_load::{LoadEngine, LoadScale, LoadTarget};
use rws_net::Url;

fn corpus_with_shards(seed: u64, shards: usize) -> Corpus {
    CorpusGenerator::new(CorpusConfig::small(seed))
        .with_shards(shards)
        .generate()
}

#[test]
fn sharded_target_mirrors_the_single_table_target() {
    let corpus = corpus_with_shards(11, 7);
    let single = LoadTarget::from_corpus(&corpus);
    let sharded = LoadTarget::from_corpus_sharded(&corpus);

    assert_eq!(sharded.shard_count(), Some(7));
    assert_eq!(single.shard_count(), None);
    assert_eq!(single.hosts(), sharded.hosts());
    assert_eq!(single.vanity(), sharded.vanity());

    // Both targets serve the identical snapshot: every universe front page
    // and every vanity redirect, byte for byte.
    for host in single.hosts().iter().chain(single.vanity()) {
        let url = Url::https(host, "/");
        assert_eq!(
            single.frozen().serve(&url),
            sharded.frozen().serve(&url),
            "snapshot divergence on {url}"
        );
        let store = sharded.sharded().unwrap();
        assert_eq!(
            store.serve(&url),
            single.frozen().serve(&url),
            "shard-routed read diverged on {url}"
        );
    }
}

#[test]
fn load_replay_over_shards_equals_single_table_replay() {
    for seed in [3u64, 71] {
        let corpus = corpus_with_shards(seed % 13, 7);
        let single = LoadEngine::new(LoadTarget::from_corpus(&corpus), LoadScale::smoke());
        let sharded = LoadEngine::new(LoadTarget::from_corpus_sharded(&corpus), LoadScale::smoke());

        let pooled_ctx = EngineContext::with_parts(ThreadPool::new(3), SiteResolver::full());
        let inline_ctx = pooled_ctx.sequential_twin();

        let baseline = single.run_on(seed, &inline_ctx);
        assert_eq!(
            sharded.run_on(seed, &inline_ctx),
            baseline,
            "sequential sharded vs single, seed {seed}"
        );
        assert_eq!(
            sharded.run_on(seed, &pooled_ctx),
            baseline,
            "pooled sharded vs sequential single, seed {seed}"
        );
        assert!(baseline.fetch_calls > 0);
        assert!(baseline.redirects_followed > 0);
    }
}
