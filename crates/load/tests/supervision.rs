//! Supervised-execution gates for the load engine: panic quarantine under
//! a fault storm, salvage ≡ fail-fast when nothing panics, and
//! crash-resumable checkpointed runs.
//!
//! The crash fixture is a *poisoned host*: any client that picks it to
//! visit panics on the spot, taking its whole chunk down. Selection is a
//! pure function of `(seed, client id)`, so pooled and sequential replays
//! quarantine identical chunks — which lets every assertion here be full
//! `LoadReport` equality, supervision field included.

use proptest::prelude::*;
use rws_domain::SiteResolver;
use rws_engine::EngineBackend;
use rws_engine::EngineContext;
use rws_load::{
    CheckpointSink, FaultPlan, FaultScale, LoadEngine, LoadScale, LoadTarget, MemorySink,
    RetryPolicy, SupervisionPolicy,
};
use rws_model::RwsList;
use rws_net::{SimulatedWeb, SiteHost};
use rws_stats::pool::ThreadPool;
use std::sync::Once;

/// Suppress the default panic printout for the panics this suite injects
/// on purpose; everything else still reports normally.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("poisoned work item"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// The hand-built five-host universe under storm weather with retries —
/// the same world the resilience suite replays — optionally with one
/// host poisoned so that chunks visiting it panic.
fn stormy_engine(clients: usize, fault_seed: u64, poison: bool) -> LoadEngine {
    let mut web = SimulatedWeb::new();
    for name in [
        "alpha.com",
        "beta.com",
        "gamma.com",
        "delta.org",
        "epsilon.net",
    ] {
        let mut host = SiteHost::new(name).unwrap();
        host.add_page("/", "<html><body>front page</body></html>");
        host.add_page("/about", "<html><body>about page</body></html>");
        web.register(host);
    }
    let mut target = LoadTarget::from_frozen(web.freeze(), RwsList::default())
        .with_faults(FaultPlan::new(fault_seed, FaultScale::storm()))
        .with_retry(RetryPolicy::standard());
    if poison {
        // Poison a vanity entry host: picked ~1.6% of visits, so a full
        // 128-client chunk all but surely trips it while a small tail
        // chunk usually gets through — giving runs that mix quarantined
        // and surviving chunks.
        let vanity = target.vanity()[0].clone();
        target = target.with_poison_hosts(vec![vanity]);
    }
    let scale = LoadScale {
        clients,
        mean_visits: 5,
        think_time_ms: 250,
        ramp_ms: 3_000,
    };
    LoadEngine::new(target, scale)
}

/// Satellite gate: a worker panics mid-storm (fault injection on, salvage
/// on) under a forced 3-worker pool. The quarantine contents, retry
/// counters and every surviving report field equal the sequential twin's.
#[test]
fn mid_storm_panic_salvage_matches_sequential_twin() {
    quiet_injected_panics();
    let engine = stormy_engine(140, 0xFA17, true);
    let ctx = EngineContext::with_parts(ThreadPool::new(3), SiteResolver::full())
        .with_supervision(SupervisionPolicy::salvage());
    let pooled = engine.run_on(1, &ctx);
    let sequential = engine.run_on(1, &ctx.sequential_twin());
    assert_eq!(pooled, sequential);
    // The poison actually fired: at least one chunk is quarantined with
    // the poisoned-host message, and the monitor saw the same sweep.
    assert_eq!(pooled.supervision.tasks_run, 2, "fleet spans two chunks");
    assert!(pooled.supervision.quarantined > 0, "no chunk panicked");
    assert!(pooled
        .supervision
        .entries
        .iter()
        .all(|e| e.stage == "load-chunk" && e.message.contains("poisoned work item")));
    assert_eq!(ctx.supervision_report(), pooled.supervision);
    // The surviving chunk still measured real storm traffic.
    assert!(pooled.sessions > 0, "every chunk was quarantined");
    assert!(pooled.retries > 0, "storm produced no retries");
    assert!(pooled.wire_requests > 0);
}

proptest! {
    /// With nothing poisoned, a salvage run is byte-identical to the
    /// fail-fast default — same report through `PartialEq` *and* through
    /// the serialised wire form (except the supervision caps recorded,
    /// which both modes leave at zero trips).
    #[test]
    fn salvage_without_panics_is_byte_identical_to_fail_fast(seed in 0u64..1_000_000) {
        let engine = stormy_engine(96, seed ^ 0x5057, false);
        let fail_fast = engine.run_on(seed, &EngineContext::new());
        let salvage_ctx = EngineContext::new().with_supervision(SupervisionPolicy::salvage());
        let salvaged = engine.run_on(seed, &salvage_ctx);
        prop_assert_eq!(&fail_fast, &salvaged);
        prop_assert_eq!(
            serde_json::to_string(&fail_fast).unwrap(),
            serde_json::to_string(&salvaged).unwrap()
        );
        prop_assert_eq!(salvaged.supervision.quarantined, 0);
    }

    /// A checkpointed run equals the uninterrupted `run_on` field for
    /// field, whatever the window size.
    #[test]
    fn checkpointed_run_matches_run_on(seed in 0u64..1_000_000, every in 1usize..4) {
        let engine = stormy_engine(300, seed ^ 0x434b50, false);
        let ctx = EngineContext::new();
        let plain = engine.run_on(seed, &ctx);
        let sink = MemorySink::new();
        let checkpointed = engine.run_checkpointed(seed, &ctx, every, &sink);
        prop_assert_eq!(&plain, &checkpointed);
        prop_assert!(sink.count() >= 1);
    }

    /// Kill the run right after any checkpoint and resume: the finished
    /// report equals the uninterrupted one, from every boundary (keep = 0
    /// resumes from scratch).
    #[test]
    fn resume_from_any_checkpoint_matches_uninterrupted(seed in 0u64..1_000_000) {
        let engine = stormy_engine(300, seed ^ 0x524553, false);
        let ctx = EngineContext::new();
        let every = 1;
        let full_sink = MemorySink::new();
        let uninterrupted = engine.run_checkpointed(seed, &ctx, every, &full_sink);
        for keep in 0..=full_sink.count() {
            let sink = full_sink.truncated(keep);
            let resumed = engine.resume_from(seed, &ctx, every, &sink);
            prop_assert_eq!(&resumed, &uninterrupted);
        }
    }
}

/// Checkpointing composes with salvage: a poisoned chunk stays
/// quarantined across a kill/resume, and the resumed report still equals
/// the uninterrupted salvage run.
#[test]
fn checkpointed_salvage_run_resumes_identically() {
    quiet_injected_panics();
    let engine = stormy_engine(140, 0xFA17, true);
    let ctx = EngineContext::sequential().with_supervision(SupervisionPolicy::salvage());
    let full_sink = MemorySink::new();
    let uninterrupted = engine.run_checkpointed(1, &ctx, 1, &full_sink);
    assert!(
        uninterrupted.supervision.quarantined > 0,
        "no chunk panicked"
    );
    for keep in 0..=full_sink.count() {
        let sink = full_sink.truncated(keep);
        let resumed = engine.resume_from(1, &ctx, 1, &sink);
        assert_eq!(resumed, uninterrupted, "resume after checkpoint {keep}");
    }
}

/// Resuming against the wrong seed is refused loudly rather than quietly
/// producing a chimera report.
#[test]
#[should_panic(expected = "different load seed")]
fn resume_rejects_a_checkpoint_from_another_seed() {
    let engine = stormy_engine(130, 7, false);
    let sink = MemorySink::new();
    engine.run_checkpointed(3, &EngineContext::sequential(), 1, &sink);
    engine.resume_from(4, &EngineContext::sequential(), 1, &sink);
}
