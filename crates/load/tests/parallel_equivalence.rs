//! Pooled ≡ sequential equivalence gates for the load engine.
//!
//! Mirrors the convention of `crates/analysis/tests/parallel_equivalence.rs`
//! and `crates/survey/tests/parallel_equivalence.rs`: fanning client chunks
//! out across the pool changes wall-clock time and nothing else. Three
//! executions must agree **field for field** (`LoadReport` derives a full
//! `PartialEq`, histogram buckets included):
//!
//! * the pooled event-loop run (`run_on` with a pooled context),
//! * its sequential twin (`run_on` with `sequential_twin`),
//! * the straight one-client-at-a-time oracle (`replay_sequential`),
//!   which shares no event-loop or chunking code with `run_on`.

use proptest::prelude::*;
use rws_corpus::{CorpusConfig, CorpusGenerator};
use rws_domain::SiteResolver;
use rws_engine::EngineContext;
use rws_load::{LoadEngine, LoadScale, LoadTarget};
use rws_model::RwsList;
use rws_net::{SimulatedWeb, SiteHost};
use rws_stats::pool::ThreadPool;

/// A small hand-built universe: cheap enough to replay three times per
/// proptest case.
fn tiny_engine(clients: usize) -> LoadEngine {
    let mut web = SimulatedWeb::new();
    for name in [
        "alpha.com",
        "beta.com",
        "gamma.com",
        "delta.org",
        "epsilon.net",
    ] {
        let mut host = SiteHost::new(name).unwrap();
        host.add_page("/", "<html><body>front page</body></html>");
        host.add_page("/about", "<html><body>about page</body></html>");
        web.register(host);
    }
    let target = LoadTarget::from_frozen(web.freeze(), RwsList::default());
    let scale = LoadScale {
        clients,
        mean_visits: 5,
        think_time_ms: 250,
        ramp_ms: 3_000,
    };
    LoadEngine::new(target, scale)
}

/// A corpus-backed engine: real RWS sets (so `chrome-rws` auto-grants can
/// fire), `.well-known` files, and the generator's ~1.5% offline member
/// hosts (so error traffic exists).
fn corpus_engine(seed: u64) -> LoadEngine {
    let corpus = CorpusGenerator::new(CorpusConfig::small(seed)).generate();
    LoadEngine::new(LoadTarget::from_corpus(&corpus), LoadScale::smoke())
}

proptest! {
    /// Pooled run == sequential twin == straight replay, for arbitrary
    /// seeds on the hand-built universe.
    #[test]
    fn pooled_equals_sequential_across_seeds(seed in 0u64..1_000_000) {
        let engine = tiny_engine(48);
        let ctx = EngineContext::new();
        let pooled = engine.run_on(seed, &ctx);
        let sequential = engine.run_on(seed, &ctx.sequential_twin());
        prop_assert_eq!(&pooled, &sequential);
        let replay = engine.replay_sequential(seed);
        prop_assert_eq!(&pooled, &replay);
    }
}

/// The full corpus-backed equivalence over a fixed seed panel (corpus
/// generation is too heavy for 48 proptest cases).
#[test]
fn corpus_backed_equivalence_panel() {
    for seed in [1u64, 17, 4242] {
        let engine = corpus_engine(seed % 97);
        let ctx = EngineContext::new();
        let pooled = engine.run_on(seed, &ctx);
        let sequential = engine.run_on(seed, &ctx.sequential_twin());
        assert_eq!(pooled, sequential, "pooled vs twin, seed {seed}");
        let replay = engine.replay_sequential(seed);
        assert_eq!(pooled, replay, "pooled vs replay oracle, seed {seed}");
        // Sanity: the corpus workload actually exercises the interesting
        // paths — sets auto-grant somewhere, some member hosts are down.
        assert!(pooled.fetch_calls > 1000, "seed {seed}");
        assert!(pooled.vendors[0].auto_grant > 0, "no RWS auto-grants");
        assert!(pooled.well_known_probes > 0);
        assert!(pooled.redirects_followed > 0);
    }
}

/// Forced multi-worker pool (the machine running CI may be single-core,
/// where the global pool has zero workers and drains inline — this pins
/// real cross-thread execution), matching the `with_parts` convention of
/// the survey and classify equivalence suites.
#[test]
fn forced_three_worker_pool_matches_replay() {
    let engine = tiny_engine(200);
    let ctx = EngineContext::with_parts(ThreadPool::new(3), SiteResolver::full());
    let pooled = engine.run_on(99, &ctx);
    let replay = engine.replay_sequential_with(99, &SiteResolver::full());
    assert_eq!(pooled, replay);
    assert_eq!(pooled.sessions, 200);
    assert!(pooled.wire_requests > 0);
}

/// Error traffic aggregates identically too: target a universe where some
/// hosts are offline so every run records connection-refused classes.
#[test]
fn error_classes_aggregate_identically() {
    let mut web = SimulatedWeb::new();
    for (i, name) in ["up.com", "down.com", "flaky.org", "solid.net"]
        .iter()
        .enumerate()
    {
        let mut host = SiteHost::new(name).unwrap();
        host.add_page("/", "<html><body>x</body></html>");
        if i == 1 {
            host.set_offline(true);
        }
        web.register(host);
    }
    let target = LoadTarget::from_frozen(web.freeze(), RwsList::default());
    let scale = LoadScale {
        clients: 80,
        mean_visits: 6,
        think_time_ms: 100,
        ramp_ms: 1_000,
    };
    let engine = LoadEngine::new(target, scale);
    let ctx = EngineContext::new();
    let pooled = engine.run_on(7, &ctx);
    assert!(
        pooled.errors.get("connection-refused") > 0,
        "offline host never hit"
    );
    assert_eq!(pooled, engine.run_on(7, &ctx.sequential_twin()));
    assert_eq!(pooled, engine.replay_sequential(7));
}
