//! Resilience gates: the pooled ≡ sequential ≡ replay equivalence must
//! survive an active fault storm, retries must actually recover traffic,
//! and a host going offline mid-run must evict the client's keep-alive
//! connection rather than serve stale content.

use proptest::prelude::*;
use rws_domain::{DomainName, SiteResolver};
use rws_engine::EngineContext;
use rws_load::{FaultPlan, FaultScale, LoadEngine, LoadReport, LoadScale, LoadTarget, RetryPolicy};
use rws_model::RwsList;
use rws_net::{Fetcher, SimulatedWeb, SiteHost};
use rws_stats::pool::ThreadPool;

/// The hand-built five-host universe, wrapped in storm weather and the
/// standard retry posture.
fn stormy_engine(clients: usize, fault_seed: u64) -> LoadEngine {
    let mut web = SimulatedWeb::new();
    for name in [
        "alpha.com",
        "beta.com",
        "gamma.com",
        "delta.org",
        "epsilon.net",
    ] {
        let mut host = SiteHost::new(name).unwrap();
        host.add_page("/", "<html><body>front page</body></html>");
        host.add_page("/about", "<html><body>about page</body></html>");
        web.register(host);
    }
    let target = LoadTarget::from_frozen(web.freeze(), RwsList::default())
        .with_faults(FaultPlan::new(fault_seed, FaultScale::storm()))
        .with_retry(RetryPolicy::standard());
    let scale = LoadScale {
        clients,
        mean_visits: 5,
        think_time_ms: 250,
        ramp_ms: 3_000,
    };
    LoadEngine::new(target, scale)
}

/// Sanity invariants every resilience report must satisfy, storm or calm.
fn assert_resilience_invariants(report: &LoadReport) {
    assert!(
        report.retry_successes + report.retry_failures <= report.retries,
        "each retried call spent at least one retry"
    );
    assert_eq!(
        report.time_to_first_success.count(),
        report.retry_successes,
        "one time-to-first-success sample per degraded success"
    );
    assert_eq!(
        report.responses() + report.error_count(),
        report.fetch_calls,
        "every fetch call ends in a response or a classified error"
    );
    let availability = report.availability();
    assert!((0.0..=1.0).contains(&availability));
    let rate = report.retry_success_rate();
    assert!((0.0..=1.0).contains(&rate));
}

proptest! {
    /// Pooled run == sequential twin == straight replay under an active
    /// fault storm with retries — the acceptance gate of the fault layer.
    #[test]
    fn fault_storm_pooled_equals_sequential_equals_replay(seed in 0u64..1_000_000) {
        let engine = stormy_engine(48, seed ^ 0x57524154);
        let ctx = EngineContext::new();
        let pooled = engine.run_on(seed, &ctx);
        let sequential = engine.run_on(seed, &ctx.sequential_twin());
        prop_assert_eq!(&pooled, &sequential);
        let replay = engine.replay_sequential(seed);
        prop_assert_eq!(&pooled, &replay);
        assert_resilience_invariants(&pooled);
    }

    /// The same equivalence under a deliberately awkward 3-worker pool
    /// (chunks outnumber workers, so chunk scheduling is maximally
    /// shuffled), checked against a matching-resolver replay.
    #[test]
    fn fault_storm_equivalence_under_forced_three_worker_pool(seed in 0u64..1_000_000) {
        let engine = stormy_engine(160, seed ^ 0x504F4F4C);
        let resolver = SiteResolver::full();
        let ctx = EngineContext::with_parts(ThreadPool::new(3), resolver.clone());
        let pooled = engine.run_on(seed, &ctx);
        let replay = engine.replay_sequential_with(seed, &resolver);
        prop_assert_eq!(&pooled, &replay);
        // Note: no `retries > 0` assertion here — fault schedules are pure
        // per-host/per-window functions and every fresh session starts at
        // ordinal 0, so on a five-host universe an unlucky plan seed can
        // legitimately roll zero retryable faults in the touched windows.
        // Retry coverage is pinned by the fixed-seed tests below.
        assert_resilience_invariants(&pooled);
    }
}

/// Fixed-seed companion to the proptest above: under a three-worker pool
/// with a seed verified to storm, the retry path actually fires and the
/// pooled report still equals the replay oracle.
#[test]
fn forced_three_worker_storm_exercises_retries() {
    let engine = stormy_engine(160, 0xFA17);
    let resolver = SiteResolver::full();
    let ctx = EngineContext::with_parts(ThreadPool::new(3), resolver.clone());
    let pooled = engine.run_on(7, &ctx);
    let replay = engine.replay_sequential_with(7, &resolver);
    assert_eq!(pooled, replay);
    assert!(pooled.retries > 0, "storm produced no retries");
    assert_resilience_invariants(&pooled);
}

#[test]
fn storm_with_retries_recovers_traffic() {
    let engine = stormy_engine(96, 0xFA17);
    let report = engine.run(7);
    assert_resilience_invariants(&report);
    assert!(report.retries > 0, "storm produced no retries");
    assert!(
        report.retry_successes > 0,
        "no degraded successes despite retries: {report:?}"
    );
    assert!(report.backoff_ms_total > 0);
    // Retried recoveries must be priced on the simulated clock: their
    // time-to-first-success includes error costs and backoff, so the
    // histogram's samples sit above the base response latencies.
    assert!(report.time_to_first_success.count() > 0);

    // The identical engine with retries disabled serves strictly less
    // traffic successfully under the same weather.
    let no_retry = LoadEngine::new(
        engine.target().clone().with_retry(RetryPolicy::none()),
        engine.scale(),
    )
    .run(7);
    assert_eq!(no_retry.retries, 0);
    assert!(
        report.availability() > no_retry.availability(),
        "retries should raise availability: {} vs {}",
        report.availability(),
        no_retry.availability()
    );
}

#[test]
fn calm_weather_report_matches_fault_free_run() {
    // FaultScale::off() injects nothing: the report must equal the plain
    // fault-free engine's field for field, retries included (zero).
    let mut web = SimulatedWeb::new();
    for name in ["alpha.com", "beta.com", "gamma.com"] {
        let mut host = SiteHost::new(name).unwrap();
        host.add_page("/", "<html><body>x</body></html>");
        web.register(host);
    }
    let frozen = web.freeze();
    let scale = LoadScale {
        clients: 24,
        mean_visits: 4,
        think_time_ms: 100,
        ramp_ms: 500,
    };
    let plain = LoadEngine::new(
        LoadTarget::from_frozen(frozen.clone(), RwsList::default()),
        scale,
    )
    .run(11);
    let off = LoadEngine::new(
        LoadTarget::from_frozen(frozen, RwsList::default())
            .with_faults(FaultPlan::new(99, FaultScale::off()))
            .with_retry(RetryPolicy::standard()),
        scale,
    )
    .run(11);
    assert_eq!(plain, off);
    assert_eq!(off.retries, 0);
}

/// The mid-run-offline satellite: a client holding a keep-alive connection
/// to a host that `update_host` takes offline must observe the refusal and
/// evict the connection — never serve stale content.
#[test]
fn host_offline_mid_run_refuses_and_evicts_the_kept_alive_connection() {
    use rws_load::client::ClientState;

    let host_name = DomainName::parse("solo.example").unwrap();
    let mut web = SimulatedWeb::new();
    let mut host = SiteHost::new("solo.example").unwrap();
    host.add_page("/", "<html><body>alive</body></html>");
    host.add_page("/about", "<html><body>about</body></html>");
    web.register(host);
    let frozen = web.freeze();

    // One-host universe: every visit targets solo.example. The target's
    // own `fetcher()` builds a fresh overlay per call, so the test drives
    // the client directly with a fetcher over a *shared mutable view* —
    // that is what makes the mid-run `update_host` visible to the client's
    // reused connection.
    let target = LoadTarget::from_frozen(frozen.clone(), RwsList::default());
    let mut live_view = SimulatedWeb::from_frozen(frozen);
    let fetcher = Fetcher::new(live_view.clone());
    let scale = LoadScale {
        clients: 1,
        mean_visits: 40,
        think_time_ms: 10,
        ramp_ms: 1,
    };
    let resolver = SiteResolver::full();

    // Find a seed whose client visits plain hosts enough times in both
    // phases (every visit here hits solo.example; just need enough steps).
    let mut client = ClientState::new(3, 0, &scale);
    let mut before = LoadReport::new();
    for _ in 0..10 {
        if !client.step(&scale, &target, &resolver, &fetcher, &mut before) {
            break;
        }
    }
    assert!(before.status_2xx > 0, "warm-up phase served nothing");
    assert_eq!(before.errors.get("connection-refused"), 0);
    assert!(
        client.open_connections().contains(&host_name),
        "client should hold a keep-alive connection to the host"
    );

    // Take the host offline mid-run, through the shared view.
    assert!(live_view.update_host(&host_name, |h| {
        h.set_offline(true);
    }));

    let mut after = LoadReport::new();
    for _ in 0..10 {
        if !client.step(&scale, &target, &resolver, &fetcher, &mut after) {
            break;
        }
    }
    // Every post-offline fetch is refused: no stale 2xx, the error class
    // is connection-refused, and the dead connection was evicted.
    assert_eq!(after.status_2xx, 0, "stale content served after offline");
    assert!(after.errors.get("connection-refused") > 0);
    assert!(
        !client.open_connections().contains(&host_name),
        "dead keep-alive connection was not evicted"
    );
}
