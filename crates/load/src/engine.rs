//! The load engine: chunked event loops fanned out on the pool.

use crate::client::ClientState;
use crate::report::LoadReport;
use crate::scale::LoadScale;
use crate::target::LoadTarget;
use rws_domain::SiteResolver;
use rws_engine::{EngineBackend, EngineContext, SupervisionPolicy};
use rws_net::Fetcher;
use rws_stats::checkpoint::CheckpointSink;
use rws_stats::supervision::Quarantine;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Clients per pool task. Coarse enough that task dispatch is noise,
/// fine enough that the pool has parallelism to steal at smoke scale.
const CHUNK_CLIENTS: u32 = 128;

/// Resumable state of a load run: the chunk watermark (chunk ordinals
/// `0..next_chunk` are already replayed and merged) plus the merged
/// partial report so far, serialised through the vendored serde shim.
/// Valid to resume against a freshly built identical target because every
/// client is a pure function of `(seed, client id)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadCheckpoint {
    /// The run seed the partial report belongs to.
    pub seed: u64,
    /// First chunk ordinal not yet replayed.
    pub next_chunk: u32,
    /// Everything merged so far (`clients` is left at 0 until the run
    /// finalises).
    pub partial: LoadReport,
}

/// Replays a fleet of simulated browser clients against a [`LoadTarget`].
///
/// Two execution paths produce the same [`LoadReport`] field for field:
///
/// * [`run_on`](LoadEngine::run_on) — clients in fixed chunks, each chunk
///   interleaved on a simulated-clock event loop (a min-heap of next
///   action times), chunks fanned out on the [`EngineContext`] pool, and
///   per-chunk partial reports merged with integer arithmetic;
/// * [`replay_sequential`](LoadEngine::replay_sequential) — the oracle:
///   one client at a time, run to completion in a plain loop, no heap and
///   no pool.
///
/// Equality holds because clients are fully independent (per-client rng
/// streams, per-client simulated clocks) and every aggregate is an
/// order-independent integer merge; the property tests pin it across
/// seeds and forced multi-worker pools.
#[derive(Debug)]
pub struct LoadEngine {
    target: LoadTarget,
    scale: LoadScale,
}

impl LoadEngine {
    /// Build an engine over a target. The target must have at least one
    /// browsable host.
    pub fn new(target: LoadTarget, scale: LoadScale) -> LoadEngine {
        assert!(
            !target.hosts().is_empty(),
            "load target has no hosts to fetch"
        );
        LoadEngine { target, scale }
    }

    /// The configured scale.
    pub fn scale(&self) -> LoadScale {
        self.scale
    }

    /// The target under load.
    pub fn target(&self) -> &LoadTarget {
        &self.target
    }

    /// Run the full fleet on a fresh default [`EngineContext`].
    pub fn run(&self, seed: u64) -> LoadReport {
        self.run_on(seed, &EngineContext::new())
    }

    /// Run the full fleet on the given context: chunked event loops on the
    /// pool (or inline when the context is sequential), fanned out under
    /// the context's [`SupervisionPolicy`].
    ///
    /// Under the default fail-fast policy each chunk clones one shared
    /// fetcher (same family-wide request counter, its own uncontended
    /// shard) and a panicking chunk takes the run down, exactly as before.
    /// Under salvage each chunk gets its *own* fetcher family and carries
    /// its wire-request count in its partial report, so a quarantined
    /// chunk's requests vanish with it and the surviving merge stays
    /// exact; the quarantine lands in `report.supervision` (and the
    /// context's monitor). When nothing panics the two accounting schemes
    /// sum to the same totals, so salvage output is byte-identical to
    /// fail-fast — a pinned property.
    pub fn run_on<E: EngineBackend>(&self, seed: u64, ctx: &E) -> LoadReport {
        let resolver = ctx.resolver();
        let chunks = self.chunk_spans();
        let mut merged = LoadReport::new();
        let sweep = match ctx.supervision() {
            SupervisionPolicy::FailFast => {
                let fetcher = self.target.fetcher();
                let (partials, sweep) =
                    ctx.par_map_sweep_at("load-chunk", 0, &chunks, |_, &(lo, hi)| {
                        let worker_fetcher = fetcher.clone();
                        self.run_chunk(seed, lo, hi, resolver, &worker_fetcher)
                    });
                for partial in partials.into_iter().flatten() {
                    merged.merge(&partial);
                }
                merged.wire_requests = fetcher.requests_issued() as u64;
                sweep
            }
            SupervisionPolicy::Salvage { .. } => {
                let (partials, sweep) =
                    ctx.par_map_sweep_at("load-chunk", 0, &chunks, |_, &(lo, hi)| {
                        let worker_fetcher = self.target.fetcher();
                        let mut partial = self.run_chunk(seed, lo, hi, resolver, &worker_fetcher);
                        partial.wire_requests = worker_fetcher.requests_issued() as u64;
                        partial
                    });
                for partial in partials.into_iter().flatten() {
                    merged.merge(&partial);
                }
                sweep
            }
        };
        merged.supervision.merge(&sweep);
        merged.clients = self.scale.clients as u64;
        merged
    }

    /// The fleet cut into `CHUNK_CLIENTS`-sized `(lo, hi)` spans — the
    /// unit of pool dispatch, quarantine and checkpointing alike.
    fn chunk_spans(&self) -> Vec<(u32, u32)> {
        let clients = self.scale.clients as u32;
        (0..clients)
            .step_by(CHUNK_CLIENTS.max(1) as usize)
            .map(|lo| (lo, (lo + CHUNK_CLIENTS).min(clients)))
            .collect()
    }

    /// Like [`run_on`](Self::run_on), but replaying the chunks in windows
    /// of `every` and serialising a [`LoadCheckpoint`] (chunk watermark +
    /// merged partial report) into `sink` after each window, so a killed
    /// run can continue from where it left off. Every chunk uses its own
    /// fetcher family (the salvage accounting scheme), which sums to the
    /// shared-family totals, so the finished report equals an
    /// uninterrupted [`run_on`](Self::run_on) field for field.
    pub fn run_checkpointed<E: EngineBackend>(
        &self,
        seed: u64,
        ctx: &E,
        every: usize,
        sink: &dyn CheckpointSink,
    ) -> LoadReport {
        self.resume_loop(seed, ctx, every, sink, 0, LoadReport::new())
    }

    /// Continue a checkpointed run from the sink's latest checkpoint (or
    /// from scratch on an empty sink). The finished report is
    /// field-for-field equal to an uninterrupted run — property-tested by
    /// killing at every checkpoint boundary.
    pub fn resume_from<E: EngineBackend>(
        &self,
        seed: u64,
        ctx: &E,
        every: usize,
        sink: &dyn CheckpointSink,
    ) -> LoadReport {
        match sink.latest() {
            Some(value) => {
                let checkpoint = LoadCheckpoint::deserialize(&value)
                    .expect("sink holds a valid load checkpoint");
                assert_eq!(
                    checkpoint.seed, seed,
                    "checkpoint belongs to a different load seed"
                );
                self.resume_loop(
                    seed,
                    ctx,
                    every,
                    sink,
                    checkpoint.next_chunk as usize,
                    checkpoint.partial,
                )
            }
            None => self.resume_loop(seed, ctx, every, sink, 0, LoadReport::new()),
        }
    }

    /// The shared checkpointing core: replay chunks `start_chunk..` in
    /// windows of `every`, each window one supervised sweep, storing the
    /// merged state after every window. `merged` seeds the fold when
    /// resuming.
    fn resume_loop<E: EngineBackend>(
        &self,
        seed: u64,
        ctx: &E,
        every: usize,
        sink: &dyn CheckpointSink,
        start_chunk: usize,
        mut merged: LoadReport,
    ) -> LoadReport {
        let resolver = ctx.resolver();
        let chunks = self.chunk_spans();
        let every = every.max(1);
        let mut next = start_chunk.min(chunks.len());
        while next < chunks.len() {
            let end = next.saturating_add(every).min(chunks.len());
            let window = &chunks[next..end];
            let (partials, sweep) =
                ctx.par_map_sweep_at("load-chunk", next, window, |_, &(lo, hi)| {
                    let worker_fetcher = self.target.fetcher();
                    let mut partial = self.run_chunk(seed, lo, hi, resolver, &worker_fetcher);
                    partial.wire_requests = worker_fetcher.requests_issued() as u64;
                    partial
                });
            for partial in partials.into_iter().flatten() {
                merged.merge(&partial);
            }
            merged.supervision.merge(&sweep);
            next = end;
            sink.store(
                LoadCheckpoint {
                    seed,
                    next_chunk: next as u32,
                    partial: merged.clone(),
                }
                .serialize(),
            );
        }
        merged.clients = self.scale.clients as u64;
        merged
    }

    /// One chunk of clients interleaved on a simulated-clock event loop:
    /// always advance whichever client acts earliest (ties broken by
    /// client slot, so the schedule is deterministic).
    fn run_chunk(
        &self,
        seed: u64,
        lo: u32,
        hi: u32,
        resolver: &SiteResolver,
        fetcher: &Fetcher,
    ) -> LoadReport {
        let mut report = LoadReport::new();
        let mut states: Vec<ClientState> = (lo..hi)
            .map(|id| ClientState::new(seed, id, &self.scale))
            .collect();
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = states
            .iter()
            .enumerate()
            .map(|(slot, st)| Reverse((st.clock(), slot as u32)))
            .collect();
        for st in &states {
            report.sim_start_ms = report.sim_start_ms.min(st.clock());
        }
        while let Some(Reverse((_, slot))) = heap.pop() {
            let st = &mut states[slot as usize];
            if st.step(&self.scale, &self.target, resolver, fetcher, &mut report) {
                heap.push(Reverse((st.clock(), slot)));
            } else {
                report.sessions += 1;
                report.sim_end_ms = report.sim_end_ms.max(st.clock());
            }
        }
        report
    }

    /// The property-test oracle: every client replayed to completion one
    /// at a time, no event loop, no pool. Produces the identical report.
    pub fn replay_sequential(&self, seed: u64) -> LoadReport {
        self.replay_sequential_with(seed, &SiteResolver::full())
    }

    /// Sequential replay against an explicit resolver (tests that force a
    /// particular pool/resolver pairing use this to match contexts).
    pub fn replay_sequential_with(&self, seed: u64, resolver: &SiteResolver) -> LoadReport {
        let fetcher = self.target.fetcher();
        let mut report = LoadReport::new();
        for id in 0..self.scale.clients as u32 {
            let mut st = ClientState::new(seed, id, &self.scale);
            report.sim_start_ms = report.sim_start_ms.min(st.clock());
            while st.step(&self.scale, &self.target, resolver, &fetcher, &mut report) {}
            report.sessions += 1;
            report.sim_end_ms = report.sim_end_ms.max(st.clock());
        }
        report.clients = self.scale.clients as u64;
        report.wire_requests = fetcher.requests_issued() as u64;
        // Mirror the clean fail-fast sweep `run_on` records, so the oracle
        // stays field-for-field equal to the engine paths.
        report.supervision.record_sweep(
            "load-chunk",
            0,
            self.chunk_spans().len(),
            &Quarantine::new(),
            usize::MAX,
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_model::RwsList;
    use rws_net::{SimulatedWeb, SiteHost};

    fn tiny_engine(clients: usize) -> LoadEngine {
        let mut web = SimulatedWeb::new();
        for name in ["alpha.com", "beta.com", "gamma.com", "delta.com"] {
            let mut host = SiteHost::new(name).unwrap();
            host.add_page("/", "<html><body>page</body></html>");
            host.add_page("/about", "<html><body>about</body></html>");
            web.register(host);
        }
        let target = LoadTarget::from_frozen(web.freeze(), RwsList::default());
        let scale = LoadScale {
            clients,
            mean_visits: 5,
            think_time_ms: 200,
            ramp_ms: 2_000,
        };
        LoadEngine::new(target, scale)
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let engine = tiny_engine(40);
        let ctx = EngineContext::new();
        let a = engine.run_on(11, &ctx);
        let b = engine.run_on(11, &ctx);
        assert_eq!(a, b);
        let c = engine.run_on(12, &ctx);
        assert_ne!(a, c);
    }

    #[test]
    fn all_sessions_complete_and_tallies_are_consistent() {
        let engine = tiny_engine(60);
        let report = engine.run_on(5, &EngineContext::new());
        assert_eq!(report.clients, 60);
        assert_eq!(report.sessions, 60);
        assert_eq!(report.gets + report.heads, report.fetch_calls);
        // Every fetch either produced a response or an error.
        assert_eq!(
            report.responses() + report.error_count(),
            report.fetch_calls
        );
        // Wire requests include redirect hops on top of fetch calls that
        // got a response; errors may have consumed hops too.
        assert!(report.wire_requests >= report.responses() + report.redirects_followed);
        assert_eq!(report.latency.count(), report.responses());
        assert!(report.sim_end_ms > report.sim_start_ms);
        for tally in &report.vendors {
            assert_eq!(tally.decisions(), report.decisions);
            assert!(tally.shared >= tally.auto_grant);
        }
        // chrome-legacy never partitions: every decision is shared.
        assert_eq!(report.vendors[1].vendor, "chrome-legacy");
        assert_eq!(report.vendors[1].shared, report.decisions);
        // brave never shares.
        assert_eq!(report.vendors[4].vendor, "brave");
        assert_eq!(report.vendors[4].shared, 0);
    }

    #[test]
    fn traffic_mix_exercises_every_path() {
        let engine = tiny_engine(120);
        let report = engine.run_on(3, &EngineContext::new());
        assert!(report.gets > 0, "no GETs");
        assert!(report.heads > 0, "no HEADs");
        assert!(report.well_known_probes > 0, "no well-known probes");
        assert!(report.redirects_followed > 0, "no redirects followed");
        assert!(report.connections_reused > 0, "no connection reuse");
        assert!(report.connections_opened > 0, "no connections opened");
        assert!(report.decisions > 0, "no partitioning decisions");
        assert!(report.requests_per_sim_sec() > 0.0);
    }
}
