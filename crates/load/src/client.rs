//! One simulated browser client: a deterministic session state machine.
//!
//! ```text
//!              ┌──────────────────────────────────────────────┐
//!              ▼                                              │
//!  arrive ─▶ pick host ─▶ connect ─▶ GET/HEAD ─▶ tally ─▶ think ─▶ ... ─▶ done
//!  (ramp)    (skewed /    (reuse or  (redirects  (status,  (exp.
//!             vanity)      open)      followed)   latency,  clock
//!                                        │        vendor    advance)
//!                                        ▼        verdicts)
//!                                 .well-known probe (p≈0.3)
//! ```
//!
//! Every random draw comes from the client's own rng stream, derived from
//! `(run seed, client id)` — never from shared state — so a client behaves
//! identically whether it is interleaved on the event loop, run on a pool
//! worker, or replayed alone. That independence is what makes the pooled
//! and sequential aggregate reports equal field for field.

use crate::report::LoadReport;
use crate::scale::LoadScale;
use crate::target::LoadTarget;
use rws_browser::{AccessRequest, StorageAccessPolicy, VendorPolicy};
use rws_domain::{DomainName, SiteResolver};
use rws_net::{well_known_path, FetchOutcome, FetchSession, Fetcher, NetError, Response, Url};
use rws_stats::{Rng, Xoshiro256StarStar};

/// Simulated keep-alive window: a connection idle longer than this is
/// re-opened.
const KEEPALIVE_MS: u64 = 15_000;
/// Simulated TCP+TLS setup cost added to a response served on a fresh
/// connection.
const CONNECT_COST_MS: u64 = 12;
/// Simulated clock cost of a failed fetch (refused connection, timeout
/// already accounted by the fetcher's deadline, ...).
const ERROR_COST_MS: u64 = 35;
/// Per-client cap on simultaneously open simulated connections.
const MAX_OPEN_CONNECTIONS: usize = 8;

/// Probability a page visit enters through a vanity redirect host.
const P_VANITY: f64 = 0.08;
/// Probability a page visit targets `/about` instead of `/`.
const P_ABOUT: f64 = 0.25;
/// Probability a page visit is a HEAD instead of a GET.
const P_HEAD: f64 = 0.12;
/// Probability a visit is followed by a `.well-known` RWS probe.
const P_WELL_KNOWN: f64 = 0.30;
/// Probability the embedded site of a partitioning decision is a site the
/// client has already visited first-party (vs. a random third party).
const P_EMBED_VISITED: f64 = 0.5;
/// Probability a client accepts storage-access prompts.
const P_ACCEPTS_PROMPTS: f64 = 0.32;

/// A live client session. All state is private to the client.
#[derive(Debug)]
pub struct ClientState {
    rng: Xoshiro256StarStar,
    /// The client's position on the simulated clock, in milliseconds.
    clock: u64,
    visits_left: u32,
    accepts_prompts: bool,
    /// Sites (eTLD+1) visited first-party this session, insertion-ordered.
    visited_sites: Vec<DomainName>,
    /// Open simulated connections: `(origin host, last use)`.
    connections: Vec<(DomainName, u64)>,
    /// The client's fetch session: per-host request ordinals for the fault
    /// plan, the rng stream backoff jitter draws from, and the retry
    /// budget. Derived from `(seed, id)` on its own label so it never
    /// perturbs the main behaviour stream above.
    session: FetchSession,
}

impl ClientState {
    /// Seed a client. The rng stream depends only on `(seed, id)`.
    pub fn new(seed: u64, id: u32, scale: &LoadScale) -> ClientState {
        let mut rng = Xoshiro256StarStar::new(seed).derive(&format!("load-client-{id}"));
        let clock = rng.range_u64(0, scale.ramp_ms.max(1));
        let visits = rng.poisson(scale.mean_visits.max(1) as f64).max(1);
        ClientState {
            accepts_prompts: rng.chance(P_ACCEPTS_PROMPTS),
            rng,
            clock,
            visits_left: visits.min(u32::MAX as u64) as u32,
            visited_sites: Vec::new(),
            connections: Vec::new(),
            session: FetchSession::new(seed, &format!("load-client-{id}-fetch")),
        }
    }

    /// Where this client currently sits on the simulated clock.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Run one visit (page fetch, optional `.well-known` probe, think
    /// time). Returns `true` while the session has more visits to run.
    pub fn step(
        &mut self,
        scale: &LoadScale,
        target: &LoadTarget,
        resolver: &SiteResolver,
        fetcher: &Fetcher,
        report: &mut LoadReport,
    ) -> bool {
        let host = self.pick_host(target);
        if target.is_poisoned(&host) {
            panic!("poisoned work item: {host}");
        }
        let path = if self.rng.chance(P_ABOUT) {
            "/about"
        } else {
            "/"
        };
        let head = self.rng.chance(P_HEAD);
        let url = Url::https(&host, path);
        let connect_cost = self.connect(&host, report);

        report.fetch_calls += 1;
        let outcome = if head {
            report.heads += 1;
            fetcher.head_with(&url, &mut self.session)
        } else {
            report.gets += 1;
            fetcher.get_with(&url, &mut self.session)
        };
        if let Some(resp) = self.note_outcome(&host, connect_cost, outcome, report) {
            if resp.status.is_success() {
                // The landing host (after redirects) is the page the
                // user is on; decide partitioning there.
                let top_site = resolver.site_or_self(&resp.url.host);
                self.decide_partitioning(&top_site, target, resolver, report);
                self.note_visited(top_site);
            }
        }

        if self.rng.chance(P_WELL_KNOWN) {
            self.probe_well_known(&host, resolver, fetcher, report);
        }

        let think = self
            .rng
            .exponential(1.0 / scale.think_time_ms.max(1) as f64) as u64;
        self.clock += think;
        self.visits_left -= 1;
        self.visits_left > 0
    }

    /// GET the site's `/.well-known/related-website-set.json`, tallied but
    /// with no partitioning decision (it is machine traffic, not a page).
    fn probe_well_known(
        &mut self,
        host: &DomainName,
        resolver: &SiteResolver,
        fetcher: &Fetcher,
        report: &mut LoadReport,
    ) {
        let site = resolver.site_or_self(host);
        let url = well_known_path(&site);
        let connect_cost = self.connect(&site, report);
        report.well_known_probes += 1;
        report.fetch_calls += 1;
        report.gets += 1;
        let outcome = fetcher.get_with(&url, &mut self.session);
        self.note_outcome(&site, connect_cost, outcome, report);
    }

    /// Fold a fetch outcome into the report and the clock: retry and
    /// backoff accounting, error tallies, and — on transport-level failure
    /// — eviction of the (now known dead) simulated connection, so a host
    /// going offline mid-run cannot keep serving through a stale keep-alive
    /// slot. Returns the response, if one arrived.
    fn note_outcome(
        &mut self,
        origin: &DomainName,
        connect_cost: u64,
        outcome: FetchOutcome,
        report: &mut LoadReport,
    ) -> Option<Response> {
        let retries = u64::from(outcome.retries());
        report.retries += retries;
        report.backoff_ms_total += outcome.backoff_ms;
        // Each failed attempt costs error-handling time, and the backoff
        // between attempts passes on the client's simulated clock.
        self.clock += retries * ERROR_COST_MS + outcome.backoff_ms;
        match outcome.result {
            Ok(resp) => {
                if retries > 0 {
                    report.retry_successes += 1;
                    report.time_to_first_success.record(
                        retries * ERROR_COST_MS
                            + outcome.backoff_ms
                            + connect_cost
                            + resp.latency_ms,
                    );
                }
                self.observe(&resp, connect_cost, report);
                Some(resp)
            }
            Err(err) => {
                if retries > 0 {
                    report.retry_failures += 1;
                }
                if matches!(
                    err,
                    NetError::ConnectionRefused { .. }
                        | NetError::Timeout { .. }
                        | NetError::HostNotFound { .. }
                ) {
                    self.drop_connection(origin);
                }
                report.errors.record(err.class());
                self.clock += ERROR_COST_MS;
                None
            }
        }
    }

    /// Close the simulated connection to `origin`, if one is open.
    fn drop_connection(&mut self, origin: &DomainName) {
        self.connections.retain(|(h, _)| h != origin);
    }

    /// Origins with an open simulated connection (test observability).
    pub fn open_connections(&self) -> Vec<DomainName> {
        self.connections.iter().map(|(h, _)| h.clone()).collect()
    }

    /// Tally a response and advance the simulated clock by its latency.
    fn observe(&mut self, resp: &Response, connect_cost: u64, report: &mut LoadReport) {
        let latency = resp.latency_ms + connect_cost;
        report.latency.record(latency);
        report.total_latency_ms += latency;
        report.redirects_followed += resp.redirects_followed as u64;
        if resp.status.is_success() {
            report.status_2xx += 1;
        } else if resp.status.is_client_error() {
            report.status_4xx += 1;
        } else if resp.status.is_server_error() {
            report.status_5xx += 1;
        }
        self.clock += latency;
    }

    /// Evaluate a `requestStorageAccess`-style decision for every vendor
    /// policy against this page load.
    fn decide_partitioning(
        &mut self,
        top_site: &DomainName,
        target: &LoadTarget,
        resolver: &SiteResolver,
        report: &mut LoadReport,
    ) {
        let embedded_site = if !self.visited_sites.is_empty() && self.rng.chance(P_EMBED_VISITED) {
            let i = self.rng.range_usize(0, self.visited_sites.len());
            self.visited_sites[i].clone()
        } else {
            let i = self.rng.range_usize(0, target.hosts().len());
            resolver.site_or_self(&target.hosts()[i])
        };
        let has_prior_interaction = self.has_interacted_with(&embedded_site, target);
        let request = AccessRequest {
            top_level_site: top_site.clone(),
            embedded_site,
            has_prior_interaction,
        };
        report.decisions += 1;
        for (slot, vendor) in VendorPolicy::ALL.iter().enumerate() {
            let verdict = vendor.verdict(&request, target.list());
            report.vendors[slot].record(verdict, self.accepts_prompts);
        }
    }

    /// Whether the client has visited `site` — or, mirroring the browser
    /// model, any member of `site`'s RWS set — first-party this session.
    fn has_interacted_with(&self, site: &DomainName, target: &LoadTarget) -> bool {
        if self.visited_sites.contains(site) {
            return true;
        }
        target
            .list()
            .set_for(site)
            .map(|set| set.domains().iter().any(|d| self.visited_sites.contains(d)))
            .unwrap_or(false)
    }

    fn note_visited(&mut self, site: DomainName) {
        if !self.visited_sites.contains(&site) {
            self.visited_sites.push(site);
        }
    }

    /// Pick the next host: a vanity redirect entry sometimes, otherwise a
    /// skew-toward-the-front draw over the deterministic host order (a
    /// stand-in for a popularity distribution).
    fn pick_host(&mut self, target: &LoadTarget) -> DomainName {
        if !target.vanity().is_empty() && self.rng.chance(P_VANITY) {
            let i = self.rng.range_usize(0, target.vanity().len());
            return target.vanity()[i].clone();
        }
        let n = target.hosts().len();
        let u = self.rng.next_f64();
        let i = ((u * u * n as f64) as usize).min(n - 1);
        target.hosts()[i].clone()
    }

    /// Simulated connection management: reuse within the keep-alive
    /// window is free, everything else pays the setup cost. Returns the
    /// cost to add to the response latency.
    fn connect(&mut self, origin: &DomainName, report: &mut LoadReport) -> u64 {
        let now = self.clock;
        if let Some(slot) = self.connections.iter_mut().find(|(h, _)| h == origin) {
            let idle = now.saturating_sub(slot.1);
            slot.1 = now;
            if idle <= KEEPALIVE_MS {
                report.connections_reused += 1;
                return 0;
            }
            report.connections_opened += 1;
            return CONNECT_COST_MS;
        }
        if self.connections.len() >= MAX_OPEN_CONNECTIONS {
            // Evict the least recently used connection.
            let oldest = self
                .connections
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.connections.swap_remove(oldest);
        }
        self.connections.push((origin.clone(), now));
        report.connections_opened += 1;
        CONNECT_COST_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_rng_depends_only_on_seed_and_id() {
        let scale = LoadScale::smoke();
        let a = ClientState::new(7, 3, &scale);
        let b = ClientState::new(7, 3, &scale);
        assert_eq!(a.clock, b.clock);
        assert_eq!(a.visits_left, b.visits_left);
        assert_eq!(a.accepts_prompts, b.accepts_prompts);
        let c = ClientState::new(7, 4, &scale);
        let d = ClientState::new(8, 3, &scale);
        // Different id or seed, different stream (clock xor visits differ
        // with overwhelming probability; pin the concrete values so a
        // stream regression is loud).
        assert!(
            (a.clock, a.visits_left) != (c.clock, c.visits_left)
                || (a.clock, a.visits_left) != (d.clock, d.visits_left)
        );
    }

    #[test]
    fn sessions_have_at_least_one_visit() {
        let scale = LoadScale {
            clients: 1,
            mean_visits: 1,
            think_time_ms: 10,
            ramp_ms: 1,
        };
        for id in 0..64 {
            let st = ClientState::new(1, id, &scale);
            assert!(st.visits_left >= 1);
        }
    }
}
