//! Aggregated results of a load run.

use rws_browser::{PolicyVerdict, StorageAccessPolicy, VendorPolicy};
use rws_stats::{CategoryCounter, LatencyHistogram, SupervisionReport};
use serde::{Deserialize, Serialize};

/// Per-vendor storage-access outcomes across every partitioning decision
/// taken during the run, in [`VendorPolicy::ALL`] order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VendorTally {
    /// Vendor report name (`chrome-rws`, `firefox`, ...).
    pub vendor: String,
    /// Decisions auto-granted without user involvement.
    pub auto_grant: u64,
    /// Decisions that would show a user prompt.
    pub prompt: u64,
    /// Decisions refused outright.
    pub deny: u64,
    /// Decisions where state actually ends up shared: auto-grants plus
    /// prompts the (per-client) simulated user accepted.
    pub shared: u64,
}

impl VendorTally {
    fn new(vendor: &str) -> VendorTally {
        VendorTally {
            vendor: vendor.to_string(),
            auto_grant: 0,
            prompt: 0,
            deny: 0,
            shared: 0,
        }
    }

    /// Total decisions this vendor saw.
    pub fn decisions(&self) -> u64 {
        self.auto_grant + self.prompt + self.deny
    }

    /// Record one verdict. `accepted` is whether the simulated user would
    /// accept a prompt, deciding the `shared` outcome for `Prompt`.
    pub(crate) fn record(&mut self, verdict: PolicyVerdict, accepted: bool) {
        match verdict {
            PolicyVerdict::AutoGrant => {
                self.auto_grant += 1;
                self.shared += 1;
            }
            PolicyVerdict::Prompt => {
                self.prompt += 1;
                if accepted {
                    self.shared += 1;
                }
            }
            PolicyVerdict::Deny => self.deny += 1,
        }
    }

    fn merge(&mut self, other: &VendorTally) {
        debug_assert_eq!(self.vendor, other.vendor);
        self.auto_grant += other.auto_grant;
        self.prompt += other.prompt;
        self.deny += other.deny;
        self.shared += other.shared;
    }
}

/// Everything a load run measured, aggregated with integer arithmetic only
/// so that per-worker partial reports [`merge`](LoadReport::merge) to the
/// same value in any order — the property the pooled ≡ sequential
/// equivalence tests pin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Clients simulated.
    pub clients: u64,
    /// Client sessions run to completion.
    pub sessions: u64,
    /// Fetch calls issued by clients (each may span several redirect hops).
    pub fetch_calls: u64,
    /// Wire-level requests including every redirect hop, from the
    /// fetcher's sharded counter.
    pub wire_requests: u64,
    /// GET fetch calls (page visits and `.well-known` probes).
    pub gets: u64,
    /// HEAD fetch calls.
    pub heads: u64,
    /// `/.well-known/related-website-set.json` probes issued.
    pub well_known_probes: u64,
    /// Redirect hops followed across all successful responses.
    pub redirects_followed: u64,
    /// Responses with a 2xx status.
    pub status_2xx: u64,
    /// Responses with a 4xx status.
    pub status_4xx: u64,
    /// Responses with a 5xx status.
    pub status_5xx: u64,
    /// Failed fetches tallied by [`NetError::class`](rws_net::NetError::class).
    pub errors: CategoryCounter,
    /// Retry attempts made beyond each fetch call's first attempt.
    pub retries: u64,
    /// Fetch calls that succeeded only after retrying (degraded successes).
    pub retry_successes: u64,
    /// Fetch calls that still failed after exhausting their retries.
    pub retry_failures: u64,
    /// Total simulated backoff spent between retry attempts, in
    /// milliseconds.
    pub backoff_ms_total: u64,
    /// Time-to-first-success distribution for fetch calls that needed
    /// retries: error costs + backoff + connection setup + final response
    /// latency, in simulated milliseconds.
    pub time_to_first_success: LatencyHistogram,
    /// Simulated connections opened (cold or expired keep-alive).
    pub connections_opened: u64,
    /// Simulated connections reused within the keep-alive window.
    pub connections_reused: u64,
    /// Storage-partitioning decisions taken (one per successful page
    /// response; each is evaluated against every vendor policy).
    pub decisions: u64,
    /// Per-vendor outcomes, in [`VendorPolicy::ALL`] order.
    pub vendors: Vec<VendorTally>,
    /// Latency distribution over every response (simulated milliseconds,
    /// including connection setup).
    pub latency: LatencyHistogram,
    /// Sum of all recorded latencies in simulated milliseconds.
    pub total_latency_ms: u64,
    /// Earliest client session start on the simulated clock (`u64::MAX`
    /// while empty so merge is a plain `min`).
    pub sim_start_ms: u64,
    /// Latest client session end on the simulated clock.
    pub sim_end_ms: u64,
    /// How the run's chunk sweeps were supervised: tasks run, chunks
    /// quarantined after panics (salvage mode only), cap trips, and the
    /// retained quarantine entries.
    pub supervision: SupervisionReport,
}

impl Default for LoadReport {
    fn default() -> Self {
        LoadReport::new()
    }
}

impl LoadReport {
    /// An empty report with the vendor tallies pre-seeded in
    /// [`VendorPolicy::ALL`] order.
    pub fn new() -> LoadReport {
        LoadReport {
            clients: 0,
            sessions: 0,
            fetch_calls: 0,
            wire_requests: 0,
            gets: 0,
            heads: 0,
            well_known_probes: 0,
            redirects_followed: 0,
            status_2xx: 0,
            status_4xx: 0,
            status_5xx: 0,
            errors: CategoryCounter::new(),
            retries: 0,
            retry_successes: 0,
            retry_failures: 0,
            backoff_ms_total: 0,
            time_to_first_success: LatencyHistogram::new(),
            connections_opened: 0,
            connections_reused: 0,
            decisions: 0,
            vendors: VendorPolicy::ALL
                .iter()
                .map(|v| VendorTally::new(v.name()))
                .collect(),
            latency: LatencyHistogram::new(),
            total_latency_ms: 0,
            sim_start_ms: u64::MAX,
            sim_end_ms: 0,
            supervision: SupervisionReport::new(),
        }
    }

    /// Fold a per-worker partial report into this one. Exact and
    /// order-independent: every field is an integer sum, min, max or
    /// bucket-wise histogram merge.
    pub fn merge(&mut self, other: &LoadReport) {
        self.clients += other.clients;
        self.sessions += other.sessions;
        self.fetch_calls += other.fetch_calls;
        self.wire_requests += other.wire_requests;
        self.gets += other.gets;
        self.heads += other.heads;
        self.well_known_probes += other.well_known_probes;
        self.redirects_followed += other.redirects_followed;
        self.status_2xx += other.status_2xx;
        self.status_4xx += other.status_4xx;
        self.status_5xx += other.status_5xx;
        self.errors.merge(&other.errors);
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.retry_failures += other.retry_failures;
        self.backoff_ms_total += other.backoff_ms_total;
        self.time_to_first_success
            .merge(&other.time_to_first_success);
        self.connections_opened += other.connections_opened;
        self.connections_reused += other.connections_reused;
        self.decisions += other.decisions;
        for (mine, theirs) in self.vendors.iter_mut().zip(&other.vendors) {
            mine.merge(theirs);
        }
        self.latency.merge(&other.latency);
        self.total_latency_ms += other.total_latency_ms;
        self.sim_start_ms = self.sim_start_ms.min(other.sim_start_ms);
        self.sim_end_ms = self.sim_end_ms.max(other.sim_end_ms);
        self.supervision.merge(&other.supervision);
    }

    /// Span of the simulated clock covered by the run, in milliseconds.
    pub fn sim_duration_ms(&self) -> u64 {
        self.sim_end_ms.saturating_sub(self.sim_start_ms)
    }

    /// Fetch calls per second of *simulated* time — the load the client
    /// fleet put on the store, independent of wall-clock speed.
    pub fn requests_per_sim_sec(&self) -> f64 {
        let ms = self.sim_duration_ms();
        if ms == 0 {
            0.0
        } else {
            self.fetch_calls as f64 * 1000.0 / ms as f64
        }
    }

    /// Total failed fetch calls across all error classes.
    pub fn error_count(&self) -> u64 {
        self.errors.total()
    }

    /// Successful responses tallied (2xx + 4xx + 5xx).
    pub fn responses(&self) -> u64 {
        self.status_2xx + self.status_4xx + self.status_5xx
    }

    /// Of the fetch calls that needed retries, the fraction that recovered
    /// (1.0 when no call retried — nothing failed to recover).
    pub fn retry_success_rate(&self) -> f64 {
        let retried = self.retry_successes + self.retry_failures;
        if retried == 0 {
            1.0
        } else {
            self.retry_successes as f64 / retried as f64
        }
    }

    /// Fraction of fetch calls that ultimately produced a response
    /// (1.0 when no calls were made) — the availability the client fleet
    /// experienced under whatever weather the run injected.
    pub fn availability(&self) -> f64 {
        if self.fetch_calls == 0 {
            1.0
        } else {
            self.responses() as f64 / self.fetch_calls as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_report_has_all_vendors_in_order() {
        let r = LoadReport::new();
        let names: Vec<&str> = r.vendors.iter().map(|v| v.vendor.as_str()).collect();
        assert_eq!(
            names,
            vec!["chrome-rws", "chrome-legacy", "firefox", "safari", "brave"]
        );
        assert_eq!(r.sim_duration_ms(), 0);
        assert_eq!(r.requests_per_sim_sec(), 0.0);
    }

    #[test]
    fn merge_is_field_wise() {
        let mut a = LoadReport::new();
        a.fetch_calls = 3;
        a.status_2xx = 2;
        a.sim_start_ms = 100;
        a.sim_end_ms = 900;
        a.latency.record(40);
        a.vendors[0].record(PolicyVerdict::AutoGrant, false);
        let mut b = LoadReport::new();
        b.fetch_calls = 4;
        b.status_4xx = 1;
        b.sim_start_ms = 50;
        b.sim_end_ms = 400;
        b.errors.record("timeout");
        b.vendors[0].record(PolicyVerdict::Prompt, true);
        b.retries = 5;
        b.retry_successes = 2;
        b.retry_failures = 1;
        b.backoff_ms_total = 620;
        b.time_to_first_success.record(700);
        a.merge(&b);
        assert_eq!(a.fetch_calls, 7);
        assert_eq!(a.retries, 5);
        assert_eq!(a.retry_successes, 2);
        assert_eq!(a.retry_failures, 1);
        assert_eq!(a.backoff_ms_total, 620);
        assert_eq!(a.time_to_first_success.count(), 1);
        assert_eq!(a.status_2xx, 2);
        assert_eq!(a.status_4xx, 1);
        assert_eq!(a.sim_start_ms, 50);
        assert_eq!(a.sim_end_ms, 900);
        assert_eq!(a.sim_duration_ms(), 850);
        assert_eq!(a.latency.count(), 1);
        assert_eq!(a.error_count(), 1);
        assert_eq!(a.vendors[0].auto_grant, 1);
        assert_eq!(a.vendors[0].prompt, 1);
        assert_eq!(a.vendors[0].shared, 2);
        assert_eq!(a.vendors[0].decisions(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let mut r = LoadReport::new();
        r.fetch_calls = 10;
        r.latency.record(55);
        r.errors.record("connection-refused");
        r.retries = 3;
        r.retry_successes = 2;
        r.backoff_ms_total = 150;
        r.time_to_first_success.record(230);
        let json = serde_json::to_string(&r).unwrap();
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn resilience_rates_handle_empty_and_populated_reports() {
        let mut r = LoadReport::new();
        // Nothing retried, nothing fetched: both rates read as perfect.
        assert_eq!(r.retry_success_rate(), 1.0);
        assert_eq!(r.availability(), 1.0);
        r.fetch_calls = 10;
        r.status_2xx = 6;
        r.status_5xx = 2;
        r.errors.record("connection-refused");
        r.errors.record("timeout");
        r.retry_successes = 3;
        r.retry_failures = 1;
        assert_eq!(r.retry_success_rate(), 0.75);
        assert_eq!(r.availability(), 0.8);
    }
}
