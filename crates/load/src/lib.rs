//! Load engine: hammer the frozen web with simulated browser traffic.
//!
//! Everything the paper measures is request traffic — crawls of every set
//! member's `/.well-known/related-website-set.json`, page fetches for the
//! similarity analysis, per-vendor storage-partitioning decisions on each
//! response. This crate turns that workload into a *load generator*: up to
//! hundreds of thousands of simulated browser clients replayed through the
//! [`EngineContext`](rws_engine::EngineContext) pool against the lock-free
//! [`FrozenWeb`](rws_net::FrozenWeb) snapshot, the "millions of users" leg
//! of the roadmap's north star made measurable.
//!
//! # Model
//!
//! Each client is a deterministic state machine driven by its own
//! rng stream (derived from the run seed and the client id, so results are
//! independent of scheduling):
//!
//! * a session of Poisson-many page visits over a skewed host popularity
//!   distribution, mixed GET/HEAD, `/` and `/about` paths;
//! * redirect-following via vanity entry hosts registered on top of the
//!   frozen snapshot;
//! * `.well-known/related-website-set.json` probes;
//! * a per-vendor (`VendorPolicy::ALL`) storage-partitioning decision on
//!   every successful page response;
//! * a simulated clock: per-response `latency_ms` accumulation, simulated
//!   connection setup and keep-alive reuse, exponential think time.
//!
//! Clients run over a simulated-clock event loop (a binary heap of
//! next-action times) in fixed chunks fanned out on the pool. All
//! aggregation is integer arithmetic into a mergeable
//! [`LatencyHistogram`](rws_stats::LatencyHistogram) and counter set, so a
//! pooled run, its sequential twin, and the straight one-client-at-a-time
//! [`replay_sequential`](LoadEngine::replay_sequential) oracle produce
//! *identical* [`LoadReport`]s field for field — property-tested, like
//! every other pooled subsystem in this workspace.
//!
//! # Resilience
//!
//! A target can carry transient weather: [`LoadTarget::with_faults`]
//! installs a deterministic [`FaultPlan`] (refusals, latency spikes past
//! the deadline, 5xx bursts, truncated bodies, redirect storms) and
//! [`LoadTarget::with_retry`] gives clients a [`RetryPolicy`] whose
//! backoff passes on the *simulated* clock with jitter from each client's
//! derived rng stream. The report then aggregates retries, retry-success
//! rate, a time-to-first-success histogram and availability — and the
//! pooled ≡ sequential ≡ replay equality holds under a full fault storm,
//! because fault schedules are pure `(seed, host, per-client ordinal)`
//! functions with no shared state.
//!
//! # Supervised execution
//!
//! Chunk sweeps run under the context's
//! [`SupervisionPolicy`](rws_engine::SupervisionPolicy): fail-fast by
//! default, or — under salvage — a panicking chunk is quarantined into
//! `report.supervision` while the surviving chunks' partials still merge
//! exactly. Long runs can also be checkpointed:
//! [`LoadEngine::run_checkpointed`] serialises a [`LoadCheckpoint`]
//! (chunk watermark + merged partial report) into a
//! [`CheckpointSink`](rws_stats::CheckpointSink) every few windows, and
//! [`LoadEngine::resume_from`] continues a killed run to a report
//! field-for-field equal to an uninterrupted one.
//!
//! ```
//! use rws_corpus::{CorpusConfig, CorpusGenerator};
//! use rws_load::{LoadEngine, LoadScale, LoadTarget};
//!
//! let corpus = CorpusGenerator::new(CorpusConfig::small(7)).generate();
//! let target = LoadTarget::from_corpus(&corpus);
//! let engine = LoadEngine::new(target, LoadScale::smoke());
//! let report = engine.run(42);
//! assert!(report.fetch_calls > 0);
//! assert_eq!(report, engine.run(42)); // deterministic for a fixed seed
//! ```

pub mod client;
pub mod engine;
pub mod report;
pub mod scale;
pub mod target;

pub use engine::{LoadCheckpoint, LoadEngine};
pub use report::{LoadReport, VendorTally};
pub use scale::LoadScale;
pub use target::LoadTarget;

// Resilience knobs, re-exported so load consumers (tests, benches) can
// configure weather without depending on rws-net directly.
pub use rws_net::{FaultPlan, FaultScale, FetchSession, RetryPolicy};

// Supervision and checkpointing vocabulary, re-exported for the same
// reason: tests and benches configure salvage runs and sinks through the
// load crate alone.
pub use rws_engine::{SupervisionPolicy, SupervisionReport};
pub use rws_stats::{CheckpointSink, FileSink, MemorySink};
