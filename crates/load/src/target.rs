//! What a load run fetches: a frozen snapshot plus redirect entry hosts.

use rws_corpus::Corpus;
use rws_domain::DomainName;
use rws_model::RwsList;
use rws_net::{
    FaultInjector, FaultPlan, FetchPolicy, Fetcher, FrozenWeb, PageContent, RetryPolicy,
    ShardedFrozenWeb, SimulatedWeb, SiteHost,
};

/// Number of vanity entry hosts registered per target (bounded by the
/// host-universe size).
const VANITY_HOSTS: usize = 48;

/// The immutable world a load run hammers.
///
/// Built once from a corpus (or any frozen snapshot + RWS list): the
/// browsable host universe in deterministic order, plus a set of *vanity
/// entry hosts* (`go0.load-entry.example`, ...) that 301/302-redirect to
/// real hosts — the corpus itself registers no redirects, and the load mix
/// needs them to exercise the fetcher's redirect following under load.
/// Registering them lands in an overlay over the corpus snapshot which is
/// then re-frozen, so the run reads a single lock-free [`FrozenWeb`].
#[derive(Debug, Clone)]
pub struct LoadTarget {
    frozen: FrozenWeb,
    /// When built from a sharded store, the sharded view of the same
    /// snapshot (universe + vanity hosts, identical contents to `frozen`).
    /// Fetchers read through it, so every request routes shard-then-host —
    /// the cross-shard-read path the bench trajectory times against the
    /// single-table baseline.
    sharded: Option<ShardedFrozenWeb>,
    list: RwsList,
    hosts: Vec<DomainName>,
    vanity: Vec<DomainName>,
    /// Transient-fault weather for the run (none by default).
    faults: Option<FaultPlan>,
    /// Client retry posture (no retries by default).
    retry: RetryPolicy,
    /// Hosts whose mere selection panics the visiting client's chunk —
    /// deterministic "poisoned work item" injection for supervision tests
    /// (empty by default; production targets never set this).
    poison: Vec<DomainName>,
}

impl LoadTarget {
    /// Target the frozen web and RWS list of a generated corpus.
    pub fn from_corpus(corpus: &Corpus) -> LoadTarget {
        LoadTarget::from_frozen(corpus.frozen.clone(), corpus.list.clone())
    }

    /// Target the *sharded* store of a generated corpus: identical
    /// contents to [`from_corpus`](LoadTarget::from_corpus), but fetchers
    /// resolve every request shard-then-host.
    pub fn from_corpus_sharded(corpus: &Corpus) -> LoadTarget {
        LoadTarget::from_sharded(corpus.sharded.clone(), corpus.list.clone())
    }

    /// Target an arbitrary frozen snapshot and list.
    pub fn from_frozen(frozen: FrozenWeb, list: RwsList) -> LoadTarget {
        let hosts = frozen.hosts();
        let mut web = SimulatedWeb::from_frozen(frozen);
        let vanity = register_vanity_hosts(&mut web, &hosts);
        LoadTarget {
            frozen: web.freeze(),
            sharded: None,
            list,
            hosts,
            vanity,
            faults: None,
            retry: RetryPolicy::none(),
            poison: Vec::new(),
        }
    }

    /// Target an arbitrary sharded snapshot and list. Vanity entry hosts
    /// land in an overlay that is re-frozen *sharded*, preserving the
    /// store's shard count, so the whole universe (redirects included)
    /// reads through shard routing.
    pub fn from_sharded(sharded: ShardedFrozenWeb, list: RwsList) -> LoadTarget {
        let hosts = sharded.hosts();
        let shard_count = sharded.shard_count();
        let mut web = SimulatedWeb::from_sharded(sharded);
        let vanity = register_vanity_hosts(&mut web, &hosts);
        let resharded = web.freeze_sharded(shard_count);
        LoadTarget {
            frozen: resharded.collapse(),
            sharded: Some(resharded),
            list,
            hosts,
            vanity,
            faults: None,
            retry: RetryPolicy::none(),
            poison: Vec::new(),
        }
    }

    /// Inject deterministic transient faults into every fetch the run
    /// makes. The plan is pure `(seed, host, ordinal)` state, so pooled and
    /// sequential replays see identical weather.
    pub fn with_faults(mut self, plan: FaultPlan) -> LoadTarget {
        self.faults = Some(plan);
        self
    }

    /// Give the run's clients a retry posture (default: no retries).
    pub fn with_retry(mut self, retry: RetryPolicy) -> LoadTarget {
        self.retry = retry;
        self
    }

    /// Mark hosts as poisoned: any client that picks one to visit panics
    /// on the spot with a `"poisoned work item"` message. This is the
    /// deterministic crash fixture the supervision tests drive salvage
    /// mode with — selection is a pure function of `(seed, client)`, so
    /// pooled and sequential replays quarantine identical chunks.
    pub fn with_poison_hosts(mut self, hosts: Vec<DomainName>) -> LoadTarget {
        self.poison = hosts;
        self
    }

    /// True if visiting this host should panic the client.
    pub fn is_poisoned(&self, host: &DomainName) -> bool {
        self.poison.contains(host)
    }

    /// The poisoned hosts, if any.
    pub fn poison_hosts(&self) -> &[DomainName] {
        &self.poison
    }

    /// The fault plan in force, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults
    }

    /// The retry policy clients run with.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The browsable host universe (excludes vanity entry hosts), in
    /// deterministic sorted order.
    pub fn hosts(&self) -> &[DomainName] {
        &self.hosts
    }

    /// The redirect-only entry hosts.
    pub fn vanity(&self) -> &[DomainName] {
        &self.vanity
    }

    /// The frozen snapshot the run serves from (universe + vanity hosts),
    /// as a single table. For sharded targets this is the collapsed view;
    /// fetchers still read through the shards.
    pub fn frozen(&self) -> &FrozenWeb {
        &self.frozen
    }

    /// The sharded store fetchers read through, when this target was
    /// built from one.
    pub fn sharded(&self) -> Option<&ShardedFrozenWeb> {
        self.sharded.as_ref()
    }

    /// The store's shard count, when sharded.
    pub fn shard_count(&self) -> Option<usize> {
        self.sharded.as_ref().map(ShardedFrozenWeb::shard_count)
    }

    /// The RWS list partitioning decisions consult.
    pub fn list(&self) -> &RwsList {
        &self.list
    }

    /// A fresh fetcher over this target: default policy, unlogged (sharded
    /// atomic request accounting), its own counter family — so each run's
    /// `wire_requests` starts at zero.
    pub fn fetcher(&self) -> Fetcher {
        let web = match &self.sharded {
            Some(sharded) => SimulatedWeb::from_sharded(sharded.clone()),
            None => SimulatedWeb::from_frozen(self.frozen.clone()),
        };
        let mut fetcher = Fetcher::with_policy(web, FetchPolicy::default());
        fetcher.set_retry(self.retry);
        if let Some(plan) = self.faults {
            fetcher.set_fault_injector(Some(FaultInjector::new(plan)));
        }
        fetcher
    }
}

/// Register the deterministic vanity entry hosts over `web` and return
/// their domains. The spread over the universe (stride 37, coprime to
/// most small sizes) is shared between single-table and sharded targets,
/// so both build byte-identical redirect pages.
fn register_vanity_hosts(web: &mut SimulatedWeb, hosts: &[DomainName]) -> Vec<DomainName> {
    let vanity_count = if hosts.is_empty() {
        0
    } else {
        VANITY_HOSTS.min(hosts.len())
    };
    let mut vanity = Vec::with_capacity(vanity_count);
    for i in 0..vanity_count {
        let destination = &hosts[(i * 37) % hosts.len()];
        let name = format!("go{i}.load-entry.example");
        let domain = DomainName::parse(&name).expect("vanity host name is valid");
        let mut host = SiteHost::for_domain(domain.clone());
        host.add_content(
            "/",
            PageContent::Redirect {
                location: format!("https://{destination}/"),
                permanent: i % 2 == 0,
            },
        );
        web.register(host);
        vanity.push(domain);
    }
    vanity
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_net::Url;

    fn tiny_target() -> LoadTarget {
        let mut web = SimulatedWeb::new();
        for name in ["alpha.com", "beta.com", "gamma.com"] {
            let mut host = SiteHost::new(name).unwrap();
            host.add_page("/", "<html><body>hello</body></html>");
            web.register(host);
        }
        LoadTarget::from_frozen(web.freeze(), RwsList::default())
    }

    #[test]
    fn vanity_hosts_redirect_into_the_universe() {
        let target = tiny_target();
        assert_eq!(target.hosts().len(), 3);
        assert_eq!(target.vanity().len(), 3);
        let fetcher = target.fetcher();
        for v in target.vanity() {
            let resp = fetcher.get(&Url::https(v, "/")).unwrap();
            assert!(resp.status.is_success());
            assert_eq!(resp.redirects_followed, 1);
            assert!(target.hosts().contains(&resp.url.host));
        }
    }

    #[test]
    fn universe_excludes_vanity_hosts() {
        let target = tiny_target();
        for v in target.vanity() {
            assert!(!target.hosts().contains(v));
            assert!(target.frozen().has_host(v));
        }
    }
}
