//! The load-scale knob, mirroring `SurveyScale`.

use serde::{Deserialize, Serialize};

/// How much traffic a load run generates.
///
/// Mirrors `rws_survey::SurveyScale`: a small base configuration plus a
/// [`times`](LoadScale::times) multiplier for scaled benches, so tests run
/// in milliseconds while the bench trajectory replays hundreds of
/// thousands of requests from the same code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadScale {
    /// Number of simulated browser clients.
    pub clients: usize,
    /// Mean page visits per client session (Poisson-distributed per
    /// client, minimum one).
    pub mean_visits: usize,
    /// Mean think time between visits in simulated milliseconds
    /// (exponentially distributed).
    pub think_time_ms: u64,
    /// Window over which client sessions start (uniform arrival), in
    /// simulated milliseconds.
    pub ramp_ms: u64,
}

impl LoadScale {
    /// A small smoke-test scale: a few hundred clients, a few thousand
    /// requests — fast enough for property tests.
    pub fn smoke() -> LoadScale {
        LoadScale {
            clients: 240,
            mean_visits: 8,
            think_time_ms: 750,
            ramp_ms: 10_000,
        }
    }

    /// Scale the client count by `factor`, keeping per-client behaviour
    /// identical (sessions are seeded per client id, so the first
    /// `clients` sessions of a scaled run match the unscaled run exactly).
    pub fn times(self, factor: usize) -> LoadScale {
        LoadScale {
            clients: self.clients * factor,
            ..self
        }
    }

    /// Expected total page visits across all clients (excluding
    /// `.well-known` probes), for sizing assertions.
    pub fn expected_visits(&self) -> usize {
        self.clients * self.mean_visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_scales_clients_only() {
        let base = LoadScale::smoke();
        let scaled = base.times(4);
        assert_eq!(scaled.clients, base.clients * 4);
        assert_eq!(scaled.mean_visits, base.mean_visits);
        assert_eq!(scaled.think_time_ms, base.think_time_ms);
        assert_eq!(scaled.ramp_ms, base.ramp_ms);
        assert_eq!(scaled.expected_visits(), 4 * base.expected_visits());
    }
}
