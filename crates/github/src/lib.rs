//! Simulated GitHub governance pipeline for the Related Website Sets list.
//!
//! Section 4 of the paper studies how the RWS list is managed: site owners
//! propose sets via pull requests on GitHub, an automated bot validates each
//! submission (the failure classes of Table 3), and maintainers manually
//! review what survives. The paper measures the cumulative PR volume split
//! by outcome (Figure 5), the days taken to process PRs (Figure 6), the
//! distribution of bot messages (Table 3), and notes that 58.8% of PRs are
//! closed without being merged while approved PRs take a median of 5 days.
//!
//! The real repository history is not reachable offline, so this crate
//! simulates the pipeline end-to-end:
//!
//! * [`PullRequest`] / [`PrHistory`] — the event records the analyses
//!   consume, identical in shape to what a GitHub export would provide;
//! * [`GovernancePipeline`] — CLA check, the validation bot (backed by the
//!   real [`SetValidator`](rws_model::SetValidator) running against the
//!   simulated web), and a manual-review latency model;
//! * [`HistoryGenerator`] — produces a full PR history calibrated to the
//!   paper's published statistics by replaying realistic submissions
//!   (including deliberately broken ones) through the pipeline.

pub mod history;
pub mod pipeline;
pub mod pr;

pub use history::{HistoryCheckpoint, HistoryConfig, HistoryGenerator, SubmissionDefect};
pub use pipeline::{GovernancePipeline, ReviewModel};
pub use pr::{PrHistory, PrState, PullRequest};
