//! Calibrated generation of a full pull-request history.
//!
//! The generator replays realistic submissions through the
//! [`GovernancePipeline`]: every set in the corpus's RWS list eventually
//! lands (that is how the list got its 41 sets), but most submitters fumble
//! first — they forget the `.well-known` files, submit subdomains instead of
//! eTLD+1s, omit rationales, or propose sets that never become valid at all.
//! The defect mix is weighted to reproduce the bot-message distribution of
//! Table 3, and the opening dates follow the accelerating submission rate
//! visible in Figure 5 (March 2023 → March 2024).
//!
//! # Parallel replay
//!
//! Each submitter's story (their failed attempts, defects, dates and final
//! outcome) is generated from an rng stream **derived from their primary's
//! name** — the same per-task derivation pattern the corpus uses for page
//! rendering. Submitters are therefore independent, the replay fans out
//! across the engine's thread pool one submitter per task, and the result
//! is byte-identical no matter how the tasks interleave (or whether they
//! run sequentially at all). Defect hosts that a submitter stands up on the
//! shared web carry the submitter's own slug in their name, so concurrent
//! submitters never write the same host. PR numbers are assigned after the
//! fan-out, in deterministic (open date, primary, attempt) order.

use crate::pipeline::{GovernancePipeline, ReviewModel};
use crate::pr::{PrHistory, PullRequest};
use rws_corpus::Corpus;
use rws_domain::DomainName;
use rws_engine::{EngineBackend, EngineContext};
use rws_model::{RwsSet, WellKnownFile};
use rws_net::{SiteHost, WELL_KNOWN_RWS_PATH};
use rws_stats::checkpoint::CheckpointSink;
use rws_stats::rng::{Rng, Xoshiro256StarStar};
use rws_stats::sampling::weighted_choice;
use rws_stats::timeseries::{Date, Month};
use serde::{Deserialize, Serialize};

/// Resumable state of a governance history replay: the submitter watermark
/// (tasks `0..watermark` are already replayed) plus every raw PR collected
/// so far, serialised through the vendored serde shim into a
/// [`CheckpointSink`]. Because submitters are independent (per-submitter
/// derived rng streams, submitter-slugged defect hosts), resuming from a
/// checkpoint on a freshly generated identical corpus produces a history
/// field-for-field equal to an uninterrupted replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryCheckpoint {
    /// The history seed the checkpoint belongs to.
    pub seed: u64,
    /// Number of submitter tasks already replayed.
    pub watermark: usize,
    /// Raw PRs collected so far (pre-sort, pre-renumber).
    pub prs: Vec<PullRequest>,
}

/// A deliberate mistake injected into a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubmissionDefect {
    /// The submitter has not yet published `.well-known` files on any
    /// member (by far the most common failure in Table 3).
    MissingWellKnown,
    /// An associated site is submitted as a subdomain rather than an eTLD+1.
    AssociatedNotEtldPlusOne,
    /// A service site is included that does not serve `X-Robots-Tag`.
    ServiceWithoutRobotsTag,
    /// A member's `.well-known` file names a different set.
    WellKnownMismatch,
    /// A ccTLD ("alias") member is submitted as a subdomain.
    AliasNotEtldPlusOne,
    /// The primary itself is submitted as a subdomain.
    PrimaryNotEtldPlusOne,
    /// One or more members lack a rationale.
    MissingRationale,
}

impl SubmissionDefect {
    /// All defect kinds with weights proportional to the *pull-request level*
    /// frequency implied by Table 3 (message counts divided by the typical
    /// number of messages a single defective submission of that kind emits).
    pub const WEIGHTED: &'static [(SubmissionDefect, f64)] = &[
        (SubmissionDefect::MissingWellKnown, 0.47),
        (SubmissionDefect::AssociatedNotEtldPlusOne, 0.20),
        (SubmissionDefect::ServiceWithoutRobotsTag, 0.09),
        (SubmissionDefect::WellKnownMismatch, 0.06),
        (SubmissionDefect::AliasNotEtldPlusOne, 0.05),
        (SubmissionDefect::PrimaryNotEtldPlusOne, 0.07),
        (SubmissionDefect::MissingRationale, 0.06),
    ];

    /// Draw a defect kind according to the calibrated weights.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> SubmissionDefect {
        let weights: Vec<f64> = Self::WEIGHTED.iter().map(|(_, w)| *w).collect();
        let idx = weighted_choice(&weights, rng).unwrap_or(0);
        Self::WEIGHTED[idx].0
    }
}

/// Configuration of the history generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistoryConfig {
    /// Seed for the submission process (independent of the corpus seed).
    pub seed: u64,
    /// First month PRs may be opened (the repository opened for submissions
    /// in early 2023).
    pub start: Month,
    /// Last month of the observation window (the paper cuts off at
    /// 2024-03-30).
    pub end: Month,
    /// Mean number of *failed* attempts a successful submitter makes before
    /// the attempt that lands (paper: 1.9 PRs per primary overall).
    pub mean_failed_attempts_per_success: f64,
    /// Number of additional would-be primaries that never produce a valid
    /// submission during the window.
    pub never_successful_primaries: usize,
    /// Mean attempts made by each never-successful primary.
    pub mean_attempts_per_failure: f64,
    /// Manual review behaviour.
    pub review: ReviewModel,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            seed: 0x6010_2024,
            start: Month::new(2023, 3),
            end: Month::new(2024, 3),
            mean_failed_attempts_per_success: 0.8,
            never_successful_primaries: 19,
            mean_attempts_per_failure: 1.6,
            review: ReviewModel::default(),
        }
    }
}

/// Generates a PR history for a corpus.
pub struct HistoryGenerator {
    config: HistoryConfig,
}

impl HistoryGenerator {
    /// Create a generator.
    pub fn new(config: HistoryConfig) -> HistoryGenerator {
        HistoryGenerator { config }
    }

    /// Generate the history for a corpus on a default (embedded-snapshot)
    /// context. Extra hosts needed by broken submissions (e.g. service
    /// sites without robots headers) are registered on the corpus's
    /// simulated web as a side effect, exactly as a real submitter would
    /// stand up half-configured infrastructure.
    pub fn generate(&self, corpus: &Corpus) -> PrHistory {
        self.generate_with(corpus, &EngineContext::embedded())
    }

    /// Generate the history, fanning the independent submitter replays out
    /// across the context's pool and sharing its site resolver with every
    /// validation bot. Output is identical whether the context is pooled or
    /// sequential (each submitter draws from an rng stream derived from its
    /// primary's name). Under a salvage [`SupervisionPolicy`] a panicking
    /// submitter replay is quarantined in the context's monitor and its PRs
    /// are dropped, instead of taking the whole history down.
    ///
    /// [`SupervisionPolicy`]: rws_engine::SupervisionPolicy
    pub fn generate_with<E: EngineBackend>(&self, corpus: &Corpus, ctx: &E) -> PrHistory {
        self.replay_loop(corpus, ctx, usize::MAX, None, 0, Vec::new())
    }

    /// Like [`generate_with`](Self::generate_with), but replaying the
    /// submitter tasks in windows of `every` and serialising a
    /// [`HistoryCheckpoint`] (submitter watermark + raw PRs so far) into
    /// `sink` after each window, so a killed run can continue from where it
    /// left off.
    pub fn generate_checkpointed<E: EngineBackend>(
        &self,
        corpus: &Corpus,
        ctx: &E,
        every: usize,
        sink: &dyn CheckpointSink,
    ) -> PrHistory {
        self.replay_loop(corpus, ctx, every, Some(sink), 0, Vec::new())
    }

    /// Continue a checkpointed replay from the sink's latest checkpoint
    /// (or from scratch on an empty sink) against a freshly generated
    /// identical corpus. The finished history is field-for-field equal to
    /// an uninterrupted [`generate_checkpointed`](Self::generate_checkpointed)
    /// run — property-tested by killing at every checkpoint boundary.
    pub fn resume_from<E: EngineBackend>(
        &self,
        corpus: &Corpus,
        ctx: &E,
        every: usize,
        sink: &dyn CheckpointSink,
    ) -> PrHistory {
        match sink.latest() {
            Some(value) => {
                let checkpoint = HistoryCheckpoint::deserialize(&value)
                    .expect("sink holds a valid history checkpoint");
                assert_eq!(
                    checkpoint.seed, self.config.seed,
                    "checkpoint belongs to a different history seed"
                );
                self.replay_loop(
                    corpus,
                    ctx,
                    every,
                    Some(sink),
                    checkpoint.watermark,
                    checkpoint.prs,
                )
            }
            None => self.replay_loop(corpus, ctx, every, Some(sink), 0, Vec::new()),
        }
    }

    /// The shared replay core: one unified task list (every set on the
    /// list, then every never-successful submitter), processed in windows
    /// of `every` tasks, each window one supervised sweep on the context.
    /// `start`/`prs` seed the loop when resuming from a checkpoint.
    fn replay_loop<E: EngineBackend>(
        &self,
        corpus: &Corpus,
        ctx: &E,
        every: usize,
        sink: Option<&dyn CheckpointSink>,
        start: usize,
        mut prs: Vec<PullRequest>,
    ) -> PrHistory {
        let cfg = self.config;
        let base = Xoshiro256StarStar::new(cfg.seed).derive("github-history");
        let web = corpus.web.clone();

        // Submission dates accelerate over the window, as in Figure 5: the
        // probability mass of opening dates is proportional to (1 + month
        // index), i.e. later months see more submissions.
        let months = cfg.start.range_inclusive(cfg.end);
        let month_weights: Vec<f64> = (0..months.len()).map(|i| 1.0 + i as f64).collect();
        let draw_date = |rng: &mut Xoshiro256StarStar| -> Date {
            let idx = weighted_choice(&month_weights, rng).unwrap_or(0);
            let month = months[idx];
            let day = rng.range_u64(1, month.days_in_month() as u64 + 1) as u8;
            Date::new(month.year, month.month, day)
        };

        let sets: Vec<&RwsSet> = corpus.list.sets().collect();
        let tasks: Vec<ReplayTask> = sets
            .iter()
            .map(|set| ReplayTask::Set(set))
            .chain((0..cfg.never_successful_primaries).map(ReplayTask::Hopeless))
            .collect();

        // One submitter's whole story, pure in `(config, corpus, task)`.
        let replay_one = |task: &ReplayTask| -> Vec<PullRequest> {
            match task {
                ReplayTask::Set(set) => {
                    let mut rng = base.derive(&format!("set:{}", set.primary()));
                    // Handle clone only: `SimulatedWeb` clones share one
                    // registry, so defect hosts land on the shared corpus web
                    // from every task concurrently. That is safe and
                    // deterministic because each submitter's hosts carry its
                    // unique primary in their names.
                    let mut web = web.clone();
                    let mut pipeline = GovernancePipeline::with_shared_resolver(
                        web.clone(),
                        cfg.review,
                        ctx.resolver().clone(),
                    );
                    let mut prs = Vec::new();
                    let failed_attempts =
                        rng.poisson(cfg.mean_failed_attempts_per_success) as usize;
                    let mut dates: Vec<Date> =
                        (0..=failed_attempts).map(|_| draw_date(&mut rng)).collect();
                    dates.sort();
                    // Failed attempts first, each with an injected defect.
                    for date in dates.iter().take(failed_attempts) {
                        let defect = SubmissionDefect::sample(&mut rng);
                        let broken = apply_defect(set, defect, &mut web, &mut rng);
                        prs.push(pipeline.process(&broken, *date, &mut rng));
                    }
                    // The final, correct attempt.
                    prs.push(pipeline.process(set, dates[failed_attempts], &mut rng));
                    prs
                }
                ReplayTask::Hopeless(i) => {
                    let mut rng = base.derive(&format!("hopeful:{i}"));
                    let mut pipeline = GovernancePipeline::with_shared_resolver(
                        web.clone(),
                        cfg.review,
                        ctx.resolver().clone(),
                    );
                    let primary = DomainName::parse(&format!("hopeful-submitter-{i}.com"))
                        .expect("generated primary is valid");
                    let mut set = RwsSet::for_primary(primary);
                    set.add_associated(
                        &format!("https://hopeful-partner-{i}.com"),
                        "claimed affiliation",
                    )
                    .expect("generated members are unique");
                    let attempts =
                        1 + rng.poisson((cfg.mean_attempts_per_failure - 1.0).max(0.0)) as usize;
                    // These submitters never stand up .well-known files (their
                    // domains are not even registered on the web), so every
                    // attempt fails the fetch check.
                    (0..attempts)
                        .map(|_| pipeline.process(&set, draw_date(&mut rng), &mut rng))
                        .collect()
                }
            }
        };

        let every = every.max(1);
        let mut next = start.min(tasks.len());
        while next < tasks.len() {
            let end = next.saturating_add(every).min(tasks.len());
            let window = &tasks[next..end];
            let (results, _sweep) =
                ctx.par_map_sweep_at("history", next, window, |_, task| replay_one(task));
            prs.extend(results.into_iter().flatten().flatten());
            next = end;
            if let Some(sink) = sink {
                sink.store(
                    HistoryCheckpoint {
                        seed: cfg.seed,
                        watermark: next,
                        prs: prs.clone(),
                    }
                    .serialize(),
                );
            }
        }

        // Deterministic global numbering: order every submitter's attempts
        // by (open date, primary, within-submitter sequence) and number
        // sequentially, exactly as the repository would have.
        prs.sort_by(|a, b| {
            (a.opened_at, a.primary.as_str(), a.number).cmp(&(
                b.opened_at,
                b.primary.as_str(),
                b.number,
            ))
        });
        for (index, pr) in prs.iter_mut().enumerate() {
            pr.number = index + 1;
        }
        PrHistory::new(prs)
    }
}

/// One independent submitter replay: a set from the corpus list (fumbles a
/// few times, then lands) or a never-successful hopeful submitter.
enum ReplayTask<'a> {
    Set(&'a RwsSet),
    Hopeless(usize),
}

/// Produce a broken variant of a valid set, and register any additional
/// hosts the broken variant needs on the web. Hosts the submitter stands up
/// carry the submitter's full primary in their name, so parallel submitter
/// replays never register colliding host names.
fn apply_defect<R: Rng + ?Sized>(
    set: &RwsSet,
    defect: SubmissionDefect,
    web: &mut rws_net::SimulatedWeb,
    rng: &mut R,
) -> RwsSet {
    let primary = set.primary().clone();
    // The full primary (dots folded to dashes) — primaries are unique per
    // set, so two submitters can never mint the same host name even when
    // their independent rng streams draw the same tag.
    let slug = primary.as_str().replace('.', "-");
    let tag = rng.range_u64(1000, 9999);
    match defect {
        SubmissionDefect::MissingWellKnown => {
            // Propose the right members plus one that serves nothing.
            let mut broken = set.clone();
            let _ = broken.add_associated(
                &format!("https://unconfigured-{slug}-{tag}.com"),
                "new property without a well-known file",
            );
            broken
        }
        SubmissionDefect::AssociatedNotEtldPlusOne => {
            let mut broken = set.clone();
            let _ = broken.add_associated(
                &format!("https://blog.{primary}"),
                "subdomain submitted by mistake",
            );
            broken
        }
        SubmissionDefect::ServiceWithoutRobotsTag => {
            let mut broken = set.clone();
            let service = format!("bare-service-{slug}-{tag}.com");
            let _ = broken.add_service(&format!("https://{service}"), "cdn without robots header");
            // The host exists and serves a correct well-known file, but no
            // X-Robots-Tag header.
            if let Ok(mut host) = SiteHost::new(&service) {
                host.add_page("/", "<html><body>cdn</body></html>");
                host.add_json(
                    WELL_KNOWN_RWS_PATH,
                    WellKnownFile::for_member(&primary).to_json_string(),
                );
                web.register(host);
            }
            broken
        }
        SubmissionDefect::WellKnownMismatch => {
            let mut broken = set.clone();
            let member = format!("misconfigured-{slug}-{tag}.com");
            let _ =
                broken.add_associated(&format!("https://{member}"), "points at the wrong primary");
            if let Ok(mut host) = SiteHost::new(&member) {
                host.add_page("/", "<html><body>misconfigured</body></html>");
                let other = DomainName::parse("somebody-else.com").expect("static domain is valid");
                host.add_json(
                    WELL_KNOWN_RWS_PATH,
                    WellKnownFile::for_member(&other).to_json_string(),
                );
                web.register(host);
            }
            broken
        }
        SubmissionDefect::AliasNotEtldPlusOne => {
            let mut broken = set.clone();
            let _ = broken.add_cctld_variants(
                &format!("https://{primary}"),
                &[&format!("https://www.{primary}")],
            );
            broken
        }
        SubmissionDefect::PrimaryNotEtldPlusOne => {
            // Re-root the whole submission under a subdomain of the primary.
            let mut broken = RwsSet::for_primary(
                DomainName::parse(&format!("www.{primary}")).expect("subdomain is valid"),
            );
            for member in set.associated_sites() {
                let _ = broken.add_associated(
                    &format!("https://{member}"),
                    set.rationale_for(member).unwrap_or("affiliated"),
                );
            }
            broken
        }
        SubmissionDefect::MissingRationale => {
            let mut broken = RwsSet::for_primary(primary);
            if let Some(contact) = set.contact() {
                broken.set_contact(contact);
            }
            for member in set.associated_sites() {
                let _ = broken.add_associated_without_rationale(&format!("https://{member}"));
            }
            for member in set.service_sites() {
                let _ = broken.add_service_without_rationale(&format!("https://{member}"));
            }
            // A set with no members at all cannot miss a rationale; make sure
            // there is at least one member to flag.
            if broken.size() == 1 {
                let _ = broken.add_associated_without_rationale(&format!(
                    "https://undocumented-{slug}-{tag}.com"
                ));
            }
            broken
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pr::PrState;
    use rws_corpus::{CorpusConfig, CorpusGenerator};

    fn small_history() -> (PrHistory, rws_corpus::Corpus) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(17)).generate();
        let history = HistoryGenerator::new(HistoryConfig {
            never_successful_primaries: 5,
            ..HistoryConfig::default()
        })
        .generate(&corpus);
        (history, corpus)
    }

    #[test]
    fn history_is_deterministic() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(17)).generate();
        let a = HistoryGenerator::new(HistoryConfig::default()).generate(&corpus);
        let corpus2 = CorpusGenerator::new(CorpusConfig::small(17)).generate();
        let b = HistoryGenerator::new(HistoryConfig::default()).generate(&corpus2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.count(PrState::Approved), b.count(PrState::Approved));
        assert_eq!(a.bot_message_counts(), b.bot_message_counts());
    }

    #[test]
    fn pooled_and_sequential_replays_are_identical() {
        let generator = HistoryGenerator::new(HistoryConfig {
            never_successful_primaries: 7,
            ..HistoryConfig::default()
        });
        let ctx = EngineContext::embedded();
        let corpus_a = CorpusGenerator::new(CorpusConfig::small(29)).generate_with(&ctx);
        let pooled = generator.generate_with(&corpus_a, &ctx);
        let corpus_b =
            CorpusGenerator::new(CorpusConfig::small(29)).generate_with(&ctx.sequential_twin());
        let sequential = generator.generate_with(&corpus_b, &ctx.sequential_twin());
        // Full structural equality: same PRs, same numbers, same reports.
        assert_eq!(pooled, sequential);
    }

    #[test]
    fn pr_numbers_are_sequential_in_open_order() {
        let (history, _) = small_history();
        let numbers: Vec<usize> = history.prs().iter().map(|pr| pr.number).collect();
        assert_eq!(numbers, (1..=history.len()).collect::<Vec<_>>());
    }

    #[test]
    fn most_corpus_sets_eventually_land() {
        // Sets whose members are all live and whose final attempt is not hit
        // by the small manual-rejection probability get approved; offline
        // members legitimately keep some sets out, as on the real list.
        let (history, corpus) = small_history();
        let approved_primaries: std::collections::BTreeSet<_> = history
            .prs()
            .iter()
            .filter(|pr| pr.state == PrState::Approved)
            .map(|pr| pr.primary.clone())
            .collect();
        let landed = corpus
            .list
            .sets()
            .filter(|set| approved_primaries.contains(set.primary()))
            .count();
        assert!(
            landed * 2 > corpus.list.set_count(),
            "only {landed} of {} sets ever approved",
            corpus.list.set_count()
        );
        // And every approved PR belongs to a real corpus set (the
        // never-successful submitters are all rejected).
        for primary in &approved_primaries {
            assert!(corpus.list.set_with_primary(primary).is_some());
        }
    }

    #[test]
    fn never_successful_primaries_never_land() {
        let (history, _) = small_history();
        for pr in history.prs() {
            if pr.primary.as_str().starts_with("hopeful-submitter-") {
                assert_eq!(pr.state, PrState::Closed);
                assert!(pr
                    .bot_messages()
                    .iter()
                    .all(|m| *m == "Unable to fetch .well-known JSON file"));
            }
        }
    }

    #[test]
    fn dates_fall_inside_window() {
        let (history, _) = small_history();
        let start = Date::new(2023, 3, 1);
        for pr in history.prs() {
            assert!(
                pr.opened_at >= start,
                "{} opened before window",
                pr.opened_at
            );
            assert!(pr.resolved_at >= pr.opened_at);
            assert!(pr.opened_at.month_of() <= Month::new(2024, 3));
        }
    }

    #[test]
    fn rejection_rate_and_bot_messages_have_paper_shape() {
        let corpus = CorpusGenerator::new(CorpusConfig::default()).generate();
        let history = HistoryGenerator::new(HistoryConfig::default()).generate(&corpus);
        // Rough shape checks against the paper: a majority-ish of PRs closed
        // without merging, ~2 PRs per distinct primary, and the most common
        // bot message is the .well-known fetch failure.
        assert!(history.len() >= 60, "history has {} PRs", history.len());
        let rejection = history.rejection_rate();
        assert!(
            (0.30..0.75).contains(&rejection),
            "rejection rate {rejection} far from the paper's 0.588"
        );
        let per_primary = history.mean_prs_per_primary();
        assert!(
            (1.2..3.0).contains(&per_primary),
            "mean PRs per primary {per_primary} far from the paper's 1.9"
        );
        let counts = history.bot_message_counts();
        let top = counts.sorted_by_count();
        assert_eq!(
            top.first().map(|(m, _)| m.as_str()),
            Some("Unable to fetch .well-known JSON file"),
            "most common message should be the well-known fetch failure: {top:?}"
        );
        // Unsuccessful PRs skew towards same-day closure.
        assert!(history.same_day_fraction(PrState::Closed) > 0.3);
        // Approved PRs take several days of manual review.
        let approved_days = history.days_to_process(PrState::Approved);
        let median = rws_stats::median(&approved_days).unwrap();
        assert!(
            (2.0..=12.0).contains(&median),
            "median approval days {median}"
        );
    }

    #[test]
    fn defect_sampling_covers_all_kinds() {
        let mut rng = Xoshiro256StarStar::new(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            seen.insert(format!("{:?}", SubmissionDefect::sample(&mut rng)));
        }
        assert_eq!(seen.len(), SubmissionDefect::WEIGHTED.len());
    }

    #[test]
    fn checkpointed_replay_matches_the_uninterrupted_one() {
        let generator = HistoryGenerator::new(HistoryConfig {
            never_successful_primaries: 6,
            ..HistoryConfig::default()
        });
        let ctx = EngineContext::embedded();
        let corpus = CorpusGenerator::new(CorpusConfig::small(31)).generate_with(&ctx);
        let plain = generator.generate_with(&corpus, &ctx);
        for every in [1, 3, 7, usize::MAX] {
            let sink = rws_stats::MemorySink::new();
            let corpus2 =
                CorpusGenerator::new(CorpusConfig::small(31)).generate_with(&ctx.sequential_twin());
            let checkpointed =
                generator.generate_checkpointed(&corpus2, &ctx.sequential_twin(), every, &sink);
            assert_eq!(checkpointed, plain, "window size {every} diverged");
            assert!(sink.count() >= 1);
        }
    }

    #[test]
    fn resume_from_every_checkpoint_boundary_matches_uninterrupted() {
        let generator = HistoryGenerator::new(HistoryConfig {
            never_successful_primaries: 4,
            ..HistoryConfig::default()
        });
        let ctx = EngineContext::embedded();
        let corpus = CorpusGenerator::new(CorpusConfig::small(37)).generate_with(&ctx);
        let every = 5;
        let full_sink = rws_stats::MemorySink::new();
        let uninterrupted = generator.generate_checkpointed(&corpus, &ctx, every, &full_sink);
        // Kill the run right after each checkpoint (including "before any
        // checkpoint" via keep = 0) and resume from the surviving prefix.
        for keep in 0..=full_sink.count() {
            let sink = full_sink.truncated(keep);
            let corpus2 = CorpusGenerator::new(CorpusConfig::small(37)).generate_with(&ctx);
            let resumed = generator.resume_from(&corpus2, &ctx, every, &sink);
            assert_eq!(
                resumed, uninterrupted,
                "resume after checkpoint {keep} diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "different history seed")]
    fn resume_rejects_a_checkpoint_from_another_seed() {
        let ctx = EngineContext::sequential();
        let corpus = CorpusGenerator::new(CorpusConfig::small(17)).generate();
        let sink = rws_stats::MemorySink::new();
        sink.store(
            HistoryCheckpoint {
                seed: 999,
                watermark: 1,
                prs: Vec::new(),
            }
            .serialize(),
        );
        HistoryGenerator::new(HistoryConfig::default()).resume_from(&corpus, &ctx, 5, &sink);
    }
}
