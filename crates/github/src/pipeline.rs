//! The governance pipeline: CLA check, validation bot, manual review.

use crate::pr::{PrState, PullRequest};
use rws_model::{RwsSet, SetValidator};
use rws_net::SimulatedWeb;
use rws_stats::rng::Rng;
use rws_stats::timeseries::Date;
use serde::{Deserialize, Serialize};

/// Parameters of the maintainers' manual-review behaviour.
///
/// The paper observes that approved PRs take a median of 5 days (driven by
/// manual review — only 1 of 47 merged PRs failed any automated check),
/// while 54.3% of unsuccessful PRs are closed the same day (submitters close
/// them after reading the bot's output), with a long tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReviewModel {
    /// Median days of manual review before a clean submission is merged.
    pub median_approval_days: f64,
    /// Dispersion (log-normal sigma) of approval review times.
    pub approval_sigma: f64,
    /// Probability that a failed submission is closed on the day it was
    /// opened.
    pub same_day_close_probability: f64,
    /// Mean of the (exponential) tail of days before a failed submission is
    /// eventually closed when it is not closed the same day.
    pub slow_close_mean_days: f64,
    /// Probability a submitter has completed the CLA before submitting.
    pub cla_signed_probability: f64,
    /// Probability the maintainers reject a submission even though the
    /// automated checks pass (policy-level rejections).
    pub manual_rejection_probability: f64,
}

impl Default for ReviewModel {
    fn default() -> Self {
        ReviewModel {
            median_approval_days: 5.0,
            approval_sigma: 0.6,
            same_day_close_probability: 0.543,
            slow_close_mean_days: 9.0,
            cla_signed_probability: 0.97,
            manual_rejection_probability: 0.03,
        }
    }
}

/// The full pipeline a submission passes through.
pub struct GovernancePipeline {
    validator: SetValidator,
    review: ReviewModel,
    next_number: usize,
}

impl GovernancePipeline {
    /// Create a pipeline whose validation bot fetches from the given web.
    pub fn new(web: SimulatedWeb) -> GovernancePipeline {
        GovernancePipeline::with_review_model(web, ReviewModel::default())
    }

    /// Create a pipeline with an explicit review model.
    pub fn with_review_model(web: SimulatedWeb, review: ReviewModel) -> GovernancePipeline {
        GovernancePipeline {
            validator: SetValidator::new(web),
            review,
            next_number: 1,
        }
    }

    /// Create a pipeline whose validation bot shares an existing memoizing
    /// site resolver (see [`SetValidator::with_resolver`]).
    pub fn with_shared_resolver(
        web: SimulatedWeb,
        review: ReviewModel,
        resolver: rws_domain::SiteResolver,
    ) -> GovernancePipeline {
        GovernancePipeline {
            validator: SetValidator::with_resolver(web, Default::default(), resolver),
            review,
            next_number: 1,
        }
    }

    /// The review model in force.
    pub fn review_model(&self) -> ReviewModel {
        self.review
    }

    /// Process one submission opened on `opened_at`, producing the resolved
    /// pull-request record.
    pub fn process<R: Rng + ?Sized>(
        &mut self,
        set: &RwsSet,
        opened_at: Date,
        rng: &mut R,
    ) -> PullRequest {
        let number = self.next_number;
        self.next_number += 1;
        let cla_signed = rng.chance(self.review.cla_signed_probability);
        if !cla_signed {
            // Validation never runs without a CLA; submitters usually close
            // quickly once the CLA bot tells them.
            let delay = rng.geometric_capped(0.5, 10) as i64;
            return PullRequest {
                number,
                primary: set.primary().clone(),
                opened_at,
                resolved_at: opened_at.plus_days(delay),
                state: PrState::Closed,
                cla_signed,
                validation: None,
            };
        }

        let report = self.validator.validate(set);
        let passes = report.passed();
        let manual_reject = rng.chance(self.review.manual_rejection_probability);

        let (state, delay_days) = if passes && !manual_reject {
            // Clean submission: merged after manual review.
            let mu = self.review.median_approval_days.max(0.5).ln();
            let days = rng
                .log_normal(mu, self.review.approval_sigma)
                .round()
                .max(1.0);
            (PrState::Approved, days as i64)
        } else if passes && manual_reject {
            // Maintainers rejected a technically-clean submission; these take
            // about as long as approvals to resolve.
            let mu = self.review.median_approval_days.max(0.5).ln();
            let days = rng
                .log_normal(mu, self.review.approval_sigma)
                .round()
                .max(1.0);
            (PrState::Closed, days as i64)
        } else {
            // Bot-rejected: usually closed the same day, sometimes lingering.
            if rng.chance(self.review.same_day_close_probability) {
                (PrState::Closed, 0)
            } else {
                let days = rng
                    .exponential(1.0 / self.review.slow_close_mean_days)
                    .ceil() as i64;
                (PrState::Closed, days.clamp(1, 50))
            }
        };

        PullRequest {
            number,
            primary: set.primary().clone(),
            opened_at,
            resolved_at: opened_at.plus_days(delay_days),
            state,
            cla_signed,
            validation: Some(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_domain::DomainName;
    use rws_model::WellKnownFile;
    use rws_net::{SiteHost, WELL_KNOWN_RWS_PATH};
    use rws_stats::rng::Xoshiro256StarStar;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn valid_set_and_web() -> (RwsSet, SimulatedWeb) {
        let mut set = RwsSet::new("https://alpha-news.com").unwrap();
        set.add_associated("https://alpha-sports.com", "sister brand")
            .unwrap();
        let mut web = SimulatedWeb::new();
        for domain in ["alpha-news.com", "alpha-sports.com"] {
            let d = dn(domain);
            let mut host = SiteHost::new(domain).unwrap();
            host.add_page("/", "<html></html>");
            let wk = if d == *set.primary() {
                WellKnownFile::for_primary(&set)
            } else {
                WellKnownFile::for_member(set.primary())
            };
            host.add_json(WELL_KNOWN_RWS_PATH, wk.to_json_string());
            web.register(host);
        }
        (set, web)
    }

    #[test]
    fn clean_submission_is_usually_approved_after_review() {
        let (set, web) = valid_set_and_web();
        let mut pipeline = GovernancePipeline::with_review_model(
            web,
            ReviewModel {
                manual_rejection_probability: 0.0,
                cla_signed_probability: 1.0,
                ..ReviewModel::default()
            },
        );
        let mut rng = Xoshiro256StarStar::new(1);
        let pr = pipeline.process(&set, Date::new(2023, 6, 1), &mut rng);
        assert_eq!(pr.state, PrState::Approved);
        assert!(pr.cla_signed);
        assert!(
            pr.days_to_process() >= 1,
            "manual review takes at least a day"
        );
        assert!(pr.validation.unwrap().passed());
    }

    #[test]
    fn broken_submission_is_closed_with_bot_messages() {
        let (mut set, web) = valid_set_and_web();
        // Add a member that does not exist on the web at all.
        set.add_associated("https://missing-member.com", "oops")
            .unwrap();
        let mut pipeline = GovernancePipeline::with_review_model(
            web,
            ReviewModel {
                cla_signed_probability: 1.0,
                ..ReviewModel::default()
            },
        );
        let mut rng = Xoshiro256StarStar::new(2);
        let pr = pipeline.process(&set, Date::new(2023, 7, 1), &mut rng);
        assert_eq!(pr.state, PrState::Closed);
        assert!(pr
            .bot_messages()
            .contains(&"Unable to fetch .well-known JSON file"));
    }

    #[test]
    fn unsigned_cla_blocks_validation() {
        let (set, web) = valid_set_and_web();
        let mut pipeline = GovernancePipeline::with_review_model(
            web,
            ReviewModel {
                cla_signed_probability: 0.0,
                ..ReviewModel::default()
            },
        );
        let mut rng = Xoshiro256StarStar::new(3);
        let pr = pipeline.process(&set, Date::new(2023, 8, 1), &mut rng);
        assert_eq!(pr.state, PrState::Closed);
        assert!(!pr.cla_signed);
        assert!(pr.validation.is_none());
        assert!(pr.bot_messages().is_empty());
    }

    #[test]
    fn pr_numbers_increment() {
        let (set, web) = valid_set_and_web();
        let mut pipeline = GovernancePipeline::new(web);
        let mut rng = Xoshiro256StarStar::new(4);
        let a = pipeline.process(&set, Date::new(2023, 6, 1), &mut rng);
        let b = pipeline.process(&set, Date::new(2023, 6, 2), &mut rng);
        assert_eq!(a.number + 1, b.number);
    }

    #[test]
    fn rejected_submissions_often_close_same_day() {
        let (mut set, web) = valid_set_and_web();
        set.add_associated("https://never-registered.com", "broken")
            .unwrap();
        let mut pipeline = GovernancePipeline::with_review_model(
            web,
            ReviewModel {
                cla_signed_probability: 1.0,
                ..ReviewModel::default()
            },
        );
        let mut rng = Xoshiro256StarStar::new(5);
        let mut same_day = 0usize;
        let total = 200;
        for i in 0..total {
            let pr = pipeline.process(
                &set,
                Date::new(2023, 6, 1).plus_days(i as i64 % 200),
                &mut rng,
            );
            assert_eq!(pr.state, PrState::Closed);
            if pr.days_to_process() == 0 {
                same_day += 1;
            }
        }
        let fraction = same_day as f64 / total as f64;
        assert!(
            (0.40..0.70).contains(&fraction),
            "same-day close fraction {fraction} should be near 0.543"
        );
    }
}
