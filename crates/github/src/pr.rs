//! Pull-request records and history-level aggregations.

use rws_domain::DomainName;
use rws_model::ValidationReport;
use rws_stats::histogram::CategoryCounter;
use rws_stats::timeseries::{Date, Month, MonthlySeries};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Final state of a pull request that proposes a new set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrState {
    /// Approved and merged into the list.
    Approved,
    /// Closed without being merged.
    Closed,
}

impl PrState {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PrState::Approved => "Approved",
            PrState::Closed => "Closed (without being merged)",
        }
    }
}

/// One pull request proposing a new Related Website Set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PullRequest {
    /// Sequential PR number.
    pub number: usize,
    /// The primary of the proposed set.
    pub primary: DomainName,
    /// When the PR was opened.
    pub opened_at: Date,
    /// When it reached its final state.
    pub resolved_at: Date,
    /// Final state.
    pub state: PrState,
    /// Whether the contributor had signed the CLA (a failed CLA check blocks
    /// validation entirely).
    pub cla_signed: bool,
    /// The validation bot's report for the submission, if validation ran.
    pub validation: Option<ValidationReport>,
}

impl PullRequest {
    /// Whole days from opening to resolution — the x-axis of Figure 6.
    pub fn days_to_process(&self) -> i64 {
        self.opened_at.days_until(self.resolved_at)
    }

    /// The bot messages this PR received (empty when validation did not run
    /// or found nothing).
    pub fn bot_messages(&self) -> Vec<&'static str> {
        self.validation
            .as_ref()
            .map(|v| v.bot_messages())
            .unwrap_or_default()
    }
}

/// A full PR history for the repository.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrHistory {
    prs: Vec<PullRequest>,
}

impl PrHistory {
    /// Create a history from PRs (kept in opened-at order).
    pub fn new(mut prs: Vec<PullRequest>) -> PrHistory {
        prs.sort_by_key(|pr| (pr.opened_at, pr.number));
        PrHistory { prs }
    }

    /// Every PR, in opened order.
    pub fn prs(&self) -> &[PullRequest] {
        &self.prs
    }

    /// Total number of PRs.
    pub fn len(&self) -> usize {
        self.prs.len()
    }

    /// True if the history has no PRs.
    pub fn is_empty(&self) -> bool {
        self.prs.is_empty()
    }

    /// Number of PRs in the given final state.
    pub fn count(&self, state: PrState) -> usize {
        self.prs.iter().filter(|pr| pr.state == state).count()
    }

    /// Fraction of PRs closed without being merged (paper: 58.8%).
    pub fn rejection_rate(&self) -> f64 {
        if self.prs.is_empty() {
            return 0.0;
        }
        self.count(PrState::Closed) as f64 / self.prs.len() as f64
    }

    /// Number of distinct set primaries across the history (paper: 60).
    pub fn distinct_primaries(&self) -> usize {
        self.prs
            .iter()
            .map(|pr| pr.primary.clone())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Mean PRs per distinct primary (paper: 1.9).
    pub fn mean_prs_per_primary(&self) -> f64 {
        let distinct = self.distinct_primaries();
        if distinct == 0 {
            return 0.0;
        }
        self.prs.len() as f64 / distinct as f64
    }

    /// Per-month count of PRs opened, split by final state — the input to
    /// the cumulative plot of Figure 5.
    pub fn monthly_by_state(&self, start: Month, end: Month) -> (MonthlySeries, MonthlySeries) {
        let mut approved = MonthlySeries::zeros(start, end);
        let mut closed = MonthlySeries::zeros(start, end);
        for pr in &self.prs {
            let month = pr.opened_at.month_of();
            match pr.state {
                PrState::Approved => approved.add(month, 1.0),
                PrState::Closed => closed.add(month, 1.0),
            };
        }
        (approved, closed)
    }

    /// Cumulative PR counts by month, split by final state (Figure 5).
    pub fn cumulative_by_state(&self, start: Month, end: Month) -> (MonthlySeries, MonthlySeries) {
        let (approved, closed) = self.monthly_by_state(start, end);
        (approved.cumulative(), closed.cumulative())
    }

    /// Days-to-process samples for PRs in the given state (Figure 6).
    pub fn days_to_process(&self, state: PrState) -> Vec<f64> {
        self.prs
            .iter()
            .filter(|pr| pr.state == state)
            .map(|pr| pr.days_to_process() as f64)
            .collect()
    }

    /// Fraction of PRs in `state` resolved on the day they were opened
    /// (paper: 54.3% of unsuccessful PRs).
    pub fn same_day_fraction(&self, state: PrState) -> f64 {
        let days = self.days_to_process(state);
        if days.is_empty() {
            return 0.0;
        }
        days.iter().filter(|&&d| d < 1.0).count() as f64 / days.len() as f64
    }

    /// Counts of every bot validation message across the history (Table 3).
    pub fn bot_message_counts(&self) -> CategoryCounter {
        let mut counter = CategoryCounter::new();
        for pr in &self.prs {
            for message in pr.bot_messages() {
                counter.record(message);
            }
        }
        counter
    }

    /// PRs whose validation passed every automated check.
    pub fn fully_clean(&self) -> usize {
        self.prs
            .iter()
            .filter(|pr| pr.validation.as_ref().map(|v| v.passed()).unwrap_or(false))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_model::{ValidationIssue, ValidationOutcome};

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn pr(
        number: usize,
        primary: &str,
        opened: &str,
        resolved: &str,
        state: PrState,
        issues: Vec<ValidationIssue>,
    ) -> PullRequest {
        let outcome = if issues.is_empty() {
            ValidationOutcome::Passed
        } else {
            ValidationOutcome::Failed
        };
        PullRequest {
            number,
            primary: dn(primary),
            opened_at: Date::parse(opened).unwrap(),
            resolved_at: Date::parse(resolved).unwrap(),
            state,
            cla_signed: true,
            validation: Some(ValidationReport {
                primary: dn(primary),
                outcome,
                issues,
                fetches: 0,
            }),
        }
    }

    fn sample_history() -> PrHistory {
        PrHistory::new(vec![
            pr(
                1,
                "alpha.com",
                "2023-03-05",
                "2023-03-10",
                PrState::Approved,
                vec![],
            ),
            pr(
                2,
                "beta.com",
                "2023-05-01",
                "2023-05-01",
                PrState::Closed,
                vec![ValidationIssue::WellKnownUnfetchable {
                    site: dn("beta.com"),
                    detail: "host not found".into(),
                }],
            ),
            pr(
                3,
                "beta.com",
                "2023-06-02",
                "2023-06-09",
                PrState::Approved,
                vec![],
            ),
            pr(
                4,
                "gamma.com",
                "2024-01-10",
                "2024-01-25",
                PrState::Closed,
                vec![
                    ValidationIssue::AssociatedSiteNotEtldPlusOne {
                        site: dn("sub.gamma.com"),
                    },
                    ValidationIssue::WellKnownUnfetchable {
                        site: dn("gamma.com"),
                        detail: "404".into(),
                    },
                ],
            ),
        ])
    }

    #[test]
    fn counts_and_rates() {
        let h = sample_history();
        assert_eq!(h.len(), 4);
        assert_eq!(h.count(PrState::Approved), 2);
        assert_eq!(h.count(PrState::Closed), 2);
        assert!((h.rejection_rate() - 0.5).abs() < 1e-12);
        assert_eq!(h.distinct_primaries(), 3);
        assert!((h.mean_prs_per_primary() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.fully_clean(), 2);
    }

    #[test]
    fn days_to_process_and_same_day() {
        let h = sample_history();
        let approved = h.days_to_process(PrState::Approved);
        assert_eq!(approved, vec![5.0, 7.0]);
        let closed = h.days_to_process(PrState::Closed);
        assert_eq!(closed, vec![0.0, 15.0]);
        assert!((h.same_day_fraction(PrState::Closed) - 0.5).abs() < 1e-12);
        assert_eq!(h.same_day_fraction(PrState::Approved), 0.0);
    }

    #[test]
    fn monthly_and_cumulative_series() {
        let h = sample_history();
        let start = Month::new(2023, 3);
        let end = Month::new(2024, 3);
        let (approved, closed) = h.cumulative_by_state(start, end);
        // Cumulative approved reaches 2 by 2023-06 and stays there.
        assert_eq!(approved.get(Month::new(2023, 3)), Some(1.0));
        assert_eq!(approved.get(Month::new(2023, 6)), Some(2.0));
        assert_eq!(approved.get(Month::new(2024, 3)), Some(2.0));
        assert_eq!(closed.get(Month::new(2024, 3)), Some(2.0));
        // Monotone non-decreasing.
        let values: Vec<f64> = approved.iter().map(|(_, v)| v).collect();
        assert!(values.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn bot_message_counts_match_issues() {
        let h = sample_history();
        let counts = h.bot_message_counts();
        assert_eq!(counts.get("Unable to fetch .well-known JSON file"), 2);
        assert_eq!(counts.get("Associated site isn't an eTLD+1"), 1);
        assert_eq!(counts.total(), 3);
    }

    #[test]
    fn history_sorted_by_open_date() {
        let h = sample_history();
        let opened: Vec<Date> = h.prs().iter().map(|p| p.opened_at).collect();
        assert!(opened.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_history_edge_cases() {
        let h = PrHistory::default();
        assert!(h.is_empty());
        assert_eq!(h.rejection_rate(), 0.0);
        assert_eq!(h.mean_prs_per_primary(), 0.0);
        assert_eq!(h.same_day_fraction(PrState::Closed), 0.0);
        assert_eq!(h.bot_message_counts().total(), 0);
    }
}
