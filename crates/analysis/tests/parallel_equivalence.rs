//! Parallel-vs-sequential equivalence gates for the staged pipeline.
//!
//! The engine's whole contract is that pooling changes wall-clock time and
//! nothing else: `Scenario::generate` on the pooled pipeline must equal the
//! sequential path **field by field** across seeds, and `run_all` must
//! return the same reports in the same order. These tests are the gate the
//! EngineContext refactor ships behind.

use proptest::prelude::*;
use rws_analysis::{PaperReproduction, Scenario, ScenarioConfig};
use rws_engine::EngineBackend;
use rws_engine::EngineContext;

/// Field-by-field equality between two scenarios. `Corpus` holds the
/// simulated web (no `PartialEq`), so the corpus is compared through its
/// deterministic projections: the list, the site table, the Tranco ranking,
/// the rendered pages and the registered hosts (including the defect hosts
/// the history replay stood up).
fn assert_scenarios_identical(a: &Scenario, b: &Scenario) {
    assert_eq!(a.config, b.config, "config");
    assert_eq!(a.corpus.list, b.corpus.list, "corpus.list");
    assert_eq!(
        a.corpus.sites.keys().collect::<Vec<_>>(),
        b.corpus.sites.keys().collect::<Vec<_>>(),
        "corpus.sites keys"
    );
    let tranco = |s: &Scenario| {
        s.corpus
            .tranco
            .iter()
            .map(|e| e.domain.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(tranco(a), tranco(b), "corpus.tranco");
    assert_eq!(
        a.corpus.web.hosts(),
        b.corpus.web.hosts(),
        "corpus.web hosts (incl. defect-host side effects)"
    );
    for domain in a.corpus.list.all_domains().iter().take(8) {
        assert_eq!(
            a.corpus.html_of(domain),
            b.corpus.html_of(domain),
            "html of {domain}"
        );
    }
    assert_eq!(a.categories, b.categories, "categories");
    assert_eq!(a.history, b.history, "history");
    assert_eq!(a.pairs, b.pairs, "pairs");
    assert_eq!(a.survey, b.survey, "survey");
    assert_eq!(a.snapshots, b.snapshots, "snapshots");
    assert_eq!(a.latest_list(), b.latest_list(), "latest list");
}

proptest! {
    /// The pooled staged pipeline equals the sequential oracle on the
    /// corpus + history layers for arbitrary seeds (cheap enough to run
    /// under proptest's case count; the full scenario equality runs over a
    /// fixed seed panel below).
    #[test]
    fn corpus_and_history_match_sequential(seed in 0u64..1_000_000) {
        use rws_corpus::{CorpusConfig, CorpusGenerator};
        use rws_github::{HistoryConfig, HistoryGenerator};

        let pooled_ctx = EngineContext::new();
        let sequential_ctx = pooled_ctx.sequential_twin();
        let generator = CorpusGenerator::new(CorpusConfig {
            organisations: 6,
            top_sites: 40,
            ..CorpusConfig::small(seed)
        });
        let corpus_pooled = generator.generate_with(&pooled_ctx);
        let corpus_sequential = generator.generate_with(&sequential_ctx);
        prop_assert_eq!(&corpus_pooled.list, &corpus_sequential.list);
        prop_assert_eq!(corpus_pooled.web.hosts(), corpus_sequential.web.hosts());

        let history = HistoryGenerator::new(HistoryConfig {
            seed: seed ^ 0xF00D,
            never_successful_primaries: 4,
            ..HistoryConfig::default()
        });
        let pooled = history.generate_with(&corpus_pooled, &pooled_ctx);
        let sequential = history.generate_with(&corpus_sequential, &sequential_ctx);
        prop_assert_eq!(pooled, sequential);
    }
}

#[test]
fn scenario_generate_matches_sequential_across_seeds() {
    for seed in [3u64, 17, 61, 2024] {
        let config = ScenarioConfig::small(seed);
        let pooled = Scenario::generate_with(config, &EngineContext::new());
        let sequential = Scenario::generate_sequential(config);
        assert_scenarios_identical(&pooled, &sequential);
    }
}

#[test]
fn run_all_reports_match_sequential_in_order_and_content() {
    let config = ScenarioConfig::small(61);
    let pooled = PaperReproduction::with_engine(config, EngineContext::new());
    let sequential = PaperReproduction::with_engine(config, EngineContext::sequential());
    let pooled_reports = pooled.run_all();
    let sequential_reports = sequential.run_all();
    assert_eq!(pooled_reports.len(), 12);
    assert_eq!(pooled_reports, sequential_reports);
    // And re-running on the same reproduction is stable (shared scenario).
    assert_eq!(pooled.run_all(), pooled_reports);
    assert_eq!(pooled.render_all(), sequential.render_all());
}

#[test]
fn scenario_engine_resolver_is_shared_and_warm() {
    let ctx = EngineContext::new();
    let scenario = Scenario::generate_with(ScenarioConfig::small(5), &ctx);
    // Generation resolved corpus hosts through the shared resolver: the
    // memo table must already hold entries and have answered repeats.
    let stats = scenario.engine.resolver().stats();
    assert!(stats.misses > 0, "stats {stats:?}");
    assert!(stats.hits > 0, "stats {stats:?}");
    assert!(scenario.engine.resolver().cached_hosts() > 0);
}
