//! Survey experiments: Tables 1–2, Figures 1–2.

use crate::experiments::Experiment;
use crate::report::{count_with_pct, count_with_seconds, Report, Series, TextTable};
use crate::scenario::Scenario;
use rws_survey::SurveyAnalysis;

fn analysis(scenario: &Scenario) -> SurveyAnalysis {
    SurveyAnalysis::analyse(&scenario.survey)
}

/// Table 1: per-group counts of related/unrelated verdicts with mean times.
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }

    fn title(&self) -> &'static str {
        "Website relatedness survey results summary"
    }

    fn paper_reference(&self) -> &'static str {
        "RWS (same set): 72 related (28.1s) / 42 unrelated (39.4s); RWS (other set): 5 / 100; \
         Top Site (same category): 8 / 104; Top Site (other category): 7 / 92"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let analysis = analysis(scenario);
        let mut report = Report::new(self.id(), self.title());
        let mut table = TextTable::new(vec!["Category", "Related", "Unrelated"]);
        for summary in &analysis.group_summaries {
            table.add_row(vec![
                summary.group.label().to_string(),
                count_with_seconds(summary.related_count, summary.related_mean_seconds),
                count_with_seconds(summary.unrelated_count, summary.unrelated_mean_seconds),
            ]);
        }
        report.add_table("table1", table);
        report.add_note(format!("total responses: {}", analysis.total_responses));
        report.add_note(format!(
            "participants with >=1 privacy-harming error: {} of {} ({:.1}%)",
            analysis.harmed_participants.0,
            analysis.harmed_participants.1,
            100.0 * analysis.harmed_participant_rate()
        ));
        report.add_note(format!("paper reference: {}", self.paper_reference()));
        report
    }
}

/// Table 2: the factors participants report using.
pub struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }

    fn title(&self) -> &'static str {
        "Factors used to determine relatedness and unrelatedness"
    }

    fn paper_reference(&self) -> &'static str {
        "21 respondents; branding elements most used for relatedness (66.7%), domain name 57.1%"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let analysis = analysis(scenario);
        let mut report = Report::new(self.id(), self.title());
        let respondents = analysis.factors.respondents.max(1);
        let mut table = TextTable::new(vec!["Factor used", "Related", "Unrelated"]);
        for (factor, related, unrelated) in &analysis.factors.rows {
            table.add_row(vec![
                factor.label().to_string(),
                count_with_pct(*related, respondents),
                count_with_pct(*unrelated, respondents),
            ]);
        }
        report.add_table("table2", table);
        report.add_note(format!(
            "factor questionnaire respondents: {}",
            analysis.factors.respondents
        ));
        report.add_note(format!("paper reference: {}", self.paper_reference()));
        report
    }
}

/// Figure 1: the relatedness confusion matrix.
pub struct Figure1;

impl Experiment for Figure1 {
    fn id(&self) -> &'static str {
        "figure1"
    }

    fn title(&self) -> &'static str {
        "Website relatedness survey results matrix"
    }

    fn paper_reference(&self) -> &'static str {
        "expected related: 72 (63.2%) related / 42 (36.8%) unrelated; \
         expected unrelated: 20 (6.3%) related / 296 (93.7%) unrelated"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let analysis = analysis(scenario);
        let confusion = analysis.confusion;
        let mut report = Report::new(self.id(), self.title());
        let related_total = confusion.related_related + confusion.related_unrelated;
        let unrelated_total = confusion.unrelated_related + confusion.unrelated_unrelated;
        let mut table = TextTable::new(vec!["Expected \\ Actual", "Related", "Unrelated"]);
        table.add_row(vec![
            "Related".to_string(),
            count_with_pct(confusion.related_related, related_total),
            count_with_pct(confusion.related_unrelated, related_total),
        ]);
        table.add_row(vec![
            "Unrelated".to_string(),
            count_with_pct(confusion.unrelated_related, unrelated_total),
            count_with_pct(confusion.unrelated_unrelated, unrelated_total),
        ]);
        report.add_table("confusion", table);
        report.add_note(format!(
            "privacy-harming rate (expected related, answered unrelated): {:.1}% (paper: 36.8%)",
            100.0 * confusion.privacy_harming_rate()
        ));
        report.add_note(format!(
            "correct-unrelated rate: {:.1}% (paper: 93.7%)",
            100.0 * confusion.correct_unrelated_rate()
        ));
        report
    }
}

/// Figure 2: response-time CDFs for the RWS (same set) group, split by
/// verdict, with the KS test between them.
pub struct Figure2;

impl Experiment for Figure2 {
    fn id(&self) -> &'static str {
        "figure2"
    }

    fn title(&self) -> &'static str {
        "Survey timing distributions for RWS (same set) pairs, split by response"
    }

    fn paper_reference(&self) -> &'static str {
        "unrelated verdicts on same-set pairs take significantly longer (KS test significant); \
         cross-group timing differences are not significant"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let analysis = analysis(scenario);
        let mut report = Report::new(self.id(), self.title());
        report.add_series(Series::new(
            "RWS (same set), related",
            analysis.timing.related.steps(),
        ));
        report.add_series(Series::new(
            "RWS (same set), unrelated",
            analysis.timing.unrelated.steps(),
        ));
        if let Some(ks) = &analysis.timing.ks {
            report.add_note(format!(
                "KS test related vs unrelated (same set): D = {:.3}, p = {:.4}, significant at 0.05: {}",
                ks.statistic,
                ks.p_value,
                ks.significant_at(0.05)
            ));
        }
        for (a, b, ks) in &analysis.cross_group_ks {
            report.add_note(format!(
                "cross-group KS {} vs {}: D = {:.3}, p = {:.4}",
                a.label(),
                b.label(),
                ks.statistic,
                ks.p_value
            ));
        }
        if let (Some(median_related), Some(median_unrelated)) = (
            analysis.timing.related.median(),
            analysis.timing.unrelated.median(),
        ) {
            report.add_note(format!(
                "median seconds: related {median_related:.1}, unrelated {median_unrelated:.1}"
            ));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rws_survey::PairGroup;

    /// Shared helper: the same-set group's (related, unrelated) counts.
    fn same_set_summary(scenario: &Scenario) -> (usize, usize) {
        let analysis = analysis(scenario);
        let summary = analysis
            .summary_for(PairGroup::RwsSameSet)
            .cloned()
            .expect("same-set group always summarised");
        (summary.related_count, summary.unrelated_count)
    }

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::small(41))
    }

    #[test]
    fn table1_has_four_rows_and_notes() {
        let s = scenario();
        let report = Table1.run(&s);
        let table = report.table("table1").unwrap();
        assert_eq!(table.row_count(), 4);
        assert!(report.to_text().contains("RWS (same set)"));
        assert!(report.notes.iter().any(|n| n.contains("total responses")));
    }

    #[test]
    fn table2_rows_cover_every_factor() {
        let s = scenario();
        let report = Table2.run(&s);
        let table = report.table("table2").unwrap();
        assert_eq!(table.row_count(), 6);
        assert!(report.to_text().contains("Branding elements"));
    }

    #[test]
    fn figure1_percentages_within_rows_sum_to_100() {
        let s = scenario();
        let report = Figure1.run(&s);
        let table = report.table("confusion").unwrap();
        assert_eq!(table.row_count(), 2);
        // Extract the two percentages from the expected-related row and
        // check they sum to ~100%.
        let row = &table.rows()[0];
        let pct = |cell: &str| -> f64 {
            cell.split('(')
                .nth(1)
                .unwrap()
                .trim_end_matches("%)")
                .parse()
                .unwrap()
        };
        let total = pct(&row[1]) + pct(&row[2]);
        assert!(
            (total - 100.0).abs() < 0.2,
            "row percentages sum to {total}"
        );
    }

    #[test]
    fn figure2_has_two_series() {
        let s = scenario();
        let report = Figure2.run(&s);
        assert!(report.series_named("RWS (same set), related").is_some());
        assert!(report.series_named("RWS (same set), unrelated").is_some());
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn same_set_summary_counts_match_responses() {
        let s = scenario();
        let (related, unrelated) = same_set_summary(&s);
        let total = s.survey.for_group(PairGroup::RwsSameSet).len();
        assert_eq!(related + unrelated, total);
    }
}
