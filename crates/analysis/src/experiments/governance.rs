//! Governance experiments: Table 3 and Figures 5–9.

use crate::experiments::Experiment;
use crate::report::{Report, Series, TextTable};
use crate::scenario::Scenario;
use rws_corpus::SiteCategory;
use rws_github::PrState;
use rws_model::MemberRole;
use rws_stats::histogram::CategoryCounter;
use rws_stats::timeseries::Month;
use rws_stats::Ecdf;

fn month_x(start: Month, month: Month) -> f64 {
    start.months_until(month) as f64
}

/// Table 3: counts of the validation bot's messages.
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }

    fn title(&self) -> &'static str {
        "RWS GitHub bot validation messages"
    }

    fn paper_reference(&self) -> &'static str {
        "Unable to fetch .well-known JSON file 202; Associated site isn't an eTLD+1 65; \
         Service site without X-Robots-Tag 19; set/.well-known mismatch 12; alias not eTLD+1 10; \
         primary not eTLD+1 9; other 8; no rationale 5"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let counts = scenario.history.bot_message_counts();
        let mut report = Report::new(self.id(), self.title());
        let mut table = TextTable::new(vec!["GitHub bot comment", "Count"]);
        for (message, count) in counts.sorted_by_count() {
            table.add_row(vec![message, count.to_string()]);
        }
        report.add_table("table3", table);
        report.add_note(format!("total bot messages: {}", counts.total()));
        report.add_note(format!(
            "pull requests validated: {} ({} approved, {} closed)",
            scenario.history.len(),
            scenario.history.count(PrState::Approved),
            scenario.history.count(PrState::Closed)
        ));
        report.add_note(format!("paper reference: {}", self.paper_reference()));
        report
    }
}

/// Figure 5: cumulative count of PRs proposing a new set, by final state.
pub struct Figure5;

impl Experiment for Figure5 {
    fn id(&self) -> &'static str {
        "figure5"
    }

    fn title(&self) -> &'static str {
        "Cumulative count of PRs proposing a new set, by final state"
    }

    fn paper_reference(&self) -> &'static str {
        "114 PRs to 2024-03-30; 47 approved, 67 closed without merging (58.8%); submission rate \
         grows over time"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let start = scenario.config.window_start;
        let end = scenario.config.window_end;
        let (approved, closed) = scenario.history.cumulative_by_state(start, end);
        let mut report = Report::new(self.id(), self.title());
        report.add_series(Series::new(
            "Approved",
            approved
                .iter()
                .map(|(m, v)| (month_x(start, m), v))
                .collect(),
        ));
        report.add_series(Series::new(
            "Closed (without being merged)",
            closed.iter().map(|(m, v)| (month_x(start, m), v)).collect(),
        ));
        report.add_note(format!(
            "total PRs: {}; approved: {}; closed: {}; rejection rate {:.1}% (paper: 58.8%)",
            scenario.history.len(),
            scenario.history.count(PrState::Approved),
            scenario.history.count(PrState::Closed),
            100.0 * scenario.history.rejection_rate()
        ));
        report.add_note(format!(
            "distinct primaries: {}; mean PRs per primary {:.2} (paper: 60 primaries, 1.9)",
            scenario.history.distinct_primaries(),
            scenario.history.mean_prs_per_primary()
        ));
        report
    }
}

/// Figure 6: CDF of days taken to process PRs, by final state.
pub struct Figure6;

impl Experiment for Figure6 {
    fn id(&self) -> &'static str {
        "figure6"
    }

    fn title(&self) -> &'static str {
        "Days taken to process PRs proposing a new set"
    }

    fn paper_reference(&self) -> &'static str {
        "54.3% of unsuccessful PRs closed same day; median 5 days for approved PRs"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let approved = scenario.history.days_to_process(PrState::Approved);
        let closed = scenario.history.days_to_process(PrState::Closed);
        let mut report = Report::new(self.id(), self.title());
        report.add_series(Series::new(
            format!("Approved ({})", approved.len()),
            Ecdf::new(&approved).steps(),
        ));
        report.add_series(Series::new(
            format!("Closed (without being merged) ({})", closed.len()),
            Ecdf::new(&closed).steps(),
        ));
        report.add_note(format!(
            "median days to approve: {:.1} (paper: 5)",
            rws_stats::median(&approved).unwrap_or(0.0)
        ));
        report.add_note(format!(
            "same-day closures among rejected PRs: {:.1}% (paper: 54.3%)",
            100.0 * scenario.history.same_day_fraction(PrState::Closed)
        ));
        report
    }
}

/// Figure 7: set composition (service / associated / ccTLD site counts) by
/// month.
pub struct Figure7;

impl Experiment for Figure7 {
    fn id(&self) -> &'static str {
        "figure7"
    }

    fn title(&self) -> &'static str {
        "Set composition over time"
    }

    fn paper_reference(&self) -> &'static str {
        "at 2024-03-26: 41 sets; 92.7% with associated sites (mean 2.6/set), 22% with service \
         sites, 14.6% with ccTLD sites"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let start = scenario.config.window_start;
        let end = scenario.config.window_end;
        let composition = scenario.snapshots.composition_by_month(start, end);
        let mut report = Report::new(self.id(), self.title());
        for (name, series) in [
            ("Service sites", &composition.service),
            ("Associated sites", &composition.associated),
            ("ccTLD sites", &composition.cctld),
        ] {
            report.add_series(Series::new(
                name,
                series.iter().map(|(m, v)| (month_x(start, m), v)).collect(),
            ));
        }
        if let Some(latest) = scenario.snapshots.latest() {
            let counts = latest.subset_counts();
            report.add_note(format!(
                "final snapshot: {} sets, {} associated, {} service, {} ccTLD sites",
                counts.primaries, counts.associated, counts.service, counts.cctld
            ));
            report.add_note(format!(
                "sets with associated sites: {:.1}% (paper: 92.7%); with service sites: {:.1}% \
                 (paper: 22%); with ccTLD sites: {:.1}% (paper: 14.6%); mean associated per set \
                 {:.2} (paper: 2.6)",
                100.0 * latest.fraction_of_sets_with(MemberRole::Associated),
                100.0 * latest.fraction_of_sets_with(MemberRole::Service),
                100.0 * latest.fraction_of_sets_with(MemberRole::Cctld),
                latest.mean_associated_per_set()
            ));
        }
        report
    }
}

/// One named series of `(x, y)` points, as consumed by the report layer.
type NamedSeries = (String, Vec<(f64, f64)>);

/// Shared machinery for Figures 8 and 9: per-month counts of members of one
/// role, bucketed by Forcepoint-style category.
fn category_series(scenario: &Scenario, role: MemberRole) -> (Vec<NamedSeries>, CategoryCounter) {
    let start = scenario.config.window_start;
    let end = scenario.config.window_end;
    let months = start.range_inclusive(end);

    // Collect the bucket labels present in the final snapshot so every
    // series covers the same category set.
    let mut final_counts = CategoryCounter::new();
    let mut per_month: Vec<CategoryCounter> = Vec::with_capacity(months.len());
    for (idx, month) in months.iter().enumerate() {
        let cutoff =
            rws_stats::timeseries::Date::new(month.year, month.month, month.days_in_month());
        let mut counter = CategoryCounter::new();
        if let Some(snapshot) = scenario.snapshots.at(cutoff) {
            for set in snapshot.list.sets() {
                let domains: Vec<_> = match role {
                    MemberRole::Primary => vec![set.primary().clone()],
                    MemberRole::Associated => set.associated_sites().cloned().collect(),
                    MemberRole::Service => set.service_sites().cloned().collect(),
                    MemberRole::Cctld => set.cctld_sites().cloned().collect(),
                };
                for domain in domains {
                    let category = scenario.categories.category_of(&domain);
                    counter.record(category.figure_bucket());
                }
            }
        }
        if idx == months.len() - 1 {
            final_counts = counter.clone();
        }
        per_month.push(counter);
    }

    // Build one series per bucket label that ever appears, ordered by final
    // count (largest first), as the stacked plots in the paper are.
    let mut labels: Vec<String> = SiteCategory::ALL
        .iter()
        .map(|c| c.figure_bucket().to_string())
        .collect();
    labels.sort();
    labels.dedup();
    labels.sort_by_key(|l| std::cmp::Reverse(final_counts.get(l)));

    let mut series = Vec::new();
    for label in labels {
        let points: Vec<(f64, f64)> = months
            .iter()
            .enumerate()
            .map(|(i, m)| (month_x(start, *m), per_month[i].get(&label) as f64))
            .collect();
        if points.iter().any(|(_, y)| *y > 0.0) {
            series.push((label, points));
        }
    }
    (series, final_counts)
}

/// Figure 8: Forcepoint-style categories of set primaries over time.
pub struct Figure8;

impl Experiment for Figure8 {
    fn id(&self) -> &'static str {
        "figure8"
    }

    fn title(&self) -> &'static str {
        "Categories of set primaries over time"
    }

    fn paper_reference(&self) -> &'static str {
        "news and media is the largest single category of set primaries"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let (series, final_counts) = category_series(scenario, MemberRole::Primary);
        let mut report = Report::new(self.id(), self.title());
        let mut table = TextTable::new(vec!["Category", "Primaries (final month)"]);
        for (label, count) in final_counts.sorted_by_count() {
            table.add_row(vec![label, count.to_string()]);
        }
        report.add_table("final_month", table);
        for (label, points) in series {
            report.add_series(Series::new(label, points));
        }
        report.add_note(format!("paper reference: {}", self.paper_reference()));
        report
    }
}

/// Figure 9: Forcepoint-style categories of associated sites over time.
pub struct Figure9;

impl Experiment for Figure9 {
    fn id(&self) -> &'static str {
        "figure9"
    }

    fn title(&self) -> &'static str {
        "Categories of associated sites over time"
    }

    fn paper_reference(&self) -> &'static str {
        "associated sites span news, IT, business and analytics/tracking infrastructure \
         (e.g. webvisor.com in the ya.ru set)"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let (series, final_counts) = category_series(scenario, MemberRole::Associated);
        let mut report = Report::new(self.id(), self.title());
        let mut table = TextTable::new(vec!["Category", "Associated sites (final month)"]);
        for (label, count) in final_counts.sorted_by_count() {
            table.add_row(vec![label, count.to_string()]);
        }
        report.add_table("final_month", table);
        for (label, points) in series {
            report.add_series(Series::new(label, points));
        }
        report.add_note(format!("paper reference: {}", self.paper_reference()));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::small(53))
    }

    #[test]
    fn table3_is_sorted_by_count_and_dominated_by_well_known_failures() {
        let s = scenario();
        let report = Table3.run(&s);
        let table = report.table("table3").unwrap();
        assert!(table.row_count() >= 2);
        let counts: Vec<u64> = table
            .rows()
            .iter()
            .map(|r| r[1].parse::<u64>().unwrap())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "not sorted: {counts:?}"
        );
        assert_eq!(table.rows()[0][0], "Unable to fetch .well-known JSON file");
    }

    #[test]
    fn figure5_series_are_cumulative() {
        let s = scenario();
        let report = Figure5.run(&s);
        for series in &report.series {
            let ys: Vec<f64> = series.points.iter().map(|(_, y)| *y).collect();
            assert!(
                ys.windows(2).all(|w| w[1] >= w[0]),
                "{} not cumulative",
                series.name
            );
        }
        let approved_final = report
            .series_named("Approved")
            .unwrap()
            .points
            .last()
            .unwrap()
            .1;
        assert!(approved_final > 0.0);
    }

    #[test]
    fn figure6_cdfs_present_and_rejections_close_faster() {
        let s = scenario();
        let report = Figure6.run(&s);
        assert_eq!(report.series.len(), 2);
        let approved_median =
            rws_stats::median(&s.history.days_to_process(PrState::Approved)).unwrap();
        let closed_median = rws_stats::median(&s.history.days_to_process(PrState::Closed)).unwrap();
        assert!(
            closed_median <= approved_median,
            "rejected PRs ({closed_median} days) should resolve no slower than approved ({approved_median})"
        );
    }

    #[test]
    fn figure7_composition_counts_grow() {
        let s = scenario();
        let report = Figure7.run(&s);
        let associated = report.series_named("Associated sites").unwrap();
        let ys: Vec<f64> = associated.points.iter().map(|(_, y)| *y).collect();
        assert!(
            ys.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "composition series shrank: {ys:?}"
        );
        assert!(*ys.last().unwrap() > 0.0);
    }

    #[test]
    fn figures_8_and_9_have_category_series() {
        let s = scenario();
        for report in [Figure8.run(&s), Figure9.run(&s)] {
            assert!(!report.series.is_empty());
            assert!(report.table("final_month").is_some());
            for series in &report.series {
                assert!(series.points.iter().all(|(_, y)| *y >= 0.0));
            }
        }
    }
}
