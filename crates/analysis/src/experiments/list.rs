//! List-characterisation experiments: Figures 3 and 4.

use crate::experiments::Experiment;
use crate::report::{Report, Series, TextTable};
use crate::scenario::Scenario;
use rws_domain::{DomainName, SldComparison};
use rws_engine::EngineBackend;
use rws_html::similarity::{DocumentProfile, ProfileScratch, SimilarityWeights};
use rws_model::MemberRole;
use rws_stats::Ecdf;
use std::collections::HashMap;

/// Figure 3: CDFs of the Levenshtein edit distance between service /
/// associated site SLDs and their set primary's SLD.
pub struct Figure3;

impl Figure3 {
    /// The per-role edit-distance samples underlying the figure.
    ///
    /// The pairwise sweep runs in parallel on the scenario's engine; its
    /// shared [`SiteResolver`] — already warm from scenario generation —
    /// memoizes each primary's SLD across all of its member pairs.
    pub fn distances(scenario: &Scenario) -> (Vec<f64>, Vec<f64>) {
        let resolver = scenario.engine.resolver();
        let pairs = scenario.corpus.list.member_primary_pairs();
        let comparisons = scenario
            .engine
            .par_map(&pairs, |_, (primary, member, role)| {
                SldComparison::compute_cached(member, primary, resolver)
                    .map(|comparison| (*role, comparison.edit_distance as f64))
            });
        let mut service = Vec::new();
        let mut associated = Vec::new();
        for entry in comparisons.into_iter().flatten() {
            match entry {
                (MemberRole::Service, d) => service.push(d),
                (MemberRole::Associated, d) => associated.push(d),
                _ => {}
            }
        }
        (service, associated)
    }
}

impl Experiment for Figure3 {
    fn id(&self) -> &'static str {
        "figure3"
    }

    fn title(&self) -> &'static str {
        "Levenshtein edit distance between member SLDs and their primary's SLD"
    }

    fn paper_reference(&self) -> &'static str {
        "14 service sites, 108 associated sites; 9.3% of associated SLDs identical to the \
         primary's; median associated edit distance 7"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let (service, associated) = Figure3::distances(scenario);
        let mut report = Report::new(self.id(), self.title());
        let service_ecdf = Ecdf::new(&service);
        let associated_ecdf = Ecdf::new(&associated);
        report.add_series(Series::new(
            format!("Service sites ({})", service.len()),
            service_ecdf.steps(),
        ));
        report.add_series(Series::new(
            format!("Associated sites ({})", associated.len()),
            associated_ecdf.steps(),
        ));
        let identical = associated.iter().filter(|&&d| d == 0.0).count();
        if !associated.is_empty() {
            report.add_note(format!(
                "identical associated SLDs: {} of {} ({:.1}%, paper: 9.3%)",
                identical,
                associated.len(),
                100.0 * identical as f64 / associated.len() as f64
            ));
        }
        if let Some(median) = associated_ecdf.median() {
            report.add_note(format!(
                "median associated edit distance: {median:.1} (paper: 7)"
            ));
        }
        report.add_note(format!("paper reference: {}", self.paper_reference()));
        report
    }
}

/// Figure 4: CDFs of HTML style / structural / joint similarity between
/// member sites and their set primaries.
pub struct Figure4;

impl Figure4 {
    /// The three similarity samples (style, structural, joint) over every
    /// service/associated member paired with its primary.
    ///
    /// Each distinct document is tokenized and shingled exactly once (in
    /// parallel) into a [`DocumentProfile`]; the pairwise phase then only
    /// compares precomputed hash sets. Primaries appear in many pairs, so
    /// the reuse is substantial on top of the per-pair speedup. The
    /// profiling sweep runs with recycled per-worker scratch buffers
    /// (`par_map_with`) over pages *borrowed* from the corpus's frozen
    /// store (`Corpus::with_html`), so neither the tag/class accumulators
    /// nor the page text are allocated per document.
    pub fn similarities(scenario: &Scenario) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let weights = SimilarityWeights::default();
        let pairs: Vec<(DomainName, DomainName, MemberRole)> = scenario
            .corpus
            .list
            .member_primary_pairs()
            .into_iter()
            .filter(|(_, _, role)| matches!(role, MemberRole::Service | MemberRole::Associated))
            .collect();

        // Phase 1: profile every distinct document, in parallel.
        let mut distinct: Vec<DomainName> = Vec::new();
        let mut seen: HashMap<DomainName, usize> = HashMap::new();
        for (primary, member, _) in &pairs {
            for domain in [primary, member] {
                if !seen.contains_key(domain) {
                    seen.insert(domain.clone(), distinct.len());
                    distinct.push(domain.clone());
                }
            }
        }
        let profiles: Vec<Option<DocumentProfile>> = scenario.engine.par_map_with(
            ProfileScratch::default(),
            &distinct,
            |scratch, _, domain| {
                // Borrowed straight out of the frozen page store: the whole
                // profiling sweep runs without copying a single page.
                scenario.corpus.with_html(domain, |html| {
                    DocumentProfile::with_scratch(html, weights, scratch)
                })
            },
        );
        let profile_of = |domain: &DomainName| profiles[seen[domain]].as_ref();

        // Phase 2: compare precomputed profiles, in parallel.
        let scores = scenario.engine.par_map(&pairs, |_, (primary, member, _)| {
            let (Some(primary_profile), Some(member_profile)) =
                (profile_of(primary), profile_of(member))
            else {
                return None;
            };
            Some(primary_profile.similarity(member_profile, weights))
        });

        let mut style = Vec::new();
        let mut structural = Vec::new();
        let mut joint = Vec::new();
        for similarity in scores.into_iter().flatten() {
            style.push(similarity.style);
            structural.push(similarity.structural);
            joint.push(similarity.joint);
        }
        (style, structural, joint)
    }
}

impl Experiment for Figure4 {
    fn id(&self) -> &'static str {
        "figure4"
    }

    fn title(&self) -> &'static str {
        "HTML similarity between set primaries and their service/associated sites"
    }

    fn paper_reference(&self) -> &'static str {
        "most members dissimilar to their primaries; median joint similarity 0.04"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let (style, structural, joint) = Figure4::similarities(scenario);
        let mut report = Report::new(self.id(), self.title());
        for (name, sample) in [
            ("Style similarity", &style),
            ("Structural similarity", &structural),
            ("Joint similarity", &joint),
        ] {
            let ecdf = Ecdf::new(sample);
            report.add_series(Series::new(name, ecdf.grid(0.0, 1.0, 101)));
        }
        let mut medians = TextTable::new(vec!["Metric", "Median", "Mean"]);
        for (name, sample) in [
            ("style", &style),
            ("structural", &structural),
            ("joint", &joint),
        ] {
            medians.add_row(vec![
                name.to_string(),
                format!("{:.3}", rws_stats::median(sample).unwrap_or(0.0)),
                format!("{:.3}", rws_stats::mean(sample).unwrap_or(0.0)),
            ]);
        }
        report.add_table("summary", medians);
        report.add_note(format!(
            "pairs compared: {} (paper compares 122 member/primary pairs)",
            joint.len()
        ));
        report.add_note(format!(
            "median joint similarity: {:.3} (paper: 0.04)",
            rws_stats::median(&joint).unwrap_or(0.0)
        ));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::small(47))
    }

    #[test]
    fn figure3_produces_cdfs_and_sane_distances() {
        let s = scenario();
        let (service, associated) = Figure3::distances(&s);
        assert!(
            !associated.is_empty(),
            "corpus must contain associated sites"
        );
        for &d in service.iter().chain(associated.iter()) {
            assert!((0.0..40.0).contains(&d), "implausible edit distance {d}");
        }
        let report = Figure3.run(&s);
        assert_eq!(report.series.len(), 2);
        assert!(report.to_text().contains("Associated sites"));
    }

    #[test]
    fn figure4_similarities_bounded_and_mostly_low() {
        let s = scenario();
        let (style, structural, joint) = Figure4::similarities(&s);
        assert_eq!(style.len(), joint.len());
        assert_eq!(structural.len(), joint.len());
        assert!(!joint.is_empty());
        for &v in style.iter().chain(structural.iter()).chain(joint.iter()) {
            assert!((0.0..=1.0).contains(&v));
        }
        // The paper's qualitative finding: the median joint similarity is
        // low (members mostly do not look like their primaries).
        let median_joint = rws_stats::median(&joint).unwrap();
        assert!(
            median_joint < 0.5,
            "median joint similarity {median_joint} too high"
        );
        let report = Figure4.run(&s);
        assert_eq!(report.series.len(), 3);
        assert!(report.table("summary").unwrap().row_count() == 3);
    }
}
