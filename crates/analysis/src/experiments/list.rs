//! List-characterisation experiments: Figures 3 and 4.

use crate::experiments::Experiment;
use crate::report::{Report, Series, TextTable};
use crate::scenario::Scenario;
use rws_domain::{PublicSuffixList, SldComparison};
use rws_html::similarity::{html_similarity, SimilarityWeights};
use rws_model::MemberRole;
use rws_stats::Ecdf;

/// Figure 3: CDFs of the Levenshtein edit distance between service /
/// associated site SLDs and their set primary's SLD.
pub struct Figure3;

impl Figure3 {
    /// The per-role edit-distance samples underlying the figure.
    pub fn distances(scenario: &Scenario) -> (Vec<f64>, Vec<f64>) {
        let psl = PublicSuffixList::embedded();
        let mut service = Vec::new();
        let mut associated = Vec::new();
        for (primary, member, role) in scenario.corpus.list.member_primary_pairs() {
            let Some(comparison) = SldComparison::compute(&member, &primary, &psl) else {
                continue;
            };
            match role {
                MemberRole::Service => service.push(comparison.edit_distance as f64),
                MemberRole::Associated => associated.push(comparison.edit_distance as f64),
                _ => {}
            }
        }
        (service, associated)
    }
}

impl Experiment for Figure3 {
    fn id(&self) -> &'static str {
        "figure3"
    }

    fn title(&self) -> &'static str {
        "Levenshtein edit distance between member SLDs and their primary's SLD"
    }

    fn paper_reference(&self) -> &'static str {
        "14 service sites, 108 associated sites; 9.3% of associated SLDs identical to the \
         primary's; median associated edit distance 7"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let (service, associated) = Figure3::distances(scenario);
        let mut report = Report::new(self.id(), self.title());
        let service_ecdf = Ecdf::new(&service);
        let associated_ecdf = Ecdf::new(&associated);
        report.add_series(Series::new(
            format!("Service sites ({})", service.len()),
            service_ecdf.steps(),
        ));
        report.add_series(Series::new(
            format!("Associated sites ({})", associated.len()),
            associated_ecdf.steps(),
        ));
        let identical = associated.iter().filter(|&&d| d == 0.0).count();
        if !associated.is_empty() {
            report.add_note(format!(
                "identical associated SLDs: {} of {} ({:.1}%, paper: 9.3%)",
                identical,
                associated.len(),
                100.0 * identical as f64 / associated.len() as f64
            ));
        }
        if let Some(median) = associated_ecdf.median() {
            report.add_note(format!(
                "median associated edit distance: {median:.1} (paper: 7)"
            ));
        }
        report.add_note(format!("paper reference: {}", self.paper_reference()));
        report
    }
}

/// Figure 4: CDFs of HTML style / structural / joint similarity between
/// member sites and their set primaries.
pub struct Figure4;

impl Figure4 {
    /// The three similarity samples (style, structural, joint) over every
    /// service/associated member paired with its primary.
    pub fn similarities(scenario: &Scenario) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let weights = SimilarityWeights::default();
        let mut style = Vec::new();
        let mut structural = Vec::new();
        let mut joint = Vec::new();
        for (primary, member, role) in scenario.corpus.list.member_primary_pairs() {
            if !matches!(role, MemberRole::Service | MemberRole::Associated) {
                continue;
            }
            let (Some(primary_html), Some(member_html)) = (
                scenario.corpus.html_of(&primary),
                scenario.corpus.html_of(&member),
            ) else {
                continue;
            };
            let similarity = html_similarity(&primary_html, &member_html, weights);
            style.push(similarity.style);
            structural.push(similarity.structural);
            joint.push(similarity.joint);
        }
        (style, structural, joint)
    }
}

impl Experiment for Figure4 {
    fn id(&self) -> &'static str {
        "figure4"
    }

    fn title(&self) -> &'static str {
        "HTML similarity between set primaries and their service/associated sites"
    }

    fn paper_reference(&self) -> &'static str {
        "most members dissimilar to their primaries; median joint similarity 0.04"
    }

    fn run(&self, scenario: &Scenario) -> Report {
        let (style, structural, joint) = Figure4::similarities(scenario);
        let mut report = Report::new(self.id(), self.title());
        for (name, sample) in [
            ("Style similarity", &style),
            ("Structural similarity", &structural),
            ("Joint similarity", &joint),
        ] {
            let ecdf = Ecdf::new(sample);
            report.add_series(Series::new(name, ecdf.grid(0.0, 1.0, 101)));
        }
        let mut medians = TextTable::new(vec!["Metric", "Median", "Mean"]);
        for (name, sample) in [
            ("style", &style),
            ("structural", &structural),
            ("joint", &joint),
        ] {
            medians.add_row(vec![
                name.to_string(),
                format!("{:.3}", rws_stats::median(sample).unwrap_or(0.0)),
                format!("{:.3}", rws_stats::mean(sample).unwrap_or(0.0)),
            ]);
        }
        report.add_table("summary", medians);
        report.add_note(format!(
            "pairs compared: {} (paper compares 122 member/primary pairs)",
            joint.len()
        ));
        report.add_note(format!(
            "median joint similarity: {:.3} (paper: 0.04)",
            rws_stats::median(&joint).unwrap_or(0.0)
        ));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::small(47))
    }

    #[test]
    fn figure3_produces_cdfs_and_sane_distances() {
        let s = scenario();
        let (service, associated) = Figure3::distances(&s);
        assert!(!associated.is_empty(), "corpus must contain associated sites");
        for &d in service.iter().chain(associated.iter()) {
            assert!(d >= 0.0 && d < 40.0, "implausible edit distance {d}");
        }
        let report = Figure3.run(&s);
        assert_eq!(report.series.len(), 2);
        assert!(report.to_text().contains("Associated sites"));
    }

    #[test]
    fn figure4_similarities_bounded_and_mostly_low() {
        let s = scenario();
        let (style, structural, joint) = Figure4::similarities(&s);
        assert_eq!(style.len(), joint.len());
        assert_eq!(structural.len(), joint.len());
        assert!(!joint.is_empty());
        for &v in style.iter().chain(structural.iter()).chain(joint.iter()) {
            assert!((0.0..=1.0).contains(&v));
        }
        // The paper's qualitative finding: the median joint similarity is
        // low (members mostly do not look like their primaries).
        let median_joint = rws_stats::median(&joint).unwrap();
        assert!(median_joint < 0.5, "median joint similarity {median_joint} too high");
        let report = Figure4.run(&s);
        assert_eq!(report.series.len(), 3);
        assert!(report.table("summary").unwrap().row_count() == 3);
    }
}
