//! One experiment per table and figure of the paper.

pub mod governance;
pub mod list;
pub mod survey;

use crate::report::Report;
use crate::scenario::Scenario;

/// A reproducible experiment: one table or figure of the paper.
///
/// Experiments are stateless (`Send + Sync`), so `run_all` can execute
/// them concurrently over one shared scenario.
pub trait Experiment: Send + Sync {
    /// Stable identifier (`table1`, `figure4`, …).
    fn id(&self) -> &'static str;

    /// Human-readable title matching the paper's caption.
    fn title(&self) -> &'static str;

    /// What the paper reports for this artefact — the values the
    /// reproduction should be compared against.
    fn paper_reference(&self) -> &'static str;

    /// Run the experiment against a generated scenario.
    fn run(&self, scenario: &Scenario) -> Report;
}

pub use governance::{Figure5, Figure6, Figure7, Figure8, Figure9, Table3};
pub use list::{Figure3, Figure4};
pub use survey::{Figure1, Figure2, Table1, Table2};

/// Every experiment, in the order the paper presents them.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(Table1),
        Box::new(Table2),
        Box::new(Table3),
        Box::new(Figure1),
        Box::new(Figure2),
        Box::new(Figure3),
        Box::new(Figure4),
        Box::new(Figure5),
        Box::new(Figure6),
        Box::new(Figure7),
        Box::new(Figure8),
        Box::new(Figure9),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique_and_cover_the_paper() {
        let experiments = all_experiments();
        assert_eq!(experiments.len(), 12);
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment ids");
        for e in &experiments {
            assert!(!e.title().is_empty());
            assert!(!e.paper_reference().is_empty());
        }
    }
}
