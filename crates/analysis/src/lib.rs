//! The paper's analysis pipeline.
//!
//! This crate is the primary public API of the reproduction. It wires the
//! substrates together — corpus generation, classification, the governance
//! history, the browser policy layer and the survey — into a single
//! [`Scenario`], and implements one [`Experiment`] per table and figure of
//! the paper:
//!
//! | id | artefact |
//! |---|---|
//! | `table1` | Website relatedness survey results summary |
//! | `table2` | Factors used to determine relatedness |
//! | `table3` | RWS GitHub bot validation messages |
//! | `figure1` | Relatedness confusion matrix |
//! | `figure2` | Survey timing CDFs + KS test |
//! | `figure3` | SLD Levenshtein distance CDFs |
//! | `figure4` | HTML similarity CDFs |
//! | `figure5` | Cumulative PRs by outcome |
//! | `figure6` | Days to process PRs |
//! | `figure7` | Set composition over time |
//! | `figure8` | Categories of set primaries over time |
//! | `figure9` | Categories of associated sites over time |
//!
//! Each experiment renders a [`Report`] containing aligned text tables and
//! the numeric series a plotting tool would consume, and
//! [`PaperReproduction`] runs all of them.
//!
//! ```
//! use rws_analysis::{PaperReproduction, ScenarioConfig};
//!
//! let mut config = ScenarioConfig::default();
//! config.corpus.organisations = 10;   // small corpus for the doctest
//! config.corpus.top_sites = 100;
//! let repro = PaperReproduction::new(config);
//! let report = repro.run("figure1").expect("figure1 is a known experiment");
//! assert!(report.to_text().contains("Expected"));
//! ```

pub mod experiments;
pub mod paper;
pub mod report;
pub mod scenario;

pub use paper::{Experiment, PaperReproduction};
pub use report::{Report, Series, TextTable};
pub use scenario::{Scenario, ScenarioConfig};
