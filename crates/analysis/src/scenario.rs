//! Scenario construction: generate every simulated input once and share it
//! across experiments.
//!
//! Since PR 2, [`Scenario::generate`] is an explicit staged pipeline over a
//! shared [`EngineContext`]:
//!
//! ```text
//! corpus ──┬── history ── snapshots
//!          └── categories ── pairs ── survey
//! ```
//!
//! The corpus comes first (everything reads it); then the two independent
//! chains — governance history followed by list snapshots, and
//! classification followed by pair construction and the survey — run
//! concurrently on the context's thread pool, each internally fanning out
//! again (per-submitter history replays, per-page corpus rendering,
//! per-site content classification, per-member pair sweeps,
//! per-participant survey sessions). Every stage
//! draws from derived rng streams keyed by task identity, so the pooled
//! pipeline is field-for-field identical to
//! [`Scenario::generate_sequential`], which the equivalence property tests
//! assert across seeds.

use rws_classify::CategoryDatabase;
use rws_corpus::{Corpus, CorpusConfig, CorpusGenerator};
use rws_engine::{EngineBackend, EngineContext};
use rws_github::{HistoryConfig, HistoryGenerator, PrHistory, PrState};
use rws_model::{ListSnapshot, RwsList, SnapshotSeries};
use rws_stats::rng::Xoshiro256StarStar;
use rws_stats::timeseries::Month;
use rws_survey::{PairGenerator, PairUniverse, SurveyConfig, SurveyDataset, SurveyRunner};
use serde::{Deserialize, Serialize};

/// Full configuration of a reproduction scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Synthetic corpus parameters (list shape, branding, languages, …).
    pub corpus: CorpusConfig,
    /// Survey parameters (participants, pairs per group).
    pub survey: SurveyConfig,
    /// Governance history parameters (window, defect rates, review model).
    pub history: HistoryConfig,
    /// Number of Tranco top sites sampled for survey groups 3 and 4
    /// (paper: 200).
    pub top_site_sample: usize,
    /// First month of the observation window for the time-series figures.
    pub window_start: Month,
    /// Last month of the observation window.
    pub window_end: Month,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            corpus: CorpusConfig::default(),
            survey: SurveyConfig::default(),
            history: HistoryConfig::default(),
            top_site_sample: 200,
            window_start: Month::new(2023, 1),
            window_end: Month::new(2024, 3),
        }
    }
}

impl ScenarioConfig {
    /// A reduced-size configuration for fast tests and doctests.
    pub fn small(seed: u64) -> ScenarioConfig {
        let mut config = ScenarioConfig {
            corpus: CorpusConfig::small(seed),
            top_site_sample: 60,
            ..ScenarioConfig::default()
        };
        config.survey.seed = seed;
        config.history.seed = seed ^ 0xABCD;
        config.history.never_successful_primaries = 5;
        config
    }
}

/// Everything the experiments consume, generated deterministically from a
/// [`ScenarioConfig`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The configuration the scenario was generated from.
    pub config: ScenarioConfig,
    /// The engine the scenario was generated on; experiments reuse its
    /// pool and its memoized site resolver (already warm with every host
    /// the generation stages resolved).
    pub engine: EngineContext,
    /// The synthetic corpus (RWS list, sites, pages, top sites, web).
    pub corpus: Corpus,
    /// Categories assigned by the keyword classifier (the analogue of the
    /// Forcepoint ThreatSeeker lookups the paper performs).
    pub categories: CategoryDatabase,
    /// The simulated GitHub pull-request history.
    pub history: PrHistory,
    /// The candidate survey pairs, by group.
    pub pairs: PairUniverse,
    /// The simulated survey responses and factor questionnaires.
    pub survey: SurveyDataset,
    /// Monthly snapshots of the list, reconstructed from approved PRs.
    pub snapshots: SnapshotSeries,
}

impl Scenario {
    /// Generate a scenario on the production engine (global pool, full
    /// vendored PSL).
    pub fn generate(config: ScenarioConfig) -> Scenario {
        Scenario::generate_with(config, &EngineContext::new())
    }

    /// Generate a scenario with every stage running inline on the calling
    /// thread — the sequential oracle the pooled pipeline is
    /// property-tested against.
    pub fn generate_sequential(config: ScenarioConfig) -> Scenario {
        Scenario::generate_with(config, &EngineContext::sequential())
    }

    /// Generate a scenario as a staged pipeline on the given engine: the
    /// corpus first, then the governance chain (history → snapshots) and
    /// the survey chain (categories → pairs → survey) concurrently.
    ///
    /// The two chains are independent: the survey chain reads only the
    /// corpus's sites and pages, while the history chain's side effects on
    /// the shared web are confined to hosts named after its own submitters.
    /// Output is identical whether the engine is pooled or sequential.
    pub fn generate_with(config: ScenarioConfig, ctx: &EngineContext) -> Scenario {
        let corpus = CorpusGenerator::new(config.corpus).generate_with(ctx);

        let ((history, snapshots), (categories, pairs, survey)) = ctx.join2(
            || {
                let history = HistoryGenerator::new(config.history).generate_with(&corpus, ctx);
                let snapshots = Scenario::snapshots_from_history(&corpus, &history, config);
                (history, snapshots)
            },
            || {
                let categories = CategoryDatabase::classify_corpus_on(&corpus, ctx);
                let mut pair_rng =
                    Xoshiro256StarStar::new(config.survey.seed).derive("pair-universe");
                let mut pair_generator = PairGenerator::new(&corpus, &categories);
                pair_generator.top_site_sample = config.top_site_sample;
                let pairs = pair_generator.generate_on(&mut pair_rng, ctx);
                let survey = SurveyRunner::new(config.survey).run_on(&corpus, &pairs, ctx);
                (categories, pairs, survey)
            },
        );

        Scenario {
            config,
            engine: ctx.clone(),
            corpus,
            categories,
            history,
            pairs,
            survey,
            snapshots,
        }
    }

    /// Reconstruct the list's month-by-month growth from the governance
    /// history: the list at any date consists of the sets whose approving PR
    /// had been merged by that date. This is exactly how the paper derives
    /// its composition-over-time figures from repository history.
    fn snapshots_from_history(
        corpus: &Corpus,
        history: &PrHistory,
        config: ScenarioConfig,
    ) -> SnapshotSeries {
        let mut approvals: Vec<(&rws_model::RwsSet, rws_stats::timeseries::Date)> = Vec::new();
        for pr in history.prs() {
            if pr.state == PrState::Approved {
                if let Some(set) = corpus.list.set_with_primary(&pr.primary) {
                    // First approval wins; re-submissions of an existing set
                    // do not change the snapshot.
                    if !approvals.iter().any(|(s, _)| s.primary() == set.primary()) {
                        approvals.push((set, pr.resolved_at));
                    }
                }
            }
        }
        approvals.sort_by_key(|(_, date)| *date);

        let mut series = SnapshotSeries::new();
        for month in config.window_start.range_inclusive(config.window_end) {
            let cutoff =
                rws_stats::timeseries::Date::new(month.year, month.month, month.days_in_month());
            let sets: Vec<rws_model::RwsSet> = approvals
                .iter()
                .filter(|(_, date)| *date <= cutoff)
                .map(|(set, _)| (*set).clone())
                .collect();
            if let Ok(list) = RwsList::from_sets(sets) {
                series.push(ListSnapshot::new(cutoff, list));
            }
        }
        series
    }

    /// The latest list snapshot (the "26 March 2024" list the paper
    /// characterises). Falls back to the corpus's full list if the history
    /// produced no snapshots.
    pub fn latest_list(&self) -> &RwsList {
        self.snapshots
            .latest()
            .map(|s| &s.list)
            .unwrap_or(&self.corpus.list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_generation_is_deterministic() {
        let a = Scenario::generate(ScenarioConfig::small(3));
        let b = Scenario::generate(ScenarioConfig::small(3));
        assert_eq!(a.corpus.list.all_domains(), b.corpus.list.all_domains());
        assert_eq!(a.history.len(), b.history.len());
        assert_eq!(a.survey, b.survey);
        assert_eq!(a.snapshots.len(), b.snapshots.len());
    }

    #[test]
    fn snapshots_grow_monotonically() {
        let scenario = Scenario::generate(ScenarioConfig::small(4));
        let counts: Vec<usize> = scenario
            .snapshots
            .iter()
            .map(|s| s.list.set_count())
            .collect();
        assert!(!counts.is_empty());
        assert!(
            counts.windows(2).all(|w| w[1] >= w[0]),
            "set counts {counts:?}"
        );
        // By the end of the window, most approved sets are present.
        let final_count = *counts.last().unwrap();
        assert!(final_count > 0);
        assert!(final_count <= scenario.corpus.list.set_count());
        assert_eq!(scenario.latest_list().set_count(), final_count);
    }

    #[test]
    fn scenario_has_survey_and_history_data() {
        let scenario = Scenario::generate(ScenarioConfig::small(5));
        assert!(!scenario.survey.responses.is_empty());
        assert!(scenario.history.len() > scenario.corpus.list.set_count());
        assert!(scenario.pairs.total() > 0);
        assert_eq!(scenario.categories.len(), scenario.corpus.sites.len());
    }
}
