//! Report rendering: aligned text tables and numeric series.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The header labels.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render with space-aligned columns.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Render as CSV (comma-separated, values quoted when they contain
    /// commas).
    pub fn to_csv(&self) -> String {
        let escape = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(escape)
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(escape).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A named numeric series — what a plotting tool would consume to draw one
/// line of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series.
    pub fn new<S: Into<String>>(name: S, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }

    /// Render the series as two-column CSV.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        for (x, y) in &self.points {
            let _ = writeln!(out, "{x},{y}");
        }
        out
    }
}

/// The output of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id (e.g. `table1`, `figure4`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Named tables.
    pub tables: Vec<(String, TextTable)>,
    /// Named series.
    pub series: Vec<Series>,
    /// Free-form notes — headline numbers, comparisons with the paper's
    /// reported values, caveats.
    pub notes: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new<S: Into<String>, T: Into<String>>(id: S, title: T) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            tables: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a table.
    pub fn add_table<S: Into<String>>(&mut self, name: S, table: TextTable) -> &mut Self {
        self.tables.push((name.into(), table));
        self
    }

    /// Add a series.
    pub fn add_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Add a note line.
    pub fn add_note<S: Into<String>>(&mut self, note: S) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// A table by name.
    pub fn table(&self, name: &str) -> Option<&TextTable> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// A series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render the whole report as plain text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {} ===", self.id, self.title);
        for (name, table) in &self.tables {
            let _ = writeln!(out, "\n[{name}]");
            out.push_str(&table.render());
        }
        for series in &self.series {
            let _ = writeln!(
                out,
                "\n[series: {} — {} points]",
                series.name,
                series.points.len()
            );
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "\nNotes:");
            for note in &self.notes {
                let _ = writeln!(out, "  - {note}");
            }
        }
        out
    }
}

/// Format a count with a percentage of a total, as the paper's tables do
/// (`72 (63.2%)`).
pub fn count_with_pct(count: usize, total: usize) -> String {
    if total == 0 {
        format!("{count} (0.0%)")
    } else {
        format!("{count} ({:.1}%)", 100.0 * count as f64 / total as f64)
    }
}

/// Format a count with a mean time in seconds, as Table 1 does
/// (`72 (28.1s)`).
pub fn count_with_seconds(count: usize, seconds: f64) -> String {
    format!("{count} ({seconds:.1}s)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(vec!["Category", "Related", "Unrelated"]);
        table.add_row(vec!["RWS (same set)", "72 (28.1s)", "42 (39.4s)"]);
        table.add_row(vec!["RWS (other set)", "5 (25.5s)", "100 (32.5s)"]);
        let rendered = table.render();
        assert!(rendered.contains("Category"));
        assert!(rendered.contains("RWS (same set)"));
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn table_pads_and_truncates_rows() {
        let mut table = TextTable::new(vec!["a", "b"]);
        table.add_row(vec!["only-one"]);
        table.add_row(vec!["x", "y", "overflow"]);
        assert_eq!(table.rows()[0], vec!["only-one".to_string(), String::new()]);
        assert_eq!(table.rows()[1].len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut table = TextTable::new(vec!["name", "value"]);
        table.add_row(vec!["hello, world", "3"]);
        let csv = table.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    fn series_csv_round_trip_shape() {
        let s = Series::new("cdf", vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]);
        let csv = s.to_csv();
        assert!(csv.starts_with("# cdf\n"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn report_accessors_and_text() {
        let mut report = Report::new("table1", "Survey summary");
        let mut table = TextTable::new(vec!["k", "v"]);
        table.add_row(vec!["x", "1"]);
        report.add_table("main", table);
        report.add_series(Series::new("timing", vec![(1.0, 0.5)]));
        report.add_note("42 responses");
        assert!(report.table("main").is_some());
        assert!(report.table("missing").is_none());
        assert!(report.series_named("timing").is_some());
        let text = report.to_text();
        assert!(text.contains("table1"));
        assert!(text.contains("[main]"));
        assert!(text.contains("42 responses"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(count_with_pct(72, 114), "72 (63.2%)");
        assert_eq!(count_with_pct(0, 0), "0 (0.0%)");
        assert_eq!(count_with_seconds(42, 39.42), "42 (39.4s)");
    }
}
