//! The end-to-end paper reproduction: run every experiment over one shared
//! scenario. The scenario is generated through the staged pipeline on the
//! reproduction's [`EngineContext`], and [`run_all`](PaperReproduction::run_all)
//! executes the twelve experiments on the same pool — each experiment is one
//! coarse task, and the sweeps inside it fan out again on the shared workers.

use crate::experiments::all_experiments;
pub use crate::experiments::Experiment;
use crate::report::Report;
use crate::scenario::{Scenario, ScenarioConfig};
use rws_engine::{EngineBackend, EngineContext};

/// Runs the full set of experiments over a lazily-generated scenario.
pub struct PaperReproduction {
    config: ScenarioConfig,
    engine: EngineContext,
    scenario: std::cell::OnceCell<Scenario>,
}

impl PaperReproduction {
    /// Create a reproduction for a configuration on the production engine.
    /// The scenario is generated on first use and shared across experiments.
    pub fn new(config: ScenarioConfig) -> PaperReproduction {
        PaperReproduction::with_engine(config, EngineContext::new())
    }

    /// Create a reproduction on an explicit engine — e.g.
    /// [`EngineContext::sequential`] for the equivalence tests and the
    /// pooled-vs-sequential bench.
    pub fn with_engine(config: ScenarioConfig, engine: EngineContext) -> PaperReproduction {
        PaperReproduction {
            config,
            engine,
            scenario: std::cell::OnceCell::new(),
        }
    }

    /// Create a reproduction with the paper-scale default configuration.
    pub fn with_defaults() -> PaperReproduction {
        PaperReproduction::new(ScenarioConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The engine the reproduction runs on.
    pub fn engine(&self) -> &EngineContext {
        &self.engine
    }

    /// The generated scenario (generating it on first access).
    pub fn scenario(&self) -> &Scenario {
        self.scenario
            .get_or_init(|| Scenario::generate_with(self.config, &self.engine))
    }

    /// The experiment ids available, in paper order.
    pub fn experiment_ids(&self) -> Vec<&'static str> {
        all_experiments().iter().map(|e| e.id()).collect()
    }

    /// Run one experiment by id. Returns `None` for unknown ids.
    pub fn run(&self, id: &str) -> Option<Report> {
        let experiment = all_experiments().into_iter().find(|e| e.id() == id)?;
        Some(experiment.run(self.scenario()))
    }

    /// Run every experiment, in paper order. The experiments execute
    /// concurrently on the engine's pool (one coarse task each); reports
    /// come back in paper order regardless of completion order.
    ///
    /// The sweep runs under the engine's
    /// [`SupervisionPolicy`](rws_engine::SupervisionPolicy): fail-fast by
    /// default (all twelve reports or a panic), or — under salvage — a
    /// panicking experiment is quarantined in the engine's monitor (see
    /// [`supervision_report`](Self::supervision_report)) and its report is
    /// simply missing from the result.
    pub fn run_all(&self) -> Vec<Report> {
        let scenario = self.scenario();
        let experiments = all_experiments();
        self.engine
            .par_map_supervised("experiment", &experiments, |_, experiment| {
                experiment.run(scenario)
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Everything the engine's monitor saw across the reproduction so far:
    /// scenario-stage sweeps, experiment sweeps, and any quarantined tasks.
    pub fn supervision_report(&self) -> rws_engine::SupervisionReport {
        self.engine.supervision_report()
    }

    /// Render every report as one text document — what the examples print
    /// and EXPERIMENTS.md is derived from. When a salvage run degraded
    /// (quarantined tasks or cap trips), a trailing section says so
    /// explicitly rather than letting a shortened document pass as
    /// complete.
    pub fn render_all(&self) -> String {
        let mut text = self
            .run_all()
            .iter()
            .map(Report::to_text)
            .collect::<Vec<_>>()
            .join("\n");
        let supervision = self.supervision_report();
        if supervision.degraded() {
            text.push_str(&format!(
                "\n=== supervision (degraded) ===\ntasks run: {}\nquarantined: {}\ncap trips: {}\n",
                supervision.tasks_run, supervision.quarantined, supervision.cap_trips
            ));
            for entry in &supervision.entries {
                text.push_str(&format!(
                    "quarantined {}[{}]: {}\n",
                    entry.stage, entry.index, entry.message
                ));
            }
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reproduction() -> PaperReproduction {
        PaperReproduction::new(ScenarioConfig::small(61))
    }

    #[test]
    fn run_all_produces_twelve_reports() {
        let repro = reproduction();
        let reports = repro.run_all();
        assert_eq!(reports.len(), 12);
        let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "table1", "table2", "table3", "figure1", "figure2", "figure3", "figure4",
                "figure5", "figure6", "figure7", "figure8", "figure9"
            ]
        );
    }

    #[test]
    fn run_by_id_and_unknown_id() {
        let repro = reproduction();
        assert!(repro.run("figure3").is_some());
        assert!(repro.run("figure99").is_none());
        assert_eq!(repro.experiment_ids().len(), 12);
    }

    #[test]
    fn scenario_is_generated_once_and_shared() {
        let repro = reproduction();
        let first = repro.scenario() as *const _;
        let _ = repro.run("table1");
        let second = repro.scenario() as *const _;
        assert_eq!(first, second);
    }

    #[test]
    fn render_all_contains_every_section() {
        let repro = reproduction();
        let text = repro.render_all();
        for id in repro.experiment_ids() {
            assert!(text.contains(&format!("=== {id} ")), "missing section {id}");
        }
        // Nothing panicked, so the degraded section must be absent even
        // though the monitor recorded the sweeps.
        assert!(!text.contains("supervision (degraded)"));
    }

    #[test]
    fn salvage_run_matches_fail_fast_when_nothing_panics() {
        use rws_engine::SupervisionPolicy;
        let fail_fast = reproduction().run_all();
        let repro = PaperReproduction::with_engine(
            ScenarioConfig::small(61),
            EngineContext::new().with_supervision(SupervisionPolicy::salvage()),
        );
        let salvaged = repro.run_all();
        assert_eq!(fail_fast, salvaged);
        let supervision = repro.supervision_report();
        assert!(supervision.tasks_run >= 12, "{supervision:?}");
        assert_eq!(supervision.quarantined, 0);
        assert!(!supervision.degraded());
        assert!(supervision.entries.is_empty());
    }
}
