//! Property-based tests for the HTML substrate.

use proptest::prelude::*;
use rws_html::similarity::{html_similarity, SimilarityWeights};
use rws_html::{class_set, jaccard, shingles, tag_sequence, tokenize, Token, Tokens, TokensFind};
use std::collections::BTreeSet;

/// Strategy producing small, nested, well-formed HTML snippets.
fn html_strategy() -> impl Strategy<Value = String> {
    let leaf = (
        "[a-z]{1,8}",
        proptest::option::of("[a-z]{1,6}( [a-z]{1,6}){0,2}"),
    )
        .prop_map(|(text, class)| match class {
            Some(c) => format!(r#"<p class="{c}">{text}</p>"#),
            None => format!("<p>{text}</p>"),
        });
    proptest::collection::vec(leaf, 0..10).prop_map(|parts| {
        format!(
            "<html><body><div class=\"wrap\">{}</div></body></html>",
            parts.join("")
        )
    })
}

proptest! {
    /// The tokenizer never panics on arbitrary input.
    #[test]
    fn tokenizer_total_on_arbitrary_input(input in ".{0,400}") {
        let _ = tokenize(&input);
        let _ = tag_sequence(&input);
        let _ = class_set(&input);
    }

    /// The zero-copy streaming tokenizer (SWAR scans) and the frozen
    /// find-based baseline both reproduce the owned oracle token for token
    /// on arbitrary (including malformed) input.
    #[test]
    fn streaming_tokenizer_equals_owned_on_arbitrary_input(input in ".{0,400}") {
        let owned = tokenize(&input);
        let streamed: Vec<Token> = Tokens::new(&input).map(|t| t.to_token()).collect();
        prop_assert_eq!(streamed, owned.clone());
        let baseline: Vec<Token> = TokensFind::new(&input).map(|t| t.to_token()).collect();
        prop_assert_eq!(baseline, owned);
    }

    /// Same equivalence on well-formed generated documents (tag soup with
    /// classes and text), where the stream should also borrow throughout.
    #[test]
    fn streaming_tokenizer_equals_owned_on_html(a in html_strategy()) {
        let owned = tokenize(&a);
        let streamed: Vec<Token> = Tokens::new(&a).map(|t| t.to_token()).collect();
        prop_assert_eq!(streamed, owned.clone());
        let baseline: Vec<Token> = TokensFind::new(&a).map(|t| t.to_token()).collect();
        prop_assert_eq!(baseline, owned);
    }

    /// All similarity scores stay in [0, 1] and a document compared with
    /// itself scores exactly 1 on every axis.
    #[test]
    fn similarity_bounded_and_reflexive(a in html_strategy(), b in html_strategy()) {
        let s = html_similarity(&a, &b, SimilarityWeights::default());
        prop_assert!((0.0..=1.0).contains(&s.style));
        prop_assert!((0.0..=1.0).contains(&s.structural));
        prop_assert!((0.0..=1.0).contains(&s.joint));

        let same = html_similarity(&a, &a, SimilarityWeights::default());
        prop_assert_eq!(same.style, 1.0);
        prop_assert_eq!(same.structural, 1.0);
        prop_assert!((same.joint - 1.0).abs() < 1e-12);
    }

    /// Similarity is symmetric in its two arguments.
    #[test]
    fn similarity_symmetric(a in html_strategy(), b in html_strategy()) {
        let ab = html_similarity(&a, &b, SimilarityWeights::default());
        let ba = html_similarity(&b, &a, SimilarityWeights::default());
        prop_assert!((ab.style - ba.style).abs() < 1e-12);
        prop_assert!((ab.structural - ba.structural).abs() < 1e-12);
        prop_assert!((ab.joint - ba.joint).abs() < 1e-12);
    }

    /// The joint score is always between min and max of its two components.
    #[test]
    fn joint_between_components(a in html_strategy(), b in html_strategy()) {
        let s = html_similarity(&a, &b, SimilarityWeights::default());
        let lo = s.style.min(s.structural) - 1e-12;
        let hi = s.style.max(s.structural) + 1e-12;
        prop_assert!(s.joint >= lo && s.joint <= hi);
    }

    /// Jaccard over shingles is bounded and reflexive for arbitrary tag
    /// sequences.
    #[test]
    fn shingle_jaccard_properties(seq_a in proptest::collection::vec("[a-z]{1,5}", 0..30), seq_b in proptest::collection::vec("[a-z]{1,5}", 0..30), k in 1usize..6) {
        let sa = shingles(&seq_a, k);
        let sb = shingles(&seq_b, k);
        let j = jaccard(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(jaccard(&sa, &sa), 1.0);
        // Number of shingles never exceeds the sequence length.
        prop_assert!(sa.len() <= seq_a.len().max(1));
    }

    /// Hashed shingle profiles reproduce the owned-set Jaccard exactly, on
    /// random tag sequences and every shingle size.
    #[test]
    fn hashed_profile_equals_btreeset_jaccard(
        seq_a in proptest::collection::vec("[a-z]{1,5}", 0..40),
        seq_b in proptest::collection::vec("[a-z]{1,5}", 0..40),
        k in 1usize..7,
    ) {
        use rws_html::ShingleProfile;
        let naive = jaccard(&shingles(&seq_a, k), &shingles(&seq_b, k));
        let pa = ShingleProfile::from_items(&seq_a, k);
        let pb = ShingleProfile::from_items(&seq_b, k);
        prop_assert!((pa.jaccard(&pb) - naive).abs() < 1e-12,
            "hashed {} vs naive {} on {:?} / {:?} k={}", pa.jaccard(&pb), naive, seq_a, seq_b, k);
        // Shingle counts agree with the owned-set representation too.
        prop_assert_eq!(pa.len(), shingles(&seq_a, k).len());
    }

    /// The profile-based similarity pipeline equals the owned-set oracle on
    /// generated documents.
    #[test]
    fn profile_similarity_equals_naive(a in html_strategy(), b in html_strategy()) {
        use rws_html::similarity::html_similarity_naive;
        let weights = SimilarityWeights::default();
        let fast = html_similarity(&a, &b, weights);
        let naive = html_similarity_naive(&a, &b, weights);
        prop_assert!((fast.style - naive.style).abs() < 1e-12);
        prop_assert!((fast.structural - naive.structural).abs() < 1e-12);
        prop_assert!((fast.joint - naive.joint).abs() < 1e-12);
    }

    /// Precomputed profiles reused across pairs give the same answers as
    /// fresh per-pair computation (the Figure 4 sweep's reuse pattern).
    #[test]
    fn profile_reuse_is_sound(docs in proptest::collection::vec(html_strategy(), 2..5)) {
        use rws_html::DocumentProfile;
        let weights = SimilarityWeights::default();
        let profiles: Vec<DocumentProfile> =
            docs.iter().map(|d| DocumentProfile::new(d, weights)).collect();
        for i in 0..docs.len() {
            for j in 0..docs.len() {
                let reused = profiles[i].similarity(&profiles[j], weights);
                let fresh = html_similarity(&docs[i], &docs[j], weights);
                prop_assert_eq!(reused, fresh);
            }
        }
    }

    /// Class extraction returns exactly the classes present in generated HTML.
    #[test]
    fn class_extraction_matches_generation(classes in proptest::collection::btree_set("[a-z]{2,8}", 0..8)) {
        let html = classes
            .iter()
            .map(|c| format!(r#"<div class="{c}">x</div>"#))
            .collect::<Vec<_>>()
            .join("");
        let extracted: BTreeSet<String> = class_set(&html);
        prop_assert_eq!(extracted, classes);
    }
}
