//! The three HTML similarity metrics of Figure 4.
//!
//! Following the `html-similarity` library the paper uses:
//!
//! * **structural similarity** compares the documents' tag sequences via
//!   Jaccard similarity over k-shingles (default `k = 4`) of the sequence;
//! * **style similarity** is the Jaccard similarity of the documents' CSS
//!   class sets;
//! * **joint similarity** is `k · structural + (1 − k) · style` with the
//!   library's default weighting `k = 0.3`.

use crate::extract::{class_set, tag_sequence};
use crate::shingle::{jaccard, shingles};
use serde::{Deserialize, Serialize};

/// Weights and parameters for the joint similarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityWeights {
    /// Weight of the structural component in the joint score (the
    /// `html-similarity` `k` parameter; its default is 0.3).
    pub structural_weight: f64,
    /// Shingle length used when comparing tag sequences.
    pub shingle_size: usize,
}

impl Default for SimilarityWeights {
    fn default() -> Self {
        SimilarityWeights {
            structural_weight: 0.3,
            shingle_size: 4,
        }
    }
}

impl SimilarityWeights {
    /// Validate the weights: the structural weight must lie in `[0, 1]` and
    /// the shingle size must be positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.structural_weight) {
            return Err(format!(
                "structural_weight must be in [0,1], got {}",
                self.structural_weight
            ));
        }
        if self.shingle_size == 0 {
            return Err("shingle_size must be positive".to_string());
        }
        Ok(())
    }
}

/// The result of comparing two HTML documents — one point of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HtmlSimilarity {
    /// Style similarity (CSS class Jaccard), in `[0, 1]`.
    pub style: f64,
    /// Structural similarity (tag-sequence shingle Jaccard), in `[0, 1]`.
    pub structural: f64,
    /// Joint similarity (weighted sum), in `[0, 1]`.
    pub joint: f64,
}

/// Style similarity: Jaccard similarity of the two documents' class sets.
pub fn style_similarity(html_a: &str, html_b: &str) -> f64 {
    let a = class_set(html_a);
    let b = class_set(html_b);
    jaccard(&a, &b)
}

/// Structural similarity: Jaccard similarity of k-shingles of the two
/// documents' tag sequences.
pub fn structural_similarity(html_a: &str, html_b: &str, shingle_size: usize) -> f64 {
    let a = shingles(&tag_sequence(html_a), shingle_size);
    let b = shingles(&tag_sequence(html_b), shingle_size);
    jaccard(&a, &b)
}

/// Compute all three metrics for a pair of documents.
pub fn html_similarity(html_a: &str, html_b: &str, weights: SimilarityWeights) -> HtmlSimilarity {
    weights
        .validate()
        .expect("invalid similarity weights supplied");
    let style = style_similarity(html_a, html_b);
    let structural = structural_similarity(html_a, html_b, weights.shingle_size);
    let joint = weights.structural_weight * structural + (1.0 - weights.structural_weight) * style;
    HtmlSimilarity {
        style,
        structural,
        joint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE_A: &str = r#"
        <html><body>
          <div class="nav brand"><a class="logo" href="/">Home</a></div>
          <div class="content"><p class="story">Alpha</p><p class="story">Beta</p></div>
          <div class="footer"><span class="copyright">2024</span></div>
        </body></html>"#;

    /// Same template as PAGE_A, different text.
    const PAGE_A2: &str = r#"
        <html><body>
          <div class="nav brand"><a class="logo" href="/">Start</a></div>
          <div class="content"><p class="story">Gamma</p><p class="story">Delta</p></div>
          <div class="footer"><span class="copyright">2024</span></div>
        </body></html>"#;

    /// A completely different template.
    const PAGE_B: &str = r#"
        <html><body>
          <table class="products"><tr><td class="sku">1</td><td class="price">9.99</td></tr></table>
          <form class="checkout"><input name="qty"><button class="buy">Buy</button></form>
        </body></html>"#;

    #[test]
    fn identical_documents_score_one() {
        let s = html_similarity(PAGE_A, PAGE_A, SimilarityWeights::default());
        assert_eq!(s.style, 1.0);
        assert_eq!(s.structural, 1.0);
        assert!((s.joint - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_template_different_text_scores_high() {
        let s = html_similarity(PAGE_A, PAGE_A2, SimilarityWeights::default());
        assert_eq!(s.style, 1.0, "class sets identical");
        assert_eq!(s.structural, 1.0, "tag sequences identical");
    }

    #[test]
    fn different_templates_score_low() {
        let s = html_similarity(PAGE_A, PAGE_B, SimilarityWeights::default());
        assert_eq!(s.style, 0.0, "no shared classes");
        assert!(s.structural < 0.3, "structures differ: {}", s.structural);
        assert!(s.joint < 0.3);
    }

    #[test]
    fn joint_is_weighted_sum() {
        let w = SimilarityWeights {
            structural_weight: 0.3,
            shingle_size: 4,
        };
        let s = html_similarity(PAGE_A, PAGE_B, w);
        let expected = 0.3 * s.structural + 0.7 * s.style;
        assert!((s.joint - expected).abs() < 1e-12);
    }

    #[test]
    fn extreme_weights_select_single_component() {
        let only_structural = SimilarityWeights {
            structural_weight: 1.0,
            shingle_size: 4,
        };
        let only_style = SimilarityWeights {
            structural_weight: 0.0,
            shingle_size: 4,
        };
        let s1 = html_similarity(PAGE_A, PAGE_A2, only_structural);
        let s2 = html_similarity(PAGE_A, PAGE_A2, only_style);
        assert_eq!(s1.joint, s1.structural);
        assert_eq!(s2.joint, s2.style);
    }

    #[test]
    fn empty_documents_conventions() {
        let s = html_similarity("", "", SimilarityWeights::default());
        assert_eq!(s.style, 1.0);
        assert_eq!(s.structural, 1.0);
        let s = html_similarity(PAGE_A, "", SimilarityWeights::default());
        assert_eq!(s.style, 0.0);
        assert_eq!(s.structural, 0.0);
    }

    #[test]
    fn weights_validation() {
        assert!(SimilarityWeights::default().validate().is_ok());
        assert!(SimilarityWeights {
            structural_weight: 1.5,
            shingle_size: 4
        }
        .validate()
        .is_err());
        assert!(SimilarityWeights {
            structural_weight: 0.3,
            shingle_size: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid similarity weights")]
    fn invalid_weights_panic_when_used() {
        html_similarity(
            PAGE_A,
            PAGE_B,
            SimilarityWeights {
                structural_weight: 2.0,
                shingle_size: 4,
            },
        );
    }
}
