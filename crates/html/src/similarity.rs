//! The three HTML similarity metrics of Figure 4.
//!
//! Following the `html-similarity` library the paper uses:
//!
//! * **structural similarity** compares the documents' tag sequences via
//!   Jaccard similarity over k-shingles (default `k = 4`) of the sequence;
//! * **style similarity** is the Jaccard similarity of the documents' CSS
//!   class sets;
//! * **joint similarity** is `k · structural + (1 − k) · style` with the
//!   library's default weighting `k = 0.3`.

use crate::extract::{class_set, tag_sequence};
use crate::shingle::{hash_token, jaccard, jaccard_sorted, shingles, ShingleProfile};
use crate::tokenizer::{StreamToken, Tokens};
use serde::{Deserialize, Serialize};

/// Weights and parameters for the joint similarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityWeights {
    /// Weight of the structural component in the joint score (the
    /// `html-similarity` `k` parameter; its default is 0.3).
    pub structural_weight: f64,
    /// Shingle length used when comparing tag sequences.
    pub shingle_size: usize,
}

impl Default for SimilarityWeights {
    fn default() -> Self {
        SimilarityWeights {
            structural_weight: 0.3,
            shingle_size: 4,
        }
    }
}

impl SimilarityWeights {
    /// Validate the weights: the structural weight must lie in `[0, 1]` and
    /// the shingle size must be positive.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.structural_weight) {
            return Err(format!(
                "structural_weight must be in [0,1], got {}",
                self.structural_weight
            ));
        }
        if self.shingle_size == 0 {
            return Err("shingle_size must be positive".to_string());
        }
        Ok(())
    }
}

/// The result of comparing two HTML documents — one point of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HtmlSimilarity {
    /// Style similarity (CSS class Jaccard), in `[0, 1]`.
    pub style: f64,
    /// Structural similarity (tag-sequence shingle Jaccard), in `[0, 1]`.
    pub structural: f64,
    /// Joint similarity (weighted sum), in `[0, 1]`.
    pub joint: f64,
}

/// A document's similarity features, extracted once and reused across every
/// pairwise comparison: the hashed CSS-class set and the hashed tag-sequence
/// shingle set.
///
/// The Figure 4 sweep compares every member against its primary; building a
/// `DocumentProfile` per document first means each document is tokenized,
/// shingled and hashed exactly once instead of once per pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentProfile {
    /// Sorted, deduplicated hashes of the CSS classes used anywhere.
    classes: Vec<u64>,
    /// Rolling-hashed k-gram set over the opening-tag sequence.
    shingle: ShingleProfile,
}

/// Reusable buffers for [`DocumentProfile::with_scratch`]: the tag-hash and
/// class-hash accumulators grow to the largest document seen and are then
/// recycled across a sweep, so profiling N documents performs N result
/// allocations instead of N geometric-growth reallocation chains. Designed
/// for `par_map_with`, which hands each pool worker its own clone.
#[derive(Debug, Clone, Default)]
pub struct ProfileScratch {
    tag_hashes: Vec<u64>,
    classes: Vec<u64>,
}

impl DocumentProfile {
    /// Extract a profile in a single tokenizer pass.
    pub fn new(html: &str, weights: SimilarityWeights) -> DocumentProfile {
        DocumentProfile::with_scratch(html, weights, &mut ProfileScratch::default())
    }

    /// Like [`new`](Self::new), reusing the caller's scratch buffers. The
    /// result is identical for any scratch state.
    ///
    /// Runs on the zero-copy streaming tokenizer: one pass over the
    /// document, hashing tag names and class names straight out of the
    /// borrowed token stream without materialising an owned token vector.
    pub fn with_scratch(
        html: &str,
        weights: SimilarityWeights,
        scratch: &mut ProfileScratch,
    ) -> DocumentProfile {
        weights
            .validate()
            .expect("invalid similarity weights supplied");
        scratch.tag_hashes.clear();
        scratch.classes.clear();
        for token in Tokens::new(html) {
            if let StreamToken::Open {
                name, attributes, ..
            } = token
            {
                scratch.tag_hashes.push(hash_token(name.as_bytes()));
                if let Some(class_attr) = attributes.get("class") {
                    for class in class_attr.split_whitespace() {
                        scratch.classes.push(hash_token(class.as_bytes()));
                    }
                }
            }
        }
        scratch.classes.sort_unstable();
        scratch.classes.dedup();
        DocumentProfile {
            classes: scratch.classes.clone(),
            shingle: ShingleProfile::from_token_hashes(&scratch.tag_hashes, weights.shingle_size),
        }
    }

    /// Number of distinct CSS classes seen.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Style similarity against another profile.
    pub fn style_similarity(&self, other: &DocumentProfile) -> f64 {
        jaccard_sorted(&self.classes, &other.classes)
    }

    /// Structural similarity against another profile.
    pub fn structural_similarity(&self, other: &DocumentProfile) -> f64 {
        self.shingle.jaccard(&other.shingle)
    }

    /// All three metrics against another profile.
    pub fn similarity(
        &self,
        other: &DocumentProfile,
        weights: SimilarityWeights,
    ) -> HtmlSimilarity {
        weights
            .validate()
            .expect("invalid similarity weights supplied");
        let style = self.style_similarity(other);
        let structural = self.structural_similarity(other);
        let joint =
            weights.structural_weight * structural + (1.0 - weights.structural_weight) * style;
        HtmlSimilarity {
            style,
            structural,
            joint,
        }
    }
}

/// Style similarity: Jaccard similarity of the two documents' class sets.
pub fn style_similarity(html_a: &str, html_b: &str) -> f64 {
    let weights = SimilarityWeights::default();
    DocumentProfile::new(html_a, weights).style_similarity(&DocumentProfile::new(html_b, weights))
}

/// Structural similarity: Jaccard similarity of k-shingles of the two
/// documents' tag sequences.
pub fn structural_similarity(html_a: &str, html_b: &str, shingle_size: usize) -> f64 {
    let weights = SimilarityWeights {
        shingle_size,
        ..SimilarityWeights::default()
    };
    DocumentProfile::new(html_a, weights)
        .structural_similarity(&DocumentProfile::new(html_b, weights))
}

/// Compute all three metrics for a pair of documents.
///
/// Convenience wrapper building both [`DocumentProfile`]s on the spot; the
/// N×N sweeps precompute profiles instead.
pub fn html_similarity(html_a: &str, html_b: &str, weights: SimilarityWeights) -> HtmlSimilarity {
    weights
        .validate()
        .expect("invalid similarity weights supplied");
    DocumentProfile::new(html_a, weights)
        .similarity(&DocumentProfile::new(html_b, weights), weights)
}

/// The original owned-set implementation, kept as the oracle the property
/// tests compare the hashed profiles against. Allocates heavily; not for
/// hot paths.
#[doc(hidden)]
pub fn html_similarity_naive(
    html_a: &str,
    html_b: &str,
    weights: SimilarityWeights,
) -> HtmlSimilarity {
    weights
        .validate()
        .expect("invalid similarity weights supplied");
    let style = jaccard(&class_set(html_a), &class_set(html_b));
    let structural = jaccard(
        &shingles(&tag_sequence(html_a), weights.shingle_size),
        &shingles(&tag_sequence(html_b), weights.shingle_size),
    );
    let joint = weights.structural_weight * structural + (1.0 - weights.structural_weight) * style;
    HtmlSimilarity {
        style,
        structural,
        joint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE_A: &str = r#"
        <html><body>
          <div class="nav brand"><a class="logo" href="/">Home</a></div>
          <div class="content"><p class="story">Alpha</p><p class="story">Beta</p></div>
          <div class="footer"><span class="copyright">2024</span></div>
        </body></html>"#;

    /// Same template as PAGE_A, different text.
    const PAGE_A2: &str = r#"
        <html><body>
          <div class="nav brand"><a class="logo" href="/">Start</a></div>
          <div class="content"><p class="story">Gamma</p><p class="story">Delta</p></div>
          <div class="footer"><span class="copyright">2024</span></div>
        </body></html>"#;

    /// A completely different template.
    const PAGE_B: &str = r#"
        <html><body>
          <table class="products"><tr><td class="sku">1</td><td class="price">9.99</td></tr></table>
          <form class="checkout"><input name="qty"><button class="buy">Buy</button></form>
        </body></html>"#;

    #[test]
    fn identical_documents_score_one() {
        let s = html_similarity(PAGE_A, PAGE_A, SimilarityWeights::default());
        assert_eq!(s.style, 1.0);
        assert_eq!(s.structural, 1.0);
        assert!((s.joint - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_template_different_text_scores_high() {
        let s = html_similarity(PAGE_A, PAGE_A2, SimilarityWeights::default());
        assert_eq!(s.style, 1.0, "class sets identical");
        assert_eq!(s.structural, 1.0, "tag sequences identical");
    }

    #[test]
    fn different_templates_score_low() {
        let s = html_similarity(PAGE_A, PAGE_B, SimilarityWeights::default());
        assert_eq!(s.style, 0.0, "no shared classes");
        assert!(s.structural < 0.3, "structures differ: {}", s.structural);
        assert!(s.joint < 0.3);
    }

    #[test]
    fn joint_is_weighted_sum() {
        let w = SimilarityWeights {
            structural_weight: 0.3,
            shingle_size: 4,
        };
        let s = html_similarity(PAGE_A, PAGE_B, w);
        let expected = 0.3 * s.structural + 0.7 * s.style;
        assert!((s.joint - expected).abs() < 1e-12);
    }

    #[test]
    fn extreme_weights_select_single_component() {
        let only_structural = SimilarityWeights {
            structural_weight: 1.0,
            shingle_size: 4,
        };
        let only_style = SimilarityWeights {
            structural_weight: 0.0,
            shingle_size: 4,
        };
        let s1 = html_similarity(PAGE_A, PAGE_A2, only_structural);
        let s2 = html_similarity(PAGE_A, PAGE_A2, only_style);
        assert_eq!(s1.joint, s1.structural);
        assert_eq!(s2.joint, s2.style);
    }

    #[test]
    fn empty_documents_conventions() {
        let s = html_similarity("", "", SimilarityWeights::default());
        assert_eq!(s.style, 1.0);
        assert_eq!(s.structural, 1.0);
        let s = html_similarity(PAGE_A, "", SimilarityWeights::default());
        assert_eq!(s.style, 0.0);
        assert_eq!(s.structural, 0.0);
    }

    #[test]
    fn weights_validation() {
        assert!(SimilarityWeights::default().validate().is_ok());
        assert!(SimilarityWeights {
            structural_weight: 1.5,
            shingle_size: 4
        }
        .validate()
        .is_err());
        assert!(SimilarityWeights {
            structural_weight: 0.3,
            shingle_size: 0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn profiles_match_naive_implementation() {
        let weights = SimilarityWeights::default();
        for (a, b) in [
            (PAGE_A, PAGE_A),
            (PAGE_A, PAGE_A2),
            (PAGE_A, PAGE_B),
            (PAGE_A2, PAGE_B),
            (PAGE_A, ""),
            ("", ""),
        ] {
            let fast = html_similarity(a, b, weights);
            let naive = html_similarity_naive(a, b, weights);
            assert!((fast.style - naive.style).abs() < 1e-12);
            assert!((fast.structural - naive.structural).abs() < 1e-12);
            assert!((fast.joint - naive.joint).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_reuse_matches_direct_comparison() {
        let weights = SimilarityWeights::default();
        let pa = DocumentProfile::new(PAGE_A, weights);
        let pb = DocumentProfile::new(PAGE_B, weights);
        let via_profiles = pa.similarity(&pb, weights);
        let direct = html_similarity(PAGE_A, PAGE_B, weights);
        assert_eq!(via_profiles, direct);
        assert!(pa.class_count() > 0);
    }

    #[test]
    #[should_panic(expected = "invalid similarity weights")]
    fn invalid_weights_panic_when_used() {
        html_similarity(
            PAGE_A,
            PAGE_B,
            SimilarityWeights {
                structural_weight: 2.0,
                shingle_size: 4,
            },
        );
    }
}
