//! Feature extraction from tokenized HTML: tag sequences, class sets, text
//! and titles.
//!
//! Every extractor here runs on the zero-copy streaming tokenizer
//! ([`Tokens`]): the document is scanned once and only the strings that end
//! up in the result are allocated. The owned [`crate::tokenizer::tokenize`]
//! remains the equivalence oracle the property tests compare the stream
//! against.

use crate::tokenizer::{StreamToken, Tokens};
use std::collections::BTreeSet;

/// The sequence of opening-tag names in document order — the input to the
/// structural similarity metric.
pub fn tag_sequence(html: &str) -> Vec<String> {
    Tokens::new(html)
        .filter_map(|t| match t {
            StreamToken::Open { name, .. } => Some(name.into_owned()),
            _ => None,
        })
        .collect()
}

/// The set of CSS class names used anywhere in the document — the input to
/// the style similarity metric.
pub fn class_set(html: &str) -> BTreeSet<String> {
    let mut classes = BTreeSet::new();
    for token in Tokens::new(html) {
        if let StreamToken::Open { attributes, .. } = token {
            if let Some(class_attr) = attributes.get("class") {
                for class in class_attr.split_whitespace() {
                    classes.insert(class.to_string());
                }
            }
        }
    }
    classes
}

/// All visible text content, whitespace-normalised and joined with spaces.
/// Script/style contents are excluded by the tokenizer.
pub fn text_content(html: &str) -> String {
    let mut text = String::new();
    for token in Tokens::new(html) {
        if let StreamToken::Text(part) = token {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&part);
        }
    }
    text
}

/// The contents of the `<title>` element, if present: every text run inside
/// the element, joined with spaces (markup nested in the title contributes
/// its text too, matching how browsers render `<title>A<b>B</b>C</title>`
/// as "A B C").
pub fn title(html: &str) -> Option<String> {
    let mut in_title = false;
    let mut parts: Vec<String> = Vec::new();
    for token in Tokens::new(html) {
        match token {
            StreamToken::Open { ref name, .. } if name == "title" => in_title = true,
            StreamToken::Close { ref name } if name == "title" => {
                if !parts.is_empty() {
                    return Some(parts.join(" "));
                }
                in_title = false;
            }
            StreamToken::Text(text) if in_title => parts.push(text.into_owned()),
            _ => {}
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        <html><head><title>Example News</title></head>
        <body>
          <div class="header brand-red">
            <h1 class="site-title">Example</h1>
          </div>
          <div class="content">
            <p class="article lead">Story one</p>
            <p class="article">Story two</p>
          </div>
          <script>ignored()</script>
        </body></html>"#;

    #[test]
    fn tag_sequence_in_document_order() {
        let seq = tag_sequence(SAMPLE);
        assert_eq!(
            seq,
            vec!["html", "head", "title", "body", "div", "h1", "div", "p", "p", "script"]
        );
    }

    #[test]
    fn class_set_collects_all_classes() {
        let classes = class_set(SAMPLE);
        let expected: BTreeSet<String> = [
            "header",
            "brand-red",
            "site-title",
            "content",
            "article",
            "lead",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(classes, expected);
    }

    #[test]
    fn class_set_empty_when_no_classes() {
        assert!(class_set("<div><p>plain</p></div>").is_empty());
    }

    #[test]
    fn text_content_excludes_scripts_and_collapses_whitespace() {
        let text = text_content(SAMPLE);
        assert!(text.contains("Story one"));
        assert!(text.contains("Example News"));
        assert!(!text.contains("ignored"));
    }

    #[test]
    fn title_extraction() {
        assert_eq!(title(SAMPLE), Some("Example News".to_string()));
        assert_eq!(title("<html><body>no title</body></html>"), None);
    }

    #[test]
    fn title_joins_all_text_runs() {
        // Markup nested inside <title> splits its contents into several
        // text tokens; all of them belong to the title.
        assert_eq!(
            title("<title>Breaking <em>news</em> today</title>"),
            Some("Breaking news today".to_string())
        );
        // An unterminated title still yields its text.
        assert_eq!(
            title("<title>Dangling words"),
            Some("Dangling words".to_string())
        );
        // An empty first title does not hide a later one.
        assert_eq!(
            title("<title></title><title>Second</title>"),
            Some("Second".to_string())
        );
    }

    #[test]
    fn duplicate_classes_deduplicated() {
        let html = r#"<div class="a b"><span class="a">x</span></div>"#;
        let classes = class_set(html);
        assert_eq!(classes.len(), 2);
    }
}
