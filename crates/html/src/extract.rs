//! Feature extraction from tokenized HTML: tag sequences, class sets, text
//! and titles.

use crate::tokenizer::{tokenize, Token};
use std::collections::BTreeSet;

/// The sequence of opening-tag names in document order — the input to the
/// structural similarity metric.
pub fn tag_sequence(html: &str) -> Vec<String> {
    tokenize(html)
        .into_iter()
        .filter_map(|t| match t {
            Token::Open { name, .. } => Some(name),
            _ => None,
        })
        .collect()
}

/// The set of CSS class names used anywhere in the document — the input to
/// the style similarity metric.
pub fn class_set(html: &str) -> BTreeSet<String> {
    let mut classes = BTreeSet::new();
    for token in tokenize(html) {
        if let Token::Open { attributes, .. } = token {
            if let Some(class_attr) = attributes.get("class") {
                for class in class_attr.split_whitespace() {
                    classes.insert(class.to_string());
                }
            }
        }
    }
    classes
}

/// All visible text content, whitespace-normalised and joined with spaces.
/// Script/style contents are excluded by the tokenizer.
pub fn text_content(html: &str) -> String {
    tokenize(html)
        .into_iter()
        .filter_map(|t| match t {
            Token::Text(text) => Some(text),
            _ => None,
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The contents of the `<title>` element, if present.
pub fn title(html: &str) -> Option<String> {
    let tokens = tokenize(html);
    let mut in_title = false;
    for token in tokens {
        match token {
            Token::Open { ref name, .. } if name == "title" => in_title = true,
            Token::Close { ref name } if name == "title" => in_title = false,
            Token::Text(text) if in_title => return Some(text),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        <html><head><title>Example News</title></head>
        <body>
          <div class="header brand-red">
            <h1 class="site-title">Example</h1>
          </div>
          <div class="content">
            <p class="article lead">Story one</p>
            <p class="article">Story two</p>
          </div>
          <script>ignored()</script>
        </body></html>"#;

    #[test]
    fn tag_sequence_in_document_order() {
        let seq = tag_sequence(SAMPLE);
        assert_eq!(
            seq,
            vec!["html", "head", "title", "body", "div", "h1", "div", "p", "p", "script"]
        );
    }

    #[test]
    fn class_set_collects_all_classes() {
        let classes = class_set(SAMPLE);
        let expected: BTreeSet<String> = [
            "header",
            "brand-red",
            "site-title",
            "content",
            "article",
            "lead",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(classes, expected);
    }

    #[test]
    fn class_set_empty_when_no_classes() {
        assert!(class_set("<div><p>plain</p></div>").is_empty());
    }

    #[test]
    fn text_content_excludes_scripts_and_collapses_whitespace() {
        let text = text_content(SAMPLE);
        assert!(text.contains("Story one"));
        assert!(text.contains("Example News"));
        assert!(!text.contains("ignored"));
    }

    #[test]
    fn title_extraction() {
        assert_eq!(title(SAMPLE), Some("Example News".to_string()));
        assert_eq!(title("<html><body>no title</body></html>"), None);
    }

    #[test]
    fn duplicate_classes_deduplicated() {
        let html = r#"<div class="a b"><span class="a">x</span></div>"#;
        let classes = class_set(html);
        assert_eq!(classes.len(), 2);
    }
}
