//! A forgiving HTML tokenizer.
//!
//! Real-world HTML — which is what the paper's similarity analysis runs on —
//! is rarely well-formed, so this tokenizer never fails: it scans the input
//! once and produces a stream of [`Token`]s, skipping comments, doctypes and
//! the contents of `<script>`/`<style>` elements (their text would otherwise
//! pollute the text extraction), and tolerating unquoted or missing
//! attribute values.

use rws_stats::swar::{find_byte, has_ascii_uppercase, is_collapsed_ascii, scan_text_run};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// A single HTML token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// An opening (or self-closing) tag with its attributes.
    Open {
        /// Lower-cased tag name.
        name: String,
        /// Attribute map (names lower-cased; value empty for bare attributes).
        attributes: BTreeMap<String, String>,
        /// True for `<br/>`-style self-closing syntax or void elements.
        self_closing: bool,
    },
    /// A closing tag.
    Close {
        /// Lower-cased tag name.
        name: String,
    },
    /// A run of text between tags (entity references left as-is).
    Text(String),
}

/// HTML void elements, which never have closing tags.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Elements whose raw text content is skipped entirely.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

/// Tokenize an HTML document.
pub fn tokenize(html: &str) -> Vec<Token> {
    let bytes = html.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let len = bytes.len();

    while i < len {
        if bytes[i] == b'<' {
            // Comment?
            if html[i..].starts_with("<!--") {
                match html[i + 4..].find("-->") {
                    Some(end) => {
                        i = i + 4 + end + 3;
                    }
                    None => break,
                }
                continue;
            }
            // Doctype or other declaration?
            if html[i..].starts_with("<!") || html[i..].starts_with("<?") {
                match html[i..].find('>') {
                    Some(end) => {
                        i += end + 1;
                    }
                    None => break,
                }
                continue;
            }
            // Find the end of the tag.
            let Some(rel_end) = html[i..].find('>') else {
                // Unterminated tag: treat the rest as text.
                push_text(&mut tokens, &html[i..]);
                break;
            };
            let tag_body = &html[i + 1..i + rel_end];
            i += rel_end + 1;
            if tag_body.is_empty() {
                continue;
            }
            if let Some(name) = tag_body.strip_prefix('/') {
                let name = name.trim().to_ascii_lowercase();
                if !name.is_empty() {
                    tokens.push(Token::Close { name });
                }
                continue;
            }
            let (name, attributes, explicit_self_close) = parse_tag_body(tag_body);
            if name.is_empty() {
                continue;
            }
            let self_closing = explicit_self_close || VOID_ELEMENTS.contains(&name.as_str());
            let is_raw_text = RAW_TEXT_ELEMENTS.contains(&name.as_str());
            tokens.push(Token::Open {
                name: name.clone(),
                attributes,
                self_closing,
            });
            // Skip the raw content of <script>/<style> up to the matching
            // closing tag.
            if is_raw_text && !self_closing {
                let close_marker = format!("</{name}");
                if let Some(rel) = html[i..].to_ascii_lowercase().find(&close_marker) {
                    i += rel;
                    if let Some(end) = html[i..].find('>') {
                        tokens.push(Token::Close { name });
                        i += end + 1;
                    }
                } else {
                    // Unterminated raw-text element: consume to the end.
                    break;
                }
            }
        } else {
            let next_tag = html[i..].find('<').map(|o| i + o).unwrap_or(len);
            push_text(&mut tokens, &html[i..next_tag]);
            i = next_tag;
        }
    }
    tokens
}

fn push_text(tokens: &mut Vec<Token>, raw: &str) {
    let collapsed = raw.split_whitespace().collect::<Vec<_>>().join(" ");
    if !collapsed.is_empty() {
        tokens.push(Token::Text(collapsed));
    }
}

/// Parse the inside of a tag: name, attributes, self-closing marker.
fn parse_tag_body(body: &str) -> (String, BTreeMap<String, String>, bool) {
    let body = body.trim();
    let (body, self_closing) = match body.strip_suffix('/') {
        Some(rest) => (rest.trim(), true),
        None => (body, false),
    };
    // Tag name: up to the first whitespace.
    let mut name_end = body.len();
    for (idx, c) in body.char_indices() {
        if c.is_whitespace() {
            name_end = idx;
            break;
        }
    }
    let name = body[..name_end].to_ascii_lowercase();
    let mut attributes = BTreeMap::new();
    let attr_str = &body[name_end..];
    let mut rest = attr_str.trim_start();
    while !rest.is_empty() {
        // Attribute name.
        let name_len = rest
            .find(|c: char| c == '=' || c.is_whitespace())
            .unwrap_or(rest.len());
        let attr_name = rest[..name_len].trim().to_ascii_lowercase();
        rest = rest[name_len..].trim_start();
        if attr_name.is_empty() {
            // Defensive: skip a stray character to guarantee progress.
            rest = &rest[rest.len().min(1)..];
            continue;
        }
        if let Some(after_eq) = rest.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            let (value, remainder) = if let Some(q) = after_eq.strip_prefix('"') {
                match q.find('"') {
                    Some(end) => (q[..end].to_string(), &q[end + 1..]),
                    None => (q.to_string(), ""),
                }
            } else if let Some(q) = after_eq.strip_prefix('\'') {
                match q.find('\'') {
                    Some(end) => (q[..end].to_string(), &q[end + 1..]),
                    None => (q.to_string(), ""),
                }
            } else {
                let end = after_eq.find(char::is_whitespace).unwrap_or(after_eq.len());
                (after_eq[..end].to_string(), &after_eq[end..])
            };
            attributes.insert(attr_name, value);
            rest = remainder.trim_start();
        } else {
            // Bare attribute (e.g. `disabled`).
            attributes.insert(attr_name, String::new());
        }
    }
    (name, attributes, self_closing)
}

/// A borrowed HTML token, produced by the zero-copy streaming tokenizer
/// [`Tokens`].
///
/// Where [`Token`] owns its strings, every string here is a [`Cow`]
/// borrowing straight from the input document; the owned variant is only
/// taken for the rare fix-ups the tokenizer performs (lower-casing a tag
/// written in upper case, collapsing a whitespace run inside text).
/// Attributes are not parsed at all until asked for: [`RawAttrs`] keeps the
/// raw slice of the tag body and parses it lazily, so a consumer that only
/// reads tag names and text never touches attribute syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamToken<'a> {
    /// An opening (or self-closing) tag.
    Open {
        /// Lower-cased tag name (borrowed when already lower-case).
        name: Cow<'a, str>,
        /// The unparsed attribute portion of the tag body.
        attributes: RawAttrs<'a>,
        /// True for `<br/>`-style self-closing syntax or void elements.
        self_closing: bool,
    },
    /// A closing tag.
    Close {
        /// Lower-cased tag name.
        name: Cow<'a, str>,
    },
    /// A run of text between tags, whitespace-collapsed (borrowed when the
    /// source was already collapsed).
    Text(Cow<'a, str>),
}

impl StreamToken<'_> {
    /// Convert to the owned [`Token`] representation. The result is exactly
    /// what [`tokenize`] produces for the same input position — the
    /// equivalence the property tests assert.
    pub fn to_token(&self) -> Token {
        match self {
            StreamToken::Open {
                name,
                attributes,
                self_closing,
            } => Token::Open {
                name: name.clone().into_owned(),
                attributes: attributes
                    .iter()
                    .map(|(n, v)| (n.into_owned(), v.into_owned()))
                    .collect(),
                self_closing: *self_closing,
            },
            StreamToken::Close { name } => Token::Close {
                name: name.clone().into_owned(),
            },
            StreamToken::Text(text) => Token::Text(text.clone().into_owned()),
        }
    }
}

/// The unparsed attribute section of an open tag, between the tag name and
/// the closing `>`. Attribute syntax is only scanned when [`get`](Self::get)
/// or [`iter`](Self::iter) is called, and both borrow names and values from
/// the document (names are lower-cased through a [`Cow`] when needed).
///
/// Equality compares the raw underlying slice, not the parsed attribute
/// map; two differently-written tags with the same attributes compare
/// unequal here but equal after [`StreamToken::to_token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RawAttrs<'a> {
    raw: &'a str,
}

impl<'a> RawAttrs<'a> {
    /// The value of an attribute, if present. Duplicate attribute names
    /// resolve to the last occurrence, matching the owned tokenizer's map
    /// insertion order. Bare attributes (`disabled`) yield an empty value.
    pub fn get(&self, name: &str) -> Option<Cow<'a, str>> {
        let mut found = None;
        for (attr_name, value) in self.iter() {
            if attr_name == name {
                found = Some(value);
            }
        }
        found
    }

    /// Iterate `(name, value)` pairs in document order. Names are
    /// lower-cased; values keep their case.
    pub fn iter(&self) -> AttrIter<'a> {
        AttrIter {
            rest: self.raw.trim_start(),
        }
    }

    /// True when the tag carried no attribute text at all.
    pub fn is_empty(&self) -> bool {
        self.raw.trim_start().is_empty()
    }
}

/// Iterator over a tag's attributes; see [`RawAttrs::iter`].
#[derive(Debug, Clone)]
pub struct AttrIter<'a> {
    rest: &'a str,
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = (Cow<'a, str>, Cow<'a, str>);

    fn next(&mut self) -> Option<Self::Item> {
        // Mirrors the attribute loop of `parse_tag_body` exactly, borrowing
        // instead of allocating.
        loop {
            if self.rest.is_empty() {
                return None;
            }
            let name_len = self
                .rest
                .find(|c: char| c == '=' || c.is_whitespace())
                .unwrap_or(self.rest.len());
            let attr_name = self.rest[..name_len].trim();
            self.rest = self.rest[name_len..].trim_start();
            if attr_name.is_empty() {
                // Defensive: skip a stray character to guarantee progress.
                self.rest = &self.rest[self.rest.len().min(1)..];
                continue;
            }
            let attr_name = lowercase_cow(attr_name);
            if let Some(after_eq) = self.rest.strip_prefix('=') {
                let after_eq = after_eq.trim_start();
                let (value, remainder) = if let Some(q) = after_eq.strip_prefix('"') {
                    match q.find('"') {
                        Some(end) => (&q[..end], &q[end + 1..]),
                        None => (q, ""),
                    }
                } else if let Some(q) = after_eq.strip_prefix('\'') {
                    match q.find('\'') {
                        Some(end) => (&q[..end], &q[end + 1..]),
                        None => (q, ""),
                    }
                } else {
                    let end = after_eq.find(char::is_whitespace).unwrap_or(after_eq.len());
                    (&after_eq[..end], &after_eq[end..])
                };
                self.rest = remainder.trim_start();
                return Some((attr_name, Cow::Borrowed(value)));
            }
            return Some((attr_name, Cow::Borrowed("")));
        }
    }
}

/// Void-element membership for the streaming tokenizer's hot path: a
/// literal `matches!` lowers to a length switch with one comparison per
/// arm, where the seed's `VOID_ELEMENTS.contains` walks all fourteen
/// entries for every non-void tag (the overwhelmingly common case).
#[inline]
fn is_void_element(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Lower-case a string, borrowing when it is already lower-case (the common
/// case for real-world tag and attribute names). The uppercase probe runs
/// eight bytes per step.
fn lowercase_cow(s: &str) -> Cow<'_, str> {
    if has_ascii_uppercase(s.as_bytes()) {
        Cow::Owned(s.to_ascii_lowercase())
    } else {
        Cow::Borrowed(s)
    }
}

/// The frozen per-byte uppercase probe, kept for [`TokensFind`].
fn lowercase_cow_scalar(s: &str) -> Cow<'_, str> {
    if s.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(s.to_ascii_lowercase())
    } else {
        Cow::Borrowed(s)
    }
}

/// Collapse whitespace in a text run, borrowing when the trimmed slice is
/// already collapsed (single spaces only). Returns `None` for
/// whitespace-only runs, which produce no token. A word-at-a-time probe
/// admits clean ASCII runs to the borrowed path without a per-char loop;
/// everything else (non-ASCII, messy whitespace) takes the exact scalar
/// check.
fn collapse_text(raw: &str) -> Option<Cow<'_, str>> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    if is_collapsed_ascii(trimmed.as_bytes()) {
        return Some(Cow::Borrowed(trimmed));
    }
    Some(collapse_trimmed_scalar(trimmed))
}

/// The frozen per-char collapse, kept for [`TokensFind`].
fn collapse_text_scalar(raw: &str) -> Option<Cow<'_, str>> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    Some(collapse_trimmed_scalar(trimmed))
}

/// Exact per-char whitespace collapse over an already-trimmed, non-empty
/// run; borrows when the run is already collapsed.
fn collapse_trimmed_scalar(trimmed: &str) -> Cow<'_, str> {
    let mut prev_space = false;
    for c in trimmed.chars() {
        if c == ' ' {
            if prev_space {
                return Cow::Owned(trimmed.split_whitespace().collect::<Vec<_>>().join(" "));
            }
            prev_space = true;
        } else if c.is_whitespace() {
            return Cow::Owned(trimmed.split_whitespace().collect::<Vec<_>>().join(" "));
        } else {
            prev_space = false;
        }
    }
    Cow::Borrowed(trimmed)
}

/// Find the first case-insensitive `</name` in `haystack`, without building
/// a lower-cased copy of the remainder (the owned tokenizer's approach).
/// Candidate `<` positions come from the word-at-a-time scanner; the name
/// comparison only runs at those.
fn find_close_marker(haystack: &str, name: &str) -> Option<usize> {
    let hb = haystack.as_bytes();
    let nb = name.as_bytes();
    let total = nb.len() + 2;
    if hb.len() < total {
        return None;
    }
    let limit = hb.len() - total + 1;
    let mut j = 0;
    while let Some(off) = find_byte(&hb[j..limit], b'<') {
        let p = j + off;
        if hb[p + 1] == b'/' && hb[p + 2..p + 2 + nb.len()].eq_ignore_ascii_case(nb) {
            return Some(p);
        }
        j = p + 1;
    }
    None
}

/// The frozen per-position close-marker scan, kept for [`TokensFind`].
fn find_close_marker_scalar(haystack: &str, name: &str) -> Option<usize> {
    let hb = haystack.as_bytes();
    let nb = name.as_bytes();
    let total = nb.len() + 2;
    if hb.len() < total {
        return None;
    }
    (0..=hb.len() - total).find(|&p| {
        hb[p] == b'<' && hb[p + 1] == b'/' && hb[p + 2..p + 2 + nb.len()].eq_ignore_ascii_case(nb)
    })
}

/// End of a comment opened at `open` (the index of its `<`): the index just
/// past the first `-->` at or after `open + 4`, scanning for `>` a word at
/// a time and checking the two preceding bytes, which is equivalent to a
/// substring search for `-->` (the first `>` preceded by `--` is the `>` of
/// the first `-->` occurrence).
fn find_comment_end(bytes: &[u8], open: usize) -> Option<usize> {
    let mut j = open + 6;
    while j < bytes.len() {
        let p = j + find_byte(&bytes[j..], b'>')?;
        if bytes[p - 1] == b'-' && bytes[p - 2] == b'-' {
            return Some(p + 1);
        }
        j = p + 1;
    }
    None
}

/// `str::trim` with the char-iterator machinery skipped for the all-ASCII
/// common case: trim ASCII whitespace bytewise, then defer to the exact
/// Unicode trim only when an edge still holds a non-ASCII byte or a
/// vertical tab (0x0b — the one ASCII character `char::is_whitespace`
/// covers that `u8::is_ascii_whitespace` does not).
#[inline]
fn trim_fast(s: &str) -> &str {
    let t = s.trim_ascii();
    let b = t.as_bytes();
    match (b.first(), b.last()) {
        (Some(&f), Some(&l)) if f >= 0x80 || l >= 0x80 || f == 0x0b || l == 0x0b => t.trim(),
        _ => t,
    }
}

/// Split an already-trimmed tag body into its lower-cased name and the
/// attribute remainder, tracking case in the same walk that finds the name
/// end (one pass instead of a name-end scan plus a separate uppercase probe).
/// Defers to the exact char walk when a non-ASCII byte appears before the
/// name ends (Unicode whitespace such as U+00A0 must still terminate the
/// name, matching the owned oracle's `char::is_whitespace`).
#[inline]
fn split_tag_name(body: &str) -> (Cow<'_, str>, &str) {
    let b = body.as_bytes();
    let mut upper = false;
    let mut k = 0;
    while k < b.len() {
        let c = b[k];
        if c >= 0x80 {
            let end = body[k..]
                .char_indices()
                .find(|(_, ch)| ch.is_whitespace())
                .map_or(body.len(), |(off, _)| k + off);
            return (lowercase_cow(&body[..end]), &body[end..]);
        }
        if c == b' ' || (0x09..=0x0d).contains(&c) {
            break;
        }
        upper |= c.is_ascii_uppercase();
        k += 1;
    }
    let name = &body[..k];
    let name = if upper {
        Cow::Owned(name.to_ascii_lowercase())
    } else {
        Cow::Borrowed(name)
    };
    (name, &body[k..])
}

/// The zero-copy streaming tokenizer: an iterator over [`StreamToken`]s
/// borrowing from the input document.
///
/// Token-for-token equivalent to [`tokenize`] (the owned implementation is
/// retained as the oracle the property tests compare against), but performs
/// no allocation for well-formed lower-case HTML: tag names, attribute
/// values and already-collapsed text are handed out as borrowed slices, and
/// attributes are not even parsed until a consumer asks for one.
///
/// ```
/// use rws_html::tokenizer::{StreamToken, Tokens};
///
/// let mut names = Vec::new();
/// for token in Tokens::new("<div class=\"nav\"><p>hi</p></div>") {
///     if let StreamToken::Open { name, .. } = token {
///         names.push(name.into_owned());
///     }
/// }
/// assert_eq!(names, ["div", "p"]);
/// ```
#[derive(Debug, Clone)]
pub struct Tokens<'a> {
    html: &'a str,
    i: usize,
    /// A `Close` token queued behind the `Open` of a raw-text element whose
    /// skipped contents ended with a matching close tag.
    pending_close: Option<Cow<'a, str>>,
}

impl<'a> Tokens<'a> {
    /// Start streaming tokens from a document.
    pub fn new(html: &'a str) -> Tokens<'a> {
        Tokens {
            html,
            i: 0,
            pending_close: None,
        }
    }
}

impl<'a> Iterator for Tokens<'a> {
    type Item = StreamToken<'a>;

    fn next(&mut self) -> Option<StreamToken<'a>> {
        if let Some(name) = self.pending_close.take() {
            return Some(StreamToken::Close { name });
        }
        let html = self.html;
        let bytes = html.as_bytes();
        let len = bytes.len();
        while self.i < len {
            let i = self.i;
            if bytes[i] == b'<' {
                // One peek at the byte after `<` dispatches comments,
                // declarations and processing instructions, instead of
                // re-slicing the remainder through a `starts_with` chain.
                match bytes.get(i + 1) {
                    Some(b'!') if bytes[i + 2..].starts_with(b"--") => {
                        // Comment: skip to just past the first `-->`.
                        self.i = find_comment_end(bytes, i).unwrap_or(len);
                        continue;
                    }
                    Some(b'!') | Some(b'?') => {
                        // Doctype or other declaration.
                        match find_byte(&bytes[i + 2..], b'>') {
                            Some(end) => self.i = i + 2 + end + 1,
                            None => self.i = len,
                        }
                        continue;
                    }
                    _ => {}
                }
                // Find the end of the tag.
                let Some(rel_end) = find_byte(&bytes[i + 1..], b'>') else {
                    // Unterminated tag: treat the rest as text.
                    self.i = len;
                    return collapse_text(&html[i..]).map(StreamToken::Text);
                };
                let tag_body = &html[i + 1..i + 1 + rel_end];
                self.i = i + 1 + rel_end + 1;
                if tag_body.is_empty() {
                    continue;
                }
                if let Some(name) = tag_body.strip_prefix('/') {
                    let name = trim_fast(name);
                    if name.is_empty() {
                        continue;
                    }
                    return Some(StreamToken::Close {
                        name: lowercase_cow(name),
                    });
                }
                let body = trim_fast(tag_body);
                let (body, explicit_self_close) = match body.strip_suffix('/') {
                    Some(rest) => (trim_fast(rest), true),
                    None => (body, false),
                };
                let (name, raw) = split_tag_name(body);
                if name.is_empty() {
                    continue;
                }
                let attributes = RawAttrs { raw };
                let self_closing = explicit_self_close || is_void_element(name.as_ref());
                let is_raw_text = matches!(name.as_ref(), "script" | "style");
                // Skip the raw content of <script>/<style> up to the
                // matching closing tag, queueing the Close token.
                if is_raw_text && !self_closing {
                    match find_close_marker(&html[self.i..], name.as_ref()) {
                        Some(rel) => {
                            self.i += rel;
                            if let Some(end) = find_byte(&bytes[self.i..], b'>') {
                                self.pending_close = Some(name.clone());
                                self.i += end + 1;
                            }
                        }
                        // Unterminated raw-text element: consume to the end.
                        None => self.i = len,
                    }
                }
                return Some(StreamToken::Open {
                    name,
                    attributes,
                    self_closing,
                });
            }
            // One fused pass over the text run: the position of the next
            // `<` and the already-collapsed verdict come out of the same
            // word loop, instead of a find followed by a re-scan probe.
            let (off, clean) = scan_text_run(&bytes[i..]);
            let next_tag = i + off;
            self.i = next_tag;
            let trimmed = trim_fast(&html[i..next_tag]);
            if !trimmed.is_empty() {
                let text = if clean {
                    Cow::Borrowed(trimmed)
                } else {
                    collapse_trimmed_scalar(trimmed)
                };
                return Some(StreamToken::Text(text));
            }
        }
        None
    }
}

/// The PR-5 `str::find`-based streaming tokenizer, frozen as the baseline
/// the `tokenizer_swar` bench kernel is measured against (and a third
/// differential oracle for the property tests). Token-for-token equivalent
/// to [`Tokens`] and [`tokenize`]; do not optimise this type.
#[derive(Debug, Clone)]
pub struct TokensFind<'a> {
    html: &'a str,
    i: usize,
    pending_close: Option<Cow<'a, str>>,
}

impl<'a> TokensFind<'a> {
    /// Start streaming tokens from a document.
    pub fn new(html: &'a str) -> TokensFind<'a> {
        TokensFind {
            html,
            i: 0,
            pending_close: None,
        }
    }
}

impl<'a> Iterator for TokensFind<'a> {
    type Item = StreamToken<'a>;

    fn next(&mut self) -> Option<StreamToken<'a>> {
        if let Some(name) = self.pending_close.take() {
            return Some(StreamToken::Close { name });
        }
        let html = self.html;
        let bytes = html.as_bytes();
        let len = bytes.len();
        while self.i < len {
            let i = self.i;
            if bytes[i] == b'<' {
                // Comment?
                if html[i..].starts_with("<!--") {
                    match html[i + 4..].find("-->") {
                        Some(end) => self.i = i + 4 + end + 3,
                        None => self.i = len,
                    }
                    continue;
                }
                // Doctype or other declaration?
                if html[i..].starts_with("<!") || html[i..].starts_with("<?") {
                    match html[i..].find('>') {
                        Some(end) => self.i = i + end + 1,
                        None => self.i = len,
                    }
                    continue;
                }
                // Find the end of the tag.
                let Some(rel_end) = html[i..].find('>') else {
                    // Unterminated tag: treat the rest as text.
                    self.i = len;
                    return collapse_text_scalar(&html[i..]).map(StreamToken::Text);
                };
                let tag_body = &html[i + 1..i + rel_end];
                self.i = i + rel_end + 1;
                if tag_body.is_empty() {
                    continue;
                }
                if let Some(name) = tag_body.strip_prefix('/') {
                    let name = name.trim();
                    if name.is_empty() {
                        continue;
                    }
                    return Some(StreamToken::Close {
                        name: lowercase_cow_scalar(name),
                    });
                }
                let body = tag_body.trim();
                let (body, explicit_self_close) = match body.strip_suffix('/') {
                    Some(rest) => (rest.trim(), true),
                    None => (body, false),
                };
                let mut name_end = body.len();
                for (idx, c) in body.char_indices() {
                    if c.is_whitespace() {
                        name_end = idx;
                        break;
                    }
                }
                if name_end == 0 {
                    continue;
                }
                let name = lowercase_cow_scalar(&body[..name_end]);
                let attributes = RawAttrs {
                    raw: &body[name_end..],
                };
                let self_closing = explicit_self_close || VOID_ELEMENTS.contains(&name.as_ref());
                let is_raw_text = RAW_TEXT_ELEMENTS.contains(&name.as_ref());
                // Skip the raw content of <script>/<style> up to the
                // matching closing tag, queueing the Close token.
                if is_raw_text && !self_closing {
                    match find_close_marker_scalar(&html[self.i..], name.as_ref()) {
                        Some(rel) => {
                            self.i += rel;
                            if let Some(end) = html[self.i..].find('>') {
                                self.pending_close = Some(name.clone());
                                self.i += end + 1;
                            }
                        }
                        // Unterminated raw-text element: consume to the end.
                        None => self.i = len,
                    }
                }
                return Some(StreamToken::Open {
                    name,
                    attributes,
                    self_closing,
                });
            }
            let next_tag = html[i..].find('<').map(|o| i + o).unwrap_or(len);
            self.i = next_tag;
            if let Some(text) = collapse_text_scalar(&html[i..next_tag]) {
                return Some(StreamToken::Text(text));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter_map(|t| match t {
                Token::Open { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tokenizes_simple_document() {
        let tokens = tokenize("<html><body><p>Hello</p></body></html>");
        assert_eq!(open(&tokens), vec!["html", "body", "p"]);
        assert!(tokens.contains(&Token::Text("Hello".into())));
        assert!(tokens.contains(&Token::Close { name: "p".into() }));
    }

    #[test]
    fn parses_attributes_quoted_and_unquoted() {
        let tokens = tokenize(r#"<div class="nav main" id=content data-x='1' hidden>x</div>"#);
        match &tokens[0] {
            Token::Open {
                name, attributes, ..
            } => {
                assert_eq!(name, "div");
                assert_eq!(attributes.get("class").unwrap(), "nav main");
                assert_eq!(attributes.get("id").unwrap(), "content");
                assert_eq!(attributes.get("data-x").unwrap(), "1");
                assert_eq!(attributes.get("hidden").unwrap(), "");
            }
            other => panic!("expected open tag, got {other:?}"),
        }
    }

    #[test]
    fn tag_names_and_attribute_names_lowercased() {
        let tokens = tokenize(r#"<DIV CLASS="Big">x</DIV>"#);
        match &tokens[0] {
            Token::Open {
                name, attributes, ..
            } => {
                assert_eq!(name, "div");
                // Attribute values keep their case.
                assert_eq!(attributes.get("class").unwrap(), "Big");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokens.contains(&Token::Close { name: "div".into() }));
    }

    #[test]
    fn void_and_self_closing_elements() {
        let tokens = tokenize(r#"<img src="x.png"><br/><link rel="stylesheet">"#);
        let flags: Vec<bool> = tokens
            .iter()
            .filter_map(|t| match t {
                Token::Open { self_closing, .. } => Some(*self_closing),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![true, true, true]);
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let tokens = tokenize("<!DOCTYPE html><!-- a <b> comment --><p>text</p>");
        assert_eq!(open(&tokens), vec!["p"]);
    }

    #[test]
    fn script_and_style_contents_skipped() {
        let html = r#"<script>var x = "<p>not a tag</p>";</script><style>.a{color:red}</style><p>real</p>"#;
        let tokens = tokenize(html);
        assert_eq!(open(&tokens), vec!["script", "style", "p"]);
        // The script body must not appear as text.
        assert!(!tokens
            .iter()
            .any(|t| matches!(t, Token::Text(s) if s.contains("not a tag"))));
        assert!(tokens.contains(&Token::Text("real".into())));
    }

    #[test]
    fn whitespace_collapsed_in_text() {
        let tokens = tokenize("<p>  hello \n\t world  </p>");
        assert!(tokens.contains(&Token::Text("hello world".into())));
    }

    #[test]
    fn malformed_html_does_not_panic() {
        for html in [
            "<div><p>unclosed",
            "text only",
            "<<>>",
            "<div class=>broken</div>",
            "<",
            "<!-- unterminated comment",
            "<script>never closed",
            "",
        ] {
            let _ = tokenize(html);
        }
    }

    #[test]
    fn empty_input_produces_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n  ").is_empty());
    }

    /// The streaming tokenizer must agree with the owned oracle token for
    /// token, including on the malformed inputs the oracle tolerates.
    #[test]
    fn streaming_matches_owned_oracle() {
        for html in [
            "<html><body><p>Hello</p></body></html>",
            r#"<div class="nav main" id=content data-x='1' hidden>x</div>"#,
            r#"<DIV CLASS="Big">x</DIV>"#,
            r#"<img src="x.png"><br/><link rel="stylesheet">"#,
            "<!DOCTYPE html><!-- a <b> comment --><p>text</p>",
            r#"<script>var x = "<p>not a tag</p>";</script><style>.a{color:red}</style><p>real</p>"#,
            "<p>  hello \n\t world  </p>",
            "<div><p>unclosed",
            "text only",
            "<<>>",
            "<div class=>broken</div>",
            "<",
            "<!-- unterminated comment",
            "<script>never closed",
            "<script>x</script",
            "<SCRIPT>shout</SCRIPT>done",
            "< /div>",
            "<div a=1 a=2>dup</div>",
            "",
            "<!-->",
            "<!--->",
            "<!---->",
            "<!--a--b-->tail",
            "<!>after",
            "<?xml version='1.0'?><p>pi</p>",
            "<!doctype html>",
            "<div\u{00a0}x=1>nbsp name end</div>",
            "<p>a > b</p>",
            "<p>already collapsed run stays borrowed</p>",
            "<p>tab\tand\u{00a0}nbsp   runs</p>",
        ] {
            let owned = tokenize(html);
            let streamed: Vec<Token> = Tokens::new(html).map(|t| t.to_token()).collect();
            assert_eq!(streamed, owned, "SWAR stream divergence on {html:?}");
            let baseline: Vec<Token> = TokensFind::new(html).map(|t| t.to_token()).collect();
            assert_eq!(baseline, owned, "find baseline divergence on {html:?}");
        }
    }

    /// Well-formed lower-case HTML streams entirely as borrowed slices.
    #[test]
    fn streaming_borrows_when_possible() {
        let html = r#"<div class="nav">plain text</div>"#;
        for token in Tokens::new(html) {
            match token {
                StreamToken::Open {
                    name, attributes, ..
                } => {
                    assert!(matches!(name, Cow::Borrowed(_)));
                    let class = attributes.get("class").unwrap();
                    assert!(matches!(class, Cow::Borrowed(_)));
                }
                StreamToken::Close { name } => assert!(matches!(name, Cow::Borrowed(_))),
                StreamToken::Text(text) => assert!(matches!(text, Cow::Borrowed(_))),
            }
        }
    }

    /// Lazily-parsed attributes answer lookups like the owned map: names
    /// lower-cased, values as written, duplicates resolved to the last.
    #[test]
    fn raw_attrs_lookup_semantics() {
        let html = r#"<div CLASS="Big" data-x=1 data-x=2 hidden>x</div>"#;
        let Some(StreamToken::Open { attributes, .. }) = Tokens::new(html).next() else {
            panic!("expected an open tag");
        };
        assert_eq!(attributes.get("class").unwrap(), "Big");
        assert_eq!(attributes.get("data-x").unwrap(), "2");
        assert_eq!(attributes.get("hidden").unwrap(), "");
        assert_eq!(attributes.get("missing"), None);
        assert!(!attributes.is_empty());
        assert_eq!(attributes.iter().count(), 4);
    }
}
