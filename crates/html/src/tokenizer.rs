//! A forgiving HTML tokenizer.
//!
//! Real-world HTML — which is what the paper's similarity analysis runs on —
//! is rarely well-formed, so this tokenizer never fails: it scans the input
//! once and produces a stream of [`Token`]s, skipping comments, doctypes and
//! the contents of `<script>`/`<style>` elements (their text would otherwise
//! pollute the text extraction), and tolerating unquoted or missing
//! attribute values.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single HTML token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// An opening (or self-closing) tag with its attributes.
    Open {
        /// Lower-cased tag name.
        name: String,
        /// Attribute map (names lower-cased; value empty for bare attributes).
        attributes: BTreeMap<String, String>,
        /// True for `<br/>`-style self-closing syntax or void elements.
        self_closing: bool,
    },
    /// A closing tag.
    Close {
        /// Lower-cased tag name.
        name: String,
    },
    /// A run of text between tags (entity references left as-is).
    Text(String),
}

/// HTML void elements, which never have closing tags.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Elements whose raw text content is skipped entirely.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

/// Tokenize an HTML document.
pub fn tokenize(html: &str) -> Vec<Token> {
    let bytes = html.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let len = bytes.len();

    while i < len {
        if bytes[i] == b'<' {
            // Comment?
            if html[i..].starts_with("<!--") {
                match html[i + 4..].find("-->") {
                    Some(end) => {
                        i = i + 4 + end + 3;
                    }
                    None => break,
                }
                continue;
            }
            // Doctype or other declaration?
            if html[i..].starts_with("<!") || html[i..].starts_with("<?") {
                match html[i..].find('>') {
                    Some(end) => {
                        i += end + 1;
                    }
                    None => break,
                }
                continue;
            }
            // Find the end of the tag.
            let Some(rel_end) = html[i..].find('>') else {
                // Unterminated tag: treat the rest as text.
                push_text(&mut tokens, &html[i..]);
                break;
            };
            let tag_body = &html[i + 1..i + rel_end];
            i += rel_end + 1;
            if tag_body.is_empty() {
                continue;
            }
            if let Some(name) = tag_body.strip_prefix('/') {
                let name = name.trim().to_ascii_lowercase();
                if !name.is_empty() {
                    tokens.push(Token::Close { name });
                }
                continue;
            }
            let (name, attributes, explicit_self_close) = parse_tag_body(tag_body);
            if name.is_empty() {
                continue;
            }
            let self_closing = explicit_self_close || VOID_ELEMENTS.contains(&name.as_str());
            let is_raw_text = RAW_TEXT_ELEMENTS.contains(&name.as_str());
            tokens.push(Token::Open {
                name: name.clone(),
                attributes,
                self_closing,
            });
            // Skip the raw content of <script>/<style> up to the matching
            // closing tag.
            if is_raw_text && !self_closing {
                let close_marker = format!("</{name}");
                if let Some(rel) = html[i..].to_ascii_lowercase().find(&close_marker) {
                    i += rel;
                    if let Some(end) = html[i..].find('>') {
                        tokens.push(Token::Close { name });
                        i += end + 1;
                    }
                } else {
                    // Unterminated raw-text element: consume to the end.
                    break;
                }
            }
        } else {
            let next_tag = html[i..].find('<').map(|o| i + o).unwrap_or(len);
            push_text(&mut tokens, &html[i..next_tag]);
            i = next_tag;
        }
    }
    tokens
}

fn push_text(tokens: &mut Vec<Token>, raw: &str) {
    let collapsed = raw.split_whitespace().collect::<Vec<_>>().join(" ");
    if !collapsed.is_empty() {
        tokens.push(Token::Text(collapsed));
    }
}

/// Parse the inside of a tag: name, attributes, self-closing marker.
fn parse_tag_body(body: &str) -> (String, BTreeMap<String, String>, bool) {
    let body = body.trim();
    let (body, self_closing) = match body.strip_suffix('/') {
        Some(rest) => (rest.trim(), true),
        None => (body, false),
    };
    // Tag name: up to the first whitespace.
    let mut name_end = body.len();
    for (idx, c) in body.char_indices() {
        if c.is_whitespace() {
            name_end = idx;
            break;
        }
    }
    let name = body[..name_end].to_ascii_lowercase();
    let mut attributes = BTreeMap::new();
    let attr_str = &body[name_end..];
    let mut rest = attr_str.trim_start();
    while !rest.is_empty() {
        // Attribute name.
        let name_len = rest
            .find(|c: char| c == '=' || c.is_whitespace())
            .unwrap_or(rest.len());
        let attr_name = rest[..name_len].trim().to_ascii_lowercase();
        rest = rest[name_len..].trim_start();
        if attr_name.is_empty() {
            // Defensive: skip a stray character to guarantee progress.
            rest = &rest[rest.len().min(1)..];
            continue;
        }
        if let Some(after_eq) = rest.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            let (value, remainder) = if let Some(q) = after_eq.strip_prefix('"') {
                match q.find('"') {
                    Some(end) => (q[..end].to_string(), &q[end + 1..]),
                    None => (q.to_string(), ""),
                }
            } else if let Some(q) = after_eq.strip_prefix('\'') {
                match q.find('\'') {
                    Some(end) => (q[..end].to_string(), &q[end + 1..]),
                    None => (q.to_string(), ""),
                }
            } else {
                let end = after_eq.find(char::is_whitespace).unwrap_or(after_eq.len());
                (after_eq[..end].to_string(), &after_eq[end..])
            };
            attributes.insert(attr_name, value);
            rest = remainder.trim_start();
        } else {
            // Bare attribute (e.g. `disabled`).
            attributes.insert(attr_name, String::new());
        }
    }
    (name, attributes, self_closing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(tokens: &[Token]) -> Vec<&str> {
        tokens
            .iter()
            .filter_map(|t| match t {
                Token::Open { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tokenizes_simple_document() {
        let tokens = tokenize("<html><body><p>Hello</p></body></html>");
        assert_eq!(open(&tokens), vec!["html", "body", "p"]);
        assert!(tokens.contains(&Token::Text("Hello".into())));
        assert!(tokens.contains(&Token::Close { name: "p".into() }));
    }

    #[test]
    fn parses_attributes_quoted_and_unquoted() {
        let tokens = tokenize(r#"<div class="nav main" id=content data-x='1' hidden>x</div>"#);
        match &tokens[0] {
            Token::Open {
                name, attributes, ..
            } => {
                assert_eq!(name, "div");
                assert_eq!(attributes.get("class").unwrap(), "nav main");
                assert_eq!(attributes.get("id").unwrap(), "content");
                assert_eq!(attributes.get("data-x").unwrap(), "1");
                assert_eq!(attributes.get("hidden").unwrap(), "");
            }
            other => panic!("expected open tag, got {other:?}"),
        }
    }

    #[test]
    fn tag_names_and_attribute_names_lowercased() {
        let tokens = tokenize(r#"<DIV CLASS="Big">x</DIV>"#);
        match &tokens[0] {
            Token::Open {
                name, attributes, ..
            } => {
                assert_eq!(name, "div");
                // Attribute values keep their case.
                assert_eq!(attributes.get("class").unwrap(), "Big");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokens.contains(&Token::Close { name: "div".into() }));
    }

    #[test]
    fn void_and_self_closing_elements() {
        let tokens = tokenize(r#"<img src="x.png"><br/><link rel="stylesheet">"#);
        let flags: Vec<bool> = tokens
            .iter()
            .filter_map(|t| match t {
                Token::Open { self_closing, .. } => Some(*self_closing),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![true, true, true]);
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let tokens = tokenize("<!DOCTYPE html><!-- a <b> comment --><p>text</p>");
        assert_eq!(open(&tokens), vec!["p"]);
    }

    #[test]
    fn script_and_style_contents_skipped() {
        let html = r#"<script>var x = "<p>not a tag</p>";</script><style>.a{color:red}</style><p>real</p>"#;
        let tokens = tokenize(html);
        assert_eq!(open(&tokens), vec!["script", "style", "p"]);
        // The script body must not appear as text.
        assert!(!tokens
            .iter()
            .any(|t| matches!(t, Token::Text(s) if s.contains("not a tag"))));
        assert!(tokens.contains(&Token::Text("real".into())));
    }

    #[test]
    fn whitespace_collapsed_in_text() {
        let tokens = tokenize("<p>  hello \n\t world  </p>");
        assert!(tokens.contains(&Token::Text("hello world".into())));
    }

    #[test]
    fn malformed_html_does_not_panic() {
        for html in [
            "<div><p>unclosed",
            "text only",
            "<<>>",
            "<div class=>broken</div>",
            "<",
            "<!-- unterminated comment",
            "<script>never closed",
            "",
        ] {
            let _ = tokenize(html);
        }
    }

    #[test]
    fn empty_input_produces_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n  ").is_empty());
    }
}
