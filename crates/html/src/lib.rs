//! HTML parsing and similarity metrics for the RWS reproduction.
//!
//! Figure 4 of the paper computes, for every service/associated site paired
//! with its set primary, three similarity scores using "a well-known
//! library" (the Python `html-similarity` package):
//!
//! * **style similarity** — Jaccard similarity of the sets of CSS classes
//!   used in the two documents;
//! * **structural similarity** — similarity of the two documents' tag
//!   sequences, computed over k-shingles of the sequences;
//! * **joint similarity** — a weighted sum of the two
//!   (`k · structural + (1 − k) · style`, with the library's default
//!   `k = 0.3`).
//!
//! This crate is a from-scratch Rust implementation of that pipeline: a
//! forgiving [`tokenizer`](crate::tokenizer) for real-world HTML, extraction
//! of tag sequences and class sets, k-shingling, Jaccard similarity and the
//! three metrics.
//!
//! Tokenization comes in two forms: the owned [`tokenize`] (the seed
//! implementation, retained as the equivalence oracle) and the zero-copy
//! streaming [`Tokens`] iterator, which yields [`StreamToken`]s borrowing
//! from the document and only allocates for the rare lower-case/collapse
//! fix-ups. All extractors and [`DocumentProfile`] run on the stream.
//!
//! ```
//! use rws_html::similarity::{html_similarity, SimilarityWeights};
//!
//! let a = r#"<div class="nav brand"><p class="headline">News</p></div>"#;
//! let b = r#"<div class="nav brand"><p class="headline">Sport</p></div>"#;
//! let score = html_similarity(a, b, SimilarityWeights::default());
//! assert!(score.joint > 0.9, "identically-structured pages score high");
//! ```

pub mod extract;
pub mod shingle;
pub mod similarity;
pub mod tokenizer;

pub use extract::{class_set, tag_sequence, text_content, title};
pub use shingle::{hash_token, jaccard, jaccard_sorted, shingles, ShingleProfile};
pub use similarity::{
    html_similarity, structural_similarity, style_similarity, DocumentProfile, HtmlSimilarity,
    ProfileScratch, SimilarityWeights,
};
pub use tokenizer::{tokenize, RawAttrs, StreamToken, Token, Tokens, TokensFind};
