//! k-shingling and Jaccard similarity over sets.

use std::collections::BTreeSet;
use std::hash::Hash;

/// The set of contiguous k-grams ("shingles") of a sequence.
///
/// If the sequence is shorter than `k` but non-empty, the whole sequence is
/// returned as a single shingle, so short documents still compare sensibly.
pub fn shingles<T: Clone + Ord>(sequence: &[T], k: usize) -> BTreeSet<Vec<T>> {
    assert!(k > 0, "shingle size must be positive");
    let mut out = BTreeSet::new();
    if sequence.is_empty() {
        return out;
    }
    if sequence.len() < k {
        out.insert(sequence.to_vec());
        return out;
    }
    for window in sequence.windows(k) {
        out.insert(window.to_vec());
    }
    out
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` between two sets.
///
/// Two empty sets are defined to have similarity 1 (they are identical);
/// one empty and one non-empty set have similarity 0.
pub fn jaccard<T: Ord + Hash>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shingles_of_short_sequence() {
        let s = shingles(&[1, 2], 4);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&vec![1, 2]));
    }

    #[test]
    fn shingles_of_empty_sequence() {
        let s: BTreeSet<Vec<i32>> = shingles(&[], 3);
        assert!(s.is_empty());
    }

    #[test]
    fn shingles_windows() {
        let s = shingles(&["a", "b", "c", "d"], 2);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&vec!["a", "b"]));
        assert!(s.contains(&vec!["b", "c"]));
        assert!(s.contains(&vec!["c", "d"]));
    }

    #[test]
    fn shingles_deduplicate_repeats() {
        let s = shingles(&[1, 1, 1, 1], 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shingle_size_panics() {
        shingles(&[1, 2, 3], 0);
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let a: BTreeSet<i32> = [1, 2, 3].into_iter().collect();
        let b: BTreeSet<i32> = [4, 5].into_iter().collect();
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a: BTreeSet<i32> = [1, 2, 3].into_iter().collect();
        let b: BTreeSet<i32> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_conventions() {
        let empty: BTreeSet<i32> = BTreeSet::new();
        let full: BTreeSet<i32> = [1].into_iter().collect();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&empty, &full), 0.0);
        assert_eq!(jaccard(&full, &empty), 0.0);
    }

    #[test]
    fn jaccard_symmetric() {
        let a: BTreeSet<&str> = ["x", "y", "z"].into_iter().collect();
        let b: BTreeSet<&str> = ["y", "z", "w", "v"].into_iter().collect();
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }
}
