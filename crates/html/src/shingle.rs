//! k-shingling and Jaccard similarity.
//!
//! Two implementations live here:
//!
//! * the original owned-k-gram representation ([`shingles`] building a
//!   `BTreeSet<Vec<T>>`, compared with [`jaccard`]) — simple, obviously
//!   correct, and kept as the oracle the property tests check against;
//! * [`ShingleProfile`] — the hot-path representation: every k-gram is
//!   collapsed to a single `u64` by a rolling polynomial hash over
//!   pre-hashed tokens, and a document's shingle set becomes a sorted
//!   `Vec<u64>` compared by linear merge. Building is O(n) after
//!   tokenisation and comparison is O(|a| + |b|) with no allocation,
//!   instead of O(n·k) tree inserts of owned `Vec`s per document *per
//!   pair*.

use std::collections::BTreeSet;
use std::hash::Hash;

/// The set of contiguous k-grams ("shingles") of a sequence.
///
/// If the sequence is shorter than `k` but non-empty, the whole sequence is
/// returned as a single shingle, so short documents still compare sensibly.
pub fn shingles<T: Clone + Ord>(sequence: &[T], k: usize) -> BTreeSet<Vec<T>> {
    assert!(k > 0, "shingle size must be positive");
    let mut out = BTreeSet::new();
    if sequence.is_empty() {
        return out;
    }
    if sequence.len() < k {
        out.insert(sequence.to_vec());
        return out;
    }
    for window in sequence.windows(k) {
        out.insert(window.to_vec());
    }
    out
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` between two sets.
///
/// Two empty sets are defined to have similarity 1 (they are identical);
/// one empty and one non-empty set have similarity 0.
pub fn jaccard<T: Ord + Hash>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

/// FNV-1a over arbitrary bytes: the token-level hash feeding the rolling
/// shingle hash. Deterministic across runs and platforms.
#[inline]
pub fn hash_token(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Multiplier of the polynomial rolling hash (an arbitrary odd 64-bit
/// constant; odd keeps multiplication by it a bijection mod 2^64).
const ROLL_BASE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Jaccard similarity of two sorted, deduplicated `u64` slices by linear
/// merge, with the same empty-set conventions as [`jaccard`].
pub fn jaccard_sorted(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut intersection = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                intersection += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

/// A document's shingle set collapsed to sorted `u64` hashes — computed
/// once per document and reused across every pairwise comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShingleProfile {
    k: usize,
    /// Sorted, deduplicated rolling hashes of the k-grams.
    hashes: Vec<u64>,
}

impl ShingleProfile {
    /// Build from pre-hashed tokens, mirroring [`shingles`]'s semantics:
    /// an empty sequence has no shingles; a sequence shorter than `k`
    /// contributes the whole sequence as one shingle.
    pub fn from_token_hashes(tokens: &[u64], k: usize) -> ShingleProfile {
        assert!(k > 0, "shingle size must be positive");
        let mut hashes: Vec<u64>;
        if tokens.is_empty() {
            hashes = Vec::new();
        } else if tokens.len() < k {
            hashes = vec![combine(tokens)];
        } else {
            // Rolling polynomial: H(i+1) = (H(i) - t[i]·B^(k-1))·B + t[i+k].
            let top = ROLL_BASE.wrapping_pow((k - 1) as u32);
            hashes = Vec::with_capacity(tokens.len() - k + 1);
            let mut h = combine(&tokens[..k]);
            hashes.push(h);
            for i in k..tokens.len() {
                h = h
                    .wrapping_sub(tokens[i - k].wrapping_mul(top))
                    .wrapping_mul(ROLL_BASE)
                    .wrapping_add(tokens[i]);
                hashes.push(h);
            }
            hashes.sort_unstable();
            hashes.dedup();
        }
        ShingleProfile { k, hashes }
    }

    /// Build from any hashable items (hashes each item, then rolls).
    pub fn from_items<T: AsRef<[u8]>>(items: &[T], k: usize) -> ShingleProfile {
        let token_hashes: Vec<u64> = items.iter().map(|t| hash_token(t.as_ref())).collect();
        ShingleProfile::from_token_hashes(&token_hashes, k)
    }

    /// The shingle length this profile was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct shingles.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True if the document had no tokens.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Jaccard similarity against another profile. Panics if the two
    /// profiles were built with different `k` (they are not comparable).
    pub fn jaccard(&self, other: &ShingleProfile) -> f64 {
        assert_eq!(self.k, other.k, "comparing shingle profiles of different k");
        jaccard_sorted(&self.hashes, &other.hashes)
    }
}

/// Order-dependent combination of a full window, used for the first window
/// and the short-sequence case.
fn combine(tokens: &[u64]) -> u64 {
    let mut h = 0u64;
    for t in tokens {
        h = h.wrapping_mul(ROLL_BASE).wrapping_add(*t);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shingles_of_short_sequence() {
        let s = shingles(&[1, 2], 4);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&vec![1, 2]));
    }

    #[test]
    fn shingles_of_empty_sequence() {
        let s: BTreeSet<Vec<i32>> = shingles(&[], 3);
        assert!(s.is_empty());
    }

    #[test]
    fn shingles_windows() {
        let s = shingles(&["a", "b", "c", "d"], 2);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&vec!["a", "b"]));
        assert!(s.contains(&vec!["b", "c"]));
        assert!(s.contains(&vec!["c", "d"]));
    }

    #[test]
    fn shingles_deduplicate_repeats() {
        let s = shingles(&[1, 1, 1, 1], 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shingle_size_panics() {
        shingles(&[1, 2, 3], 0);
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let a: BTreeSet<i32> = [1, 2, 3].into_iter().collect();
        let b: BTreeSet<i32> = [4, 5].into_iter().collect();
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a: BTreeSet<i32> = [1, 2, 3].into_iter().collect();
        let b: BTreeSet<i32> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_conventions() {
        let empty: BTreeSet<i32> = BTreeSet::new();
        let full: BTreeSet<i32> = [1].into_iter().collect();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&empty, &full), 0.0);
        assert_eq!(jaccard(&full, &empty), 0.0);
    }

    #[test]
    fn jaccard_symmetric() {
        let a: BTreeSet<&str> = ["x", "y", "z"].into_iter().collect();
        let b: BTreeSet<&str> = ["y", "z", "w", "v"].into_iter().collect();
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
    }

    fn profile_of(items: &[&str], k: usize) -> ShingleProfile {
        ShingleProfile::from_items(items, k)
    }

    fn naive_jaccard_of(a: &[&str], b: &[&str], k: usize) -> f64 {
        let owned_a: Vec<String> = a.iter().map(|s| s.to_string()).collect();
        let owned_b: Vec<String> = b.iter().map(|s| s.to_string()).collect();
        jaccard(&shingles(&owned_a, k), &shingles(&owned_b, k))
    }

    #[test]
    fn profile_matches_naive_on_fixed_sequences() {
        let cases: &[(&[&str], &[&str])] = &[
            (&[], &[]),
            (&["a"], &[]),
            (&["a", "b", "c", "d"], &["a", "b", "c", "d"]),
            (&["a", "b", "c", "d"], &["b", "c", "d", "e"]),
            (&["a", "a", "a", "a"], &["a", "a"]),
            (&["div", "p", "p", "span"], &["div", "p", "span", "span"]),
        ];
        for (a, b) in cases {
            for k in 1..=5 {
                let fast = profile_of(a, k).jaccard(&profile_of(b, k));
                let naive = naive_jaccard_of(a, b, k);
                assert!(
                    (fast - naive).abs() < 1e-12,
                    "mismatch for {a:?} vs {b:?} at k={k}: {fast} vs {naive}"
                );
            }
        }
    }

    #[test]
    fn profile_distinguishes_order() {
        let ab = profile_of(&["a", "b", "c"], 2);
        let ba = profile_of(&["c", "b", "a"], 2);
        assert!(ab.jaccard(&ba) < 1.0, "order must matter for k-grams");
        assert_eq!(ab.jaccard(&ab), 1.0);
    }

    #[test]
    fn profile_len_bounded_by_sequence() {
        let p = profile_of(&["a", "b", "a", "b", "a"], 2);
        assert!(p.len() <= 4);
        assert!(!p.is_empty());
        assert_eq!(p.k(), 2);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn mismatched_k_panics() {
        let a = profile_of(&["a", "b"], 2);
        let b = profile_of(&["a", "b"], 3);
        let _ = a.jaccard(&b);
    }
}
