//! Partition keys and storage-access requests.

use rws_domain::DomainName;
use serde::{Deserialize, Serialize};

/// The key the partitioned storage map is indexed by: the top-level site the
/// user is visiting and the embedded site doing the storing.
///
/// When a site is loaded first-party the two components are equal — that is
/// the same storage the site sees with no partitioning at all.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionKey {
    /// The site (eTLD+1) shown in the address bar.
    pub top_level_site: DomainName,
    /// The site (eTLD+1) of the frame accessing storage.
    pub embedded_site: DomainName,
}

impl PartitionKey {
    /// Key for a first-party load of `site`.
    pub fn first_party(site: &DomainName) -> PartitionKey {
        PartitionKey {
            top_level_site: site.clone(),
            embedded_site: site.clone(),
        }
    }

    /// Key for `embedded` loaded as a third party under `top_level`.
    pub fn third_party(top_level: &DomainName, embedded: &DomainName) -> PartitionKey {
        PartitionKey {
            top_level_site: top_level.clone(),
            embedded_site: embedded.clone(),
        }
    }

    /// True if the frame is first-party (both components equal).
    pub fn is_first_party(&self) -> bool {
        self.top_level_site == self.embedded_site
    }
}

/// A `document.requestStorageAccess()` call, as seen by the policy layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRequest {
    /// The top-level site the user is visiting.
    pub top_level_site: DomainName,
    /// The embedded site requesting unpartitioned storage.
    pub embedded_site: DomainName,
    /// Whether the user has previously interacted with the embedded site as
    /// a first party (required by several policies).
    pub has_prior_interaction: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn first_party_key_has_equal_components() {
        let key = PartitionKey::first_party(&dn("example.com"));
        assert!(key.is_first_party());
        assert_eq!(key.top_level_site, key.embedded_site);
    }

    #[test]
    fn third_party_key_differs() {
        let key = PartitionKey::third_party(&dn("site.example"), &dn("tracker.example"));
        assert!(!key.is_first_party());
        assert_ne!(key, PartitionKey::first_party(&dn("tracker.example")));
    }

    #[test]
    fn keys_are_usable_in_maps() {
        use std::collections::HashMap;
        let mut m: HashMap<PartitionKey, u32> = HashMap::new();
        m.insert(PartitionKey::first_party(&dn("a.com")), 1);
        m.insert(PartitionKey::third_party(&dn("a.com"), &dn("b.com")), 2);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&PartitionKey::first_party(&dn("a.com"))], 1);
    }
}
