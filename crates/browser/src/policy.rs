//! Per-vendor storage-access policies.
//!
//! The paper's Section 2 surveys the vendor landscape: Safari, Brave and
//! Firefox partition by default (with different Storage Access API
//! behaviours), Chrome has deployed Related Website Sets as a permanent
//! exception mechanism, and Edge / pre-phase-out Chrome do not partition at
//! all. Each of those postures is modelled here as a [`VendorPolicy`].

use crate::context::AccessRequest;
use rws_domain::DomainName;
use rws_model::{MemberRole, RwsList};
use serde::{Deserialize, Serialize};

/// The policy layer's answer to a `requestStorageAccess` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyVerdict {
    /// Grant unpartitioned access without involving the user.
    AutoGrant,
    /// Ask the user; the grant depends on their answer.
    Prompt,
    /// Refuse without asking.
    Deny,
}

/// A storage-access policy: given a request and the RWS list, decide.
pub trait StorageAccessPolicy {
    /// Short vendor-style name for reports.
    fn name(&self) -> &'static str;

    /// Whether this browser partitions third-party storage by default. A
    /// browser that does not partition never needs the Storage Access API —
    /// every third party already sees its unpartitioned storage.
    fn partitions_by_default(&self) -> bool;

    /// Decide a `requestStorageAccess` call.
    fn verdict(&self, request: &AccessRequest, list: &RwsList) -> PolicyVerdict;
}

/// The vendor policies the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VendorPolicy {
    /// Chrome with Related Website Sets deployed: partitioned by default,
    /// auto-grant within a set (subject to the service-site rule), prompt
    /// otherwise.
    ChromeWithRws,
    /// Chrome before the third-party-cookie phase-out / Edge today: no
    /// partitioning, every third party gets unpartitioned storage.
    ChromeLegacy,
    /// Firefox: partitioned (Total Cookie Protection); the Storage Access
    /// API auto-grants a limited number of requests after first-party
    /// interaction and prompts otherwise.
    Firefox,
    /// Safari: partitioned; every grant requires a user prompt.
    Safari,
    /// Brave: partitioned; no storage-access exceptions at all.
    Brave,
}

impl VendorPolicy {
    /// Every modelled vendor, for sweeps.
    pub const ALL: [VendorPolicy; 5] = [
        VendorPolicy::ChromeWithRws,
        VendorPolicy::ChromeLegacy,
        VendorPolicy::Firefox,
        VendorPolicy::Safari,
        VendorPolicy::Brave,
    ];
}

impl StorageAccessPolicy for VendorPolicy {
    fn name(&self) -> &'static str {
        match self {
            VendorPolicy::ChromeWithRws => "chrome-rws",
            VendorPolicy::ChromeLegacy => "chrome-legacy",
            VendorPolicy::Firefox => "firefox",
            VendorPolicy::Safari => "safari",
            VendorPolicy::Brave => "brave",
        }
    }

    fn partitions_by_default(&self) -> bool {
        !matches!(self, VendorPolicy::ChromeLegacy)
    }

    fn verdict(&self, request: &AccessRequest, list: &RwsList) -> PolicyVerdict {
        match self {
            // No partitioning: the API is moot, grants are implicit.
            VendorPolicy::ChromeLegacy => PolicyVerdict::AutoGrant,
            VendorPolicy::Brave => PolicyVerdict::Deny,
            VendorPolicy::Safari => PolicyVerdict::Prompt,
            VendorPolicy::Firefox => {
                if request.has_prior_interaction {
                    PolicyVerdict::AutoGrant
                } else {
                    PolicyVerdict::Prompt
                }
            }
            VendorPolicy::ChromeWithRws => {
                if rws_auto_grant(request, list) {
                    PolicyVerdict::AutoGrant
                } else {
                    PolicyVerdict::Prompt
                }
            }
        }
    }
}

/// The Related Website Sets auto-grant rule: the two sites must be members
/// of the same set, and a *service* site can never be the top-level site of
/// a grant (service sites exist to support other members, and users are not
/// expected to visit them directly). Additionally, a service site embedded
/// as the requester is only auto-granted once the user has interacted with
/// some member of the set — modelled here through
/// [`AccessRequest::has_prior_interaction`], which the browser sets when any
/// member of the embedded site's set has been visited first-party.
pub fn rws_auto_grant(request: &AccessRequest, list: &RwsList) -> bool {
    if !list.are_related(&request.top_level_site, &request.embedded_site) {
        return false;
    }
    // The top level of the grant must not be a service site.
    if list.role_of(&request.top_level_site) == Some(MemberRole::Service) {
        return false;
    }
    // Service sites as the embedded requester need prior interaction with
    // the set; other member roles are granted outright.
    if list.role_of(&request.embedded_site) == Some(MemberRole::Service) {
        return request.has_prior_interaction;
    }
    true
}

/// Convenience: would this vendor end up sharing unpartitioned state between
/// the two sites for a user who accepts every prompt? Used by the
/// linkability analysis.
pub fn effectively_shares_state(
    vendor: VendorPolicy,
    top_level: &DomainName,
    embedded: &DomainName,
    has_prior_interaction: bool,
    accepts_prompts: bool,
    list: &RwsList,
) -> bool {
    let request = AccessRequest {
        top_level_site: top_level.clone(),
        embedded_site: embedded.clone(),
        has_prior_interaction,
    };
    match vendor.verdict(&request, list) {
        PolicyVerdict::AutoGrant => true,
        PolicyVerdict::Prompt => accepts_prompts,
        PolicyVerdict::Deny => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_model::RwsSet;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn list() -> RwsList {
        let mut set = RwsSet::new("https://bild.de").unwrap();
        set.add_associated("https://autobild.de", "sister brand")
            .unwrap();
        set.add_service("https://bildstatic.de", "cdn").unwrap();
        RwsList::from_sets(vec![set]).unwrap()
    }

    fn request(top: &str, embedded: &str, interacted: bool) -> AccessRequest {
        AccessRequest {
            top_level_site: dn(top),
            embedded_site: dn(embedded),
            has_prior_interaction: interacted,
        }
    }

    #[test]
    fn chrome_rws_auto_grants_within_set() {
        let l = list();
        let p = VendorPolicy::ChromeWithRws;
        assert_eq!(
            p.verdict(&request("bild.de", "autobild.de", false), &l),
            PolicyVerdict::AutoGrant
        );
        assert_eq!(
            p.verdict(&request("autobild.de", "bild.de", false), &l),
            PolicyVerdict::AutoGrant
        );
    }

    #[test]
    fn chrome_rws_prompts_outside_set() {
        let l = list();
        let p = VendorPolicy::ChromeWithRws;
        assert_eq!(
            p.verdict(&request("bild.de", "unrelated-tracker.com", false), &l),
            PolicyVerdict::Prompt
        );
        assert_eq!(
            p.verdict(&request("news-site.com", "other-tracker.com", true), &l),
            PolicyVerdict::Prompt
        );
    }

    #[test]
    fn service_site_rules() {
        let l = list();
        let p = VendorPolicy::ChromeWithRws;
        // Service site as the top level of a grant: never auto-granted.
        assert_eq!(
            p.verdict(&request("bildstatic.de", "bild.de", true), &l),
            PolicyVerdict::Prompt
        );
        // Service site embedded: auto-granted only after set interaction.
        assert_eq!(
            p.verdict(&request("bild.de", "bildstatic.de", false), &l),
            PolicyVerdict::Prompt
        );
        assert_eq!(
            p.verdict(&request("bild.de", "bildstatic.de", true), &l),
            PolicyVerdict::AutoGrant
        );
    }

    #[test]
    fn firefox_requires_interaction_for_auto_grant() {
        let l = list();
        let p = VendorPolicy::Firefox;
        assert_eq!(
            p.verdict(&request("news-site.com", "widget.com", true), &l),
            PolicyVerdict::AutoGrant
        );
        assert_eq!(
            p.verdict(&request("news-site.com", "widget.com", false), &l),
            PolicyVerdict::Prompt
        );
    }

    #[test]
    fn safari_always_prompts_and_brave_always_denies() {
        let l = list();
        for interacted in [false, true] {
            assert_eq!(
                VendorPolicy::Safari.verdict(&request("bild.de", "autobild.de", interacted), &l),
                PolicyVerdict::Prompt
            );
            assert_eq!(
                VendorPolicy::Brave.verdict(&request("bild.de", "autobild.de", interacted), &l),
                PolicyVerdict::Deny
            );
        }
    }

    #[test]
    fn legacy_chrome_never_partitions() {
        let l = list();
        assert!(!VendorPolicy::ChromeLegacy.partitions_by_default());
        assert_eq!(
            VendorPolicy::ChromeLegacy.verdict(&request("anything.com", "tracker.com", false), &l),
            PolicyVerdict::AutoGrant
        );
        for v in [
            VendorPolicy::ChromeWithRws,
            VendorPolicy::Firefox,
            VendorPolicy::Safari,
            VendorPolicy::Brave,
        ] {
            assert!(v.partitions_by_default(), "{} should partition", v.name());
        }
    }

    #[test]
    fn effectively_shares_state_combines_verdict_and_prompts() {
        let l = list();
        // RWS pair in Chrome: shared regardless of prompt behaviour.
        assert!(effectively_shares_state(
            VendorPolicy::ChromeWithRws,
            &dn("bild.de"),
            &dn("autobild.de"),
            false,
            false,
            &l
        ));
        // Unrelated pair in Safari: only shared if the user accepts prompts.
        assert!(effectively_shares_state(
            VendorPolicy::Safari,
            &dn("a.com"),
            &dn("b.com"),
            false,
            true,
            &l
        ));
        assert!(!effectively_shares_state(
            VendorPolicy::Safari,
            &dn("a.com"),
            &dn("b.com"),
            false,
            false,
            &l
        ));
        // Brave: never shared.
        assert!(!effectively_shares_state(
            VendorPolicy::Brave,
            &dn("bild.de"),
            &dn("autobild.de"),
            true,
            true,
            &l
        ));
    }

    #[test]
    fn vendor_names_unique() {
        let mut names: Vec<&str> = VendorPolicy::ALL.iter().map(|v| v.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
