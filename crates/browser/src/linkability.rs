//! Cross-site linkability measurement.
//!
//! The privacy harm the paper worries about is *linkability*: how many of a
//! user's page visits an embedded third party can join into one profile.
//! With full partitioning an embedder can link nothing across top-level
//! sites; without partitioning it links everything; Related Website Sets
//! sit in between, adding back exactly the links within each set. The
//! functions here quantify that for a browsing trace, and power the
//! `ablation_linkability` bench.

use crate::browser::{Browser, PromptBehaviour};
use crate::policy::{StorageAccessPolicy, VendorPolicy};
use rws_domain::{DomainName, SiteResolver};
use rws_model::RwsList;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One observation made by a tracker: it was embedded under a top-level
/// site and read some identifier from the storage it was given.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerObservation {
    /// The top-level site of the visit.
    pub top_level_site: DomainName,
    /// The identifier the tracker found (or minted) in its storage.
    pub identifier: String,
}

/// The result of replaying a browsing trace against one vendor policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkabilityReport {
    /// The vendor policy simulated.
    pub vendor: String,
    /// Number of distinct top-level sites visited with the tracker present.
    pub sites_visited: usize,
    /// Number of visit *pairs* the tracker can link (same identifier seen on
    /// both sites), out of `sites_visited * (sites_visited - 1) / 2`.
    pub linkable_pairs: usize,
    /// Total possible pairs.
    pub total_pairs: usize,
    /// Size of the largest set of sites joined under one identifier.
    pub largest_linked_cluster: usize,
    /// Number of storage-access prompts shown during the trace.
    pub prompts_shown: usize,
}

impl LinkabilityReport {
    /// Fraction of pairs linked, in `[0, 1]`. Zero when fewer than two sites
    /// were visited.
    pub fn linkability(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.linkable_pairs as f64 / self.total_pairs as f64
        }
    }
}

/// Replay a browsing trace in which the user visits each of `top_level_sites`
/// once, and `tracker` is embedded on every one of them, calling
/// `requestStorageAccess` each time. Returns the linkability the tracker
/// achieves under the given vendor policy.
pub fn linkability_report(
    vendor: VendorPolicy,
    list: &RwsList,
    top_level_sites: &[DomainName],
    tracker: &DomainName,
    prompt_behaviour: PromptBehaviour,
) -> LinkabilityReport {
    linkability_report_with_resolver(
        vendor,
        list,
        top_level_sites,
        tracker,
        prompt_behaviour,
        &SiteResolver::embedded(),
    )
}

/// [`linkability_report`] with a shared memoizing [`SiteResolver`]: every
/// browser in a sweep resolves the same trace hosts, so one shared memo
/// table answers all but the first replay's lookups.
pub fn linkability_report_with_resolver(
    vendor: VendorPolicy,
    list: &RwsList,
    top_level_sites: &[DomainName],
    tracker: &DomainName,
    prompt_behaviour: PromptBehaviour,
    resolver: &SiteResolver,
) -> LinkabilityReport {
    let mut browser = Browser::with_resolver(vendor, list.clone(), resolver.clone());
    browser.set_prompt_behaviour(prompt_behaviour);

    // The user has visited the tracker's own site at some point in the past
    // (it holds a first-party identifier) — the standard tracking setup of
    // Section 2.
    browser
        .visit(tracker)
        .set("uid", "tracker-global-id".to_string());

    let mut observations: Vec<TrackerObservation> = Vec::new();
    for (i, site) in top_level_sites.iter().enumerate() {
        browser.visit(site);
        let outcome = browser.embed_with_storage_access_request(site, tracker);
        let storage = browser.frame_storage_mut(site, tracker, outcome);
        // The tracker reads its identifier, minting a fresh partition-local
        // one if none exists (what real trackers do).
        let id = match storage.get("uid") {
            Some(existing) => existing.to_string(),
            None => {
                let fresh = format!("partition-local-{i}");
                storage.set("uid", fresh.clone());
                fresh
            }
        };
        observations.push(TrackerObservation {
            top_level_site: site.clone(),
            identifier: id,
        });
    }

    summarise(vendor, &observations, browser.prompts_shown())
}

/// Replay the same browsing trace under every vendor policy, one policy
/// per thread — the paper's cross-vendor comparison (and the
/// `ablation_policies` bench) in a single call.
///
/// Each policy gets its own [`Browser`], so the replays are fully
/// independent; results come back in [`VendorPolicy::ALL`] order.
pub fn linkability_by_vendor(
    list: &RwsList,
    top_level_sites: &[DomainName],
    tracker: &DomainName,
    prompt_behaviour: PromptBehaviour,
) -> Vec<LinkabilityReport> {
    linkability_by_vendor_with_resolver(
        list,
        top_level_sites,
        tracker,
        prompt_behaviour,
        &SiteResolver::embedded(),
    )
}

/// [`linkability_by_vendor`] with a shared memoizing [`SiteResolver`]
/// handed to every vendor's browser, so the fan-out resolves each trace
/// host once instead of once per vendor.
pub fn linkability_by_vendor_with_resolver(
    list: &RwsList,
    top_level_sites: &[DomainName],
    tracker: &DomainName,
    prompt_behaviour: PromptBehaviour,
    resolver: &SiteResolver,
) -> Vec<LinkabilityReport> {
    let vendors = VendorPolicy::ALL;
    rws_stats::parallel::par_map_coarse(&vendors, |_, vendor| {
        linkability_report_with_resolver(
            *vendor,
            list,
            top_level_sites,
            tracker,
            prompt_behaviour,
            resolver,
        )
    })
}

/// Summarise a set of tracker observations into a report.
pub fn summarise(
    vendor: VendorPolicy,
    observations: &[TrackerObservation],
    prompts_shown: usize,
) -> LinkabilityReport {
    let mut by_identifier: BTreeMap<&str, usize> = BTreeMap::new();
    for obs in observations {
        *by_identifier.entry(obs.identifier.as_str()).or_insert(0) += 1;
    }
    let n = observations.len();
    let total_pairs = n * n.saturating_sub(1) / 2;
    let linkable_pairs: usize = by_identifier
        .values()
        .map(|&c| c * c.saturating_sub(1) / 2)
        .sum();
    let largest = by_identifier.values().copied().max().unwrap_or(0);
    LinkabilityReport {
        vendor: vendor.name().to_string(),
        sites_visited: n,
        linkable_pairs,
        total_pairs,
        largest_linked_cluster: largest,
        prompts_shown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_model::RwsSet;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn rws_list() -> RwsList {
        let mut set = RwsSet::new("https://bild.de").unwrap();
        set.add_associated("https://autobild.de", "sister").unwrap();
        set.add_associated("https://computerbild.de", "sister")
            .unwrap();
        RwsList::from_sets(vec![set]).unwrap()
    }

    fn trace() -> Vec<DomainName> {
        vec![
            dn("bild.de"),
            dn("autobild.de"),
            dn("computerbild.de"),
            dn("unrelated-news.com"),
            dn("unrelated-shop.com"),
        ]
    }

    #[test]
    fn legacy_browser_links_everything() {
        let report = linkability_report(
            VendorPolicy::ChromeLegacy,
            &rws_list(),
            &trace(),
            &dn("tracker.example"),
            PromptBehaviour::AlwaysDecline,
        );
        assert_eq!(report.sites_visited, 5);
        assert_eq!(report.total_pairs, 10);
        assert_eq!(
            report.linkable_pairs, 10,
            "no partitioning links every pair"
        );
        assert_eq!(report.largest_linked_cluster, 5);
        assert!((report.linkability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partitioning_browser_links_nothing_for_outside_tracker() {
        for vendor in [
            VendorPolicy::Brave,
            VendorPolicy::Safari,
            VendorPolicy::ChromeWithRws,
        ] {
            let report = linkability_report(
                vendor,
                &rws_list(),
                &trace(),
                &dn("tracker.example"),
                PromptBehaviour::AlwaysDecline,
            );
            assert_eq!(
                report.linkable_pairs,
                0,
                "{} should not link an unrelated tracker's visits",
                vendor.name()
            );
        }
    }

    #[test]
    fn rws_member_tracker_links_within_its_set_under_chrome() {
        // The tracker is bild.de's own associated analytics property: under
        // Chrome+RWS its embeds on set members are auto-granted, linking
        // exactly the within-set visits.
        let mut set = RwsSet::new("https://bild.de").unwrap();
        set.add_associated("https://autobild.de", "sister").unwrap();
        set.add_associated("https://bildanalytics.de", "in-house analytics")
            .unwrap();
        let list = RwsList::from_sets(vec![set]).unwrap();
        let sites = vec![dn("bild.de"), dn("autobild.de"), dn("independent-news.com")];
        let report = linkability_report(
            VendorPolicy::ChromeWithRws,
            &list,
            &sites,
            &dn("bildanalytics.de"),
            PromptBehaviour::AlwaysDecline,
        );
        // bild.de ↔ autobild.de linkable (both in the set); the independent
        // site is not.
        assert_eq!(report.linkable_pairs, 1);
        assert_eq!(report.largest_linked_cluster, 2);
        assert!(report.linkability() > 0.0 && report.linkability() < 1.0);

        // The same trace under Brave links nothing.
        let brave = linkability_report(
            VendorPolicy::Brave,
            &list,
            &sites,
            &dn("bildanalytics.de"),
            PromptBehaviour::AlwaysDecline,
        );
        assert_eq!(brave.linkable_pairs, 0);
    }

    #[test]
    fn accepting_prompts_restores_linkability_in_prompting_browsers() {
        let report = linkability_report(
            VendorPolicy::Safari,
            &rws_list(),
            &trace(),
            &dn("tracker.example"),
            PromptBehaviour::AlwaysAccept,
        );
        assert_eq!(report.linkable_pairs, report.total_pairs);
        assert_eq!(report.prompts_shown, 5);
    }

    #[test]
    fn empty_trace_has_zero_linkability() {
        let report = linkability_report(
            VendorPolicy::ChromeLegacy,
            &RwsList::new(),
            &[],
            &dn("tracker.example"),
            PromptBehaviour::AlwaysDecline,
        );
        assert_eq!(report.linkability(), 0.0);
        assert_eq!(report.sites_visited, 0);
    }

    #[test]
    fn by_vendor_fan_out_matches_individual_reports() {
        let list = rws_list();
        let trace = trace();
        let tracker = dn("tracker.example");
        let all = linkability_by_vendor(&list, &trace, &tracker, PromptBehaviour::AlwaysDecline);
        assert_eq!(all.len(), VendorPolicy::ALL.len());
        for (vendor, parallel) in VendorPolicy::ALL.iter().zip(&all) {
            let sequential = linkability_report(
                *vendor,
                &list,
                &trace,
                &tracker,
                PromptBehaviour::AlwaysDecline,
            );
            assert_eq!(parallel, &sequential, "mismatch for {}", vendor.name());
        }
    }

    #[test]
    fn shared_resolver_sweep_matches_and_hits_cache() {
        let list = rws_list();
        let trace = trace();
        let tracker = dn("tracker.example");
        let resolver = SiteResolver::embedded();
        let shared = linkability_by_vendor_with_resolver(
            &list,
            &trace,
            &tracker,
            PromptBehaviour::AlwaysDecline,
            &resolver,
        );
        let fresh = linkability_by_vendor(&list, &trace, &tracker, PromptBehaviour::AlwaysDecline);
        assert_eq!(shared, fresh);
        // Five vendors resolved the same trace: all repeats hit the cache.
        let stats = resolver.stats();
        assert!(stats.hits > stats.misses, "stats {stats:?}");
    }

    #[test]
    fn summarise_counts_clusters() {
        let obs = vec![
            TrackerObservation {
                top_level_site: dn("a.com"),
                identifier: "x".into(),
            },
            TrackerObservation {
                top_level_site: dn("b.com"),
                identifier: "x".into(),
            },
            TrackerObservation {
                top_level_site: dn("c.com"),
                identifier: "y".into(),
            },
        ];
        let report = summarise(VendorPolicy::ChromeWithRws, &obs, 0);
        assert_eq!(report.linkable_pairs, 1);
        assert_eq!(report.total_pairs, 3);
        assert_eq!(report.largest_linked_cluster, 2);
    }
}
