//! A simulated browser profile.
//!
//! The [`Browser`] ties the pieces together: it tracks which sites the user
//! has visited first-party (interaction history), hands out partitioned or
//! unpartitioned storage to embedded frames according to the vendor policy,
//! and answers `requestStorageAccess` calls — reproducing the
//! `tracker.example` / Times Internet walk-throughs of Section 2.

use crate::context::{AccessRequest, PartitionKey};
use crate::policy::{PolicyVerdict, StorageAccessPolicy, VendorPolicy};
use crate::storage::{StorageArea, StorageEngine};
use rws_domain::{DomainName, SiteResolver};
use rws_model::RwsList;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How the simulated user answers storage-access prompts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PromptBehaviour {
    /// Accept every prompt.
    AlwaysAccept,
    /// Decline every prompt.
    AlwaysDecline,
}

/// What an embedded frame ended up with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmbedOutcome {
    /// The frame can read and write the embedded site's unpartitioned
    /// storage (either the browser does not partition, or access was
    /// granted).
    Unpartitioned {
        /// Whether a user prompt was shown to get here.
        prompted: bool,
    },
    /// The frame only sees partitioned storage for this (top-level,
    /// embedded) pair.
    Partitioned,
}

impl EmbedOutcome {
    /// True if the frame sees unpartitioned storage.
    pub fn has_unpartitioned_access(self) -> bool {
        matches!(self, EmbedOutcome::Unpartitioned { .. })
    }
}

/// A single simulated browser profile.
#[derive(Debug, Clone)]
pub struct Browser {
    vendor: VendorPolicy,
    engine: StorageEngine,
    list: RwsList,
    resolver: SiteResolver,
    prompt_behaviour: PromptBehaviour,
    visited_first_party: BTreeSet<DomainName>,
    prompts_shown: usize,
}

impl Browser {
    /// Create a browser with the given vendor policy and RWS list. The list
    /// is only consulted by policies that use it (Chrome with RWS).
    pub fn new(vendor: VendorPolicy, list: RwsList) -> Browser {
        Browser::with_resolver(vendor, list, SiteResolver::embedded())
    }

    /// Create a browser sharing a memoizing [`SiteResolver`] with other
    /// components, so repeated hosts across browsers resolve from cache.
    pub fn with_resolver(vendor: VendorPolicy, list: RwsList, resolver: SiteResolver) -> Browser {
        Browser {
            vendor,
            engine: StorageEngine::new(),
            list,
            resolver,
            prompt_behaviour: PromptBehaviour::AlwaysDecline,
            visited_first_party: BTreeSet::new(),
            prompts_shown: 0,
        }
    }

    /// Set how the simulated user answers prompts.
    pub fn set_prompt_behaviour(&mut self, behaviour: PromptBehaviour) -> &mut Self {
        self.prompt_behaviour = behaviour;
        self
    }

    /// The vendor policy in force.
    pub fn vendor(&self) -> VendorPolicy {
        self.vendor
    }

    /// Number of storage-access prompts shown so far.
    pub fn prompts_shown(&self) -> usize {
        self.prompts_shown
    }

    /// The site (eTLD+1) for a host, via the memoized resolver.
    pub fn site_of(&self, host: &DomainName) -> DomainName {
        self.resolver.site_or_self(host)
    }

    /// Visit a page first-party: records the interaction and returns the
    /// site's unpartitioned storage so the page can set identifiers.
    pub fn visit(&mut self, host: &DomainName) -> &mut StorageArea {
        let site = self.site_of(host);
        self.visited_first_party.insert(site.clone());
        self.engine.unpartitioned_mut(&site)
    }

    /// True if the user has visited (interacted with) the site first-party.
    pub fn has_interacted_with(&self, site: &DomainName) -> bool {
        self.visited_first_party.contains(&self.site_of(site))
    }

    /// True if the user has interacted with *any* member of the set that
    /// `site` belongs to (the precondition for service-site auto-grants).
    fn has_interacted_with_set_of(&self, site: &DomainName) -> bool {
        match self.list.set_for(site) {
            Some(set) => set
                .domains()
                .iter()
                .any(|d| self.visited_first_party.contains(d)),
            None => self.has_interacted_with(site),
        }
    }

    /// Embed `embedded_host` as a third-party frame under `top_level_host`
    /// *without* calling the Storage Access API: the frame gets partitioned
    /// storage if the browser partitions, unpartitioned storage otherwise.
    pub fn embed(
        &mut self,
        top_level_host: &DomainName,
        embedded_host: &DomainName,
    ) -> EmbedOutcome {
        let top = self.site_of(top_level_host);
        let embedded = self.site_of(embedded_host);
        if top == embedded || !self.vendor.partitions_by_default() {
            return EmbedOutcome::Unpartitioned { prompted: false };
        }
        // Touch the partitioned area so it exists.
        let key = PartitionKey::third_party(&top, &embedded);
        let _ = self.engine.partitioned_mut(&key);
        EmbedOutcome::Partitioned
    }

    /// Embed a frame and have it call `document.requestStorageAccess()`.
    pub fn embed_with_storage_access_request(
        &mut self,
        top_level_host: &DomainName,
        embedded_host: &DomainName,
    ) -> EmbedOutcome {
        let top = self.site_of(top_level_host);
        let embedded = self.site_of(embedded_host);
        if top == embedded || !self.vendor.partitions_by_default() {
            return EmbedOutcome::Unpartitioned { prompted: false };
        }
        let request = AccessRequest {
            top_level_site: top.clone(),
            embedded_site: embedded.clone(),
            has_prior_interaction: self.has_interacted_with_set_of(&embedded),
        };
        match self.vendor.verdict(&request, &self.list) {
            PolicyVerdict::AutoGrant => EmbedOutcome::Unpartitioned { prompted: false },
            PolicyVerdict::Deny => {
                let key = PartitionKey::third_party(&top, &embedded);
                let _ = self.engine.partitioned_mut(&key);
                EmbedOutcome::Partitioned
            }
            PolicyVerdict::Prompt => {
                self.prompts_shown += 1;
                match self.prompt_behaviour {
                    PromptBehaviour::AlwaysAccept => EmbedOutcome::Unpartitioned { prompted: true },
                    PromptBehaviour::AlwaysDecline => {
                        let key = PartitionKey::third_party(&top, &embedded);
                        let _ = self.engine.partitioned_mut(&key);
                        EmbedOutcome::Partitioned
                    }
                }
            }
        }
    }

    /// The storage area an embedded frame ends up writing to, given the
    /// outcome of its embedding. This is what a tracking script would use to
    /// read or set its user identifier.
    pub fn frame_storage_mut(
        &mut self,
        top_level_host: &DomainName,
        embedded_host: &DomainName,
        outcome: EmbedOutcome,
    ) -> &mut StorageArea {
        let top = self.site_of(top_level_host);
        let embedded = self.site_of(embedded_host);
        match outcome {
            EmbedOutcome::Unpartitioned { .. } => self.engine.unpartitioned_mut(&embedded),
            EmbedOutcome::Partitioned => {
                let key = PartitionKey::third_party(&top, &embedded);
                self.engine.partitioned_mut(&key)
            }
        }
    }

    /// Read-only view of the underlying engine, for assertions and reports.
    pub fn engine(&self) -> &StorageEngine {
        &self.engine
    }

    /// The RWS list the browser is configured with.
    pub fn list(&self) -> &RwsList {
        &self.list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_model::RwsSet;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn rws_list() -> RwsList {
        let mut set = RwsSet::new("https://timesinternet.in").unwrap();
        set.add_associated("https://indiatimes.com", "Times Internet property")
            .unwrap();
        set.add_service("https://timesstatic.in", "asset host")
            .unwrap();
        RwsList::from_sets(vec![set]).unwrap()
    }

    /// The tracker.example walk-through from Section 2: with partitioning,
    /// the tracker sees different cookies first-party vs third-party.
    #[test]
    fn partitioning_isolates_tracker_contexts() {
        let mut browser = Browser::new(VendorPolicy::ChromeWithRws, RwsList::new());
        let tracker = dn("tracker.example");
        let publisher = dn("site.example");

        // Direct visit: the tracker sets a first-party identifier.
        browser.visit(&tracker).set("uid", "direct-visit-id");
        // Embedded on another site without storage access: partitioned jar.
        let outcome = browser.embed(&publisher, &tracker);
        assert_eq!(outcome, EmbedOutcome::Partitioned);
        browser
            .frame_storage_mut(&publisher, &tracker, outcome)
            .set("uid", "embedded-id");

        assert_eq!(
            browser.engine().unpartitioned(&tracker).unwrap().get("uid"),
            Some("direct-visit-id")
        );
        let key = PartitionKey::third_party(&publisher, &tracker);
        assert_eq!(
            browser.engine().partitioned(&key).unwrap().get("uid"),
            Some("embedded-id")
        );
    }

    /// Without partitioning (legacy Chrome/Edge) the tracker sees the same
    /// jar in both contexts — the scenario partitioning is meant to prevent.
    #[test]
    fn legacy_browser_shares_tracker_state() {
        let mut browser = Browser::new(VendorPolicy::ChromeLegacy, RwsList::new());
        let tracker = dn("tracker.example");
        let publisher = dn("site.example");
        browser.visit(&tracker).set("uid", "global-id");
        let outcome = browser.embed(&publisher, &tracker);
        assert!(outcome.has_unpartitioned_access());
        assert_eq!(
            browser
                .frame_storage_mut(&publisher, &tracker, outcome)
                .get("uid"),
            Some("global-id")
        );
    }

    /// The Times Internet walk-through: with RWS, indiatimes.com embedded on
    /// timesinternet.in gets its unpartitioned storage via
    /// requestStorageAccess with no prompt, so the two sites can link the
    /// same user.
    #[test]
    fn rws_auto_grant_links_related_sites() {
        let mut browser = Browser::new(VendorPolicy::ChromeWithRws, rws_list());
        let primary = dn("timesinternet.in");
        let associated = dn("indiatimes.com");

        browser.visit(&associated).set("uid", "user-42");
        let outcome = browser.embed_with_storage_access_request(&primary, &associated);
        assert_eq!(outcome, EmbedOutcome::Unpartitioned { prompted: false });
        assert_eq!(browser.prompts_shown(), 0);
        assert_eq!(
            browser
                .frame_storage_mut(&primary, &associated, outcome)
                .get("uid"),
            Some("user-42")
        );
    }

    /// The same embedding in a browser without the RWS list prompts (Safari)
    /// or is denied (Brave).
    #[test]
    fn other_vendors_do_not_auto_grant_rws_pairs() {
        let list = rws_list();
        let primary = dn("timesinternet.in");
        let associated = dn("indiatimes.com");

        let mut safari = Browser::new(VendorPolicy::Safari, list.clone());
        safari.visit(&associated).set("uid", "user-42");
        let outcome = safari.embed_with_storage_access_request(&primary, &associated);
        assert_eq!(outcome, EmbedOutcome::Partitioned);
        assert_eq!(safari.prompts_shown(), 1);

        let mut safari_accepting = Browser::new(VendorPolicy::Safari, list.clone());
        safari_accepting.set_prompt_behaviour(PromptBehaviour::AlwaysAccept);
        let outcome = safari_accepting.embed_with_storage_access_request(&primary, &associated);
        assert_eq!(outcome, EmbedOutcome::Unpartitioned { prompted: true });

        let mut brave = Browser::new(VendorPolicy::Brave, list);
        let outcome = brave.embed_with_storage_access_request(&primary, &associated);
        assert_eq!(outcome, EmbedOutcome::Partitioned);
        assert_eq!(brave.prompts_shown(), 0, "deny does not prompt");
    }

    #[test]
    fn service_site_needs_set_interaction_for_auto_grant() {
        let list = rws_list();
        let primary = dn("timesinternet.in");
        let service = dn("timesstatic.in");

        // No interaction with any set member yet: prompt (declined).
        let mut fresh = Browser::new(VendorPolicy::ChromeWithRws, list.clone());
        let outcome = fresh.embed_with_storage_access_request(&primary, &service);
        assert_eq!(outcome, EmbedOutcome::Partitioned);
        assert_eq!(fresh.prompts_shown(), 1);

        // After visiting a member of the set, the grant is automatic.
        let mut warmed = Browser::new(VendorPolicy::ChromeWithRws, list);
        warmed.visit(&primary);
        let outcome = warmed.embed_with_storage_access_request(&primary, &service);
        assert_eq!(outcome, EmbedOutcome::Unpartitioned { prompted: false });
    }

    #[test]
    fn same_site_subdomains_share_storage() {
        // eff.org and act.eff.org are the same site — no partitioning applies.
        let mut browser = Browser::new(VendorPolicy::ChromeWithRws, RwsList::new());
        let outcome = browser.embed(&dn("eff.org"), &dn("act.eff.org"));
        assert!(outcome.has_unpartitioned_access());
        assert_eq!(browser.site_of(&dn("act.eff.org")), dn("eff.org"));
    }

    #[test]
    fn interaction_history_is_site_scoped() {
        let mut browser = Browser::new(VendorPolicy::Firefox, RwsList::new());
        browser.visit(&dn("www.widget.com"));
        assert!(browser.has_interacted_with(&dn("widget.com")));
        assert!(browser.has_interacted_with(&dn("other.widget.com")));
        assert!(!browser.has_interacted_with(&dn("unrelated.com")));
    }
}
