//! Cookie/local-storage areas and the partitioned storage engine.

use crate::context::PartitionKey;
use rws_domain::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A single storage area: a key→value map standing in for cookies and
/// `localStorage` alike (the distinction does not matter for the privacy
/// analysis — both are per-partition state).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageArea {
    values: BTreeMap<String, String>,
}

impl StorageArea {
    /// An empty area.
    pub fn new() -> StorageArea {
        StorageArea::default()
    }

    /// Set a key.
    pub fn set<K: Into<String>, V: Into<String>>(&mut self, key: K, value: V) {
        self.values.insert(key.into(), value.into());
    }

    /// Get a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Remove a key, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.values.remove(key)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// The browser profile's storage: one *unpartitioned* area per site (what
/// the site sees first-party, and third-party when it has been granted
/// storage access or the browser does not partition), plus one *partitioned*
/// area per [`PartitionKey`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageEngine {
    unpartitioned: BTreeMap<DomainName, StorageArea>,
    partitioned: BTreeMap<PartitionKey, StorageArea>,
}

impl StorageEngine {
    /// An empty engine.
    pub fn new() -> StorageEngine {
        StorageEngine::default()
    }

    /// Mutable access to a site's unpartitioned (first-party) storage.
    pub fn unpartitioned_mut(&mut self, site: &DomainName) -> &mut StorageArea {
        self.unpartitioned.entry(site.clone()).or_default()
    }

    /// Read-only access to a site's unpartitioned storage, if it exists.
    pub fn unpartitioned(&self, site: &DomainName) -> Option<&StorageArea> {
        self.unpartitioned.get(site)
    }

    /// Mutable access to a partitioned storage area.
    pub fn partitioned_mut(&mut self, key: &PartitionKey) -> &mut StorageArea {
        self.partitioned.entry(key.clone()).or_default()
    }

    /// Read-only access to a partitioned storage area, if it exists.
    pub fn partitioned(&self, key: &PartitionKey) -> Option<&StorageArea> {
        self.partitioned.get(key)
    }

    /// Number of distinct unpartitioned areas that hold at least one key.
    pub fn unpartitioned_area_count(&self) -> usize {
        self.unpartitioned
            .values()
            .filter(|a| !a.is_empty())
            .count()
    }

    /// Number of distinct partitioned areas that hold at least one key.
    pub fn partitioned_area_count(&self) -> usize {
        self.partitioned.values().filter(|a| !a.is_empty()).count()
    }

    /// Clear every storage area (e.g. "clear browsing data").
    pub fn clear(&mut self) {
        self.unpartitioned.clear();
        self.partitioned.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn storage_area_set_get_remove() {
        let mut area = StorageArea::new();
        assert!(area.is_empty());
        area.set("uid", "alice-123");
        assert_eq!(area.get("uid"), Some("alice-123"));
        area.set("uid", "alice-456");
        assert_eq!(area.get("uid"), Some("alice-456"));
        assert_eq!(area.len(), 1);
        assert_eq!(area.remove("uid"), Some("alice-456".to_string()));
        assert!(area.get("uid").is_none());
    }

    #[test]
    fn partitioned_areas_are_isolated_per_key() {
        let mut engine = StorageEngine::new();
        let tracker = dn("tracker.example");
        let key_a = PartitionKey::third_party(&dn("site-a.example"), &tracker);
        let key_b = PartitionKey::third_party(&dn("site-b.example"), &tracker);
        engine.partitioned_mut(&key_a).set("uid", "under-a");
        engine.partitioned_mut(&key_b).set("uid", "under-b");
        assert_eq!(
            engine.partitioned(&key_a).unwrap().get("uid"),
            Some("under-a")
        );
        assert_eq!(
            engine.partitioned(&key_b).unwrap().get("uid"),
            Some("under-b")
        );
        assert_eq!(engine.partitioned_area_count(), 2);
    }

    #[test]
    fn unpartitioned_storage_is_per_site() {
        let mut engine = StorageEngine::new();
        engine.unpartitioned_mut(&dn("a.com")).set("uid", "1");
        engine.unpartitioned_mut(&dn("b.com")).set("uid", "2");
        assert_eq!(
            engine.unpartitioned(&dn("a.com")).unwrap().get("uid"),
            Some("1")
        );
        assert_eq!(
            engine.unpartitioned(&dn("b.com")).unwrap().get("uid"),
            Some("2")
        );
        assert!(engine.unpartitioned(&dn("c.com")).is_none());
        assert_eq!(engine.unpartitioned_area_count(), 2);
    }

    #[test]
    fn partitioned_and_unpartitioned_do_not_alias() {
        let mut engine = StorageEngine::new();
        let tracker = dn("tracker.example");
        engine
            .unpartitioned_mut(&tracker)
            .set("uid", "first-party-id");
        let key = PartitionKey::third_party(&dn("news.example"), &tracker);
        assert!(engine.partitioned(&key).is_none());
        engine.partitioned_mut(&key).set("uid", "partitioned-id");
        assert_eq!(
            engine.unpartitioned(&tracker).unwrap().get("uid"),
            Some("first-party-id")
        );
        assert_eq!(
            engine.partitioned(&key).unwrap().get("uid"),
            Some("partitioned-id")
        );
    }

    #[test]
    fn clear_empties_everything() {
        let mut engine = StorageEngine::new();
        engine.unpartitioned_mut(&dn("a.com")).set("k", "v");
        engine
            .partitioned_mut(&PartitionKey::first_party(&dn("a.com")))
            .set("k", "v");
        engine.clear();
        assert_eq!(engine.unpartitioned_area_count(), 0);
        assert_eq!(engine.partitioned_area_count(), 0);
    }
}
