//! Browser storage-partitioning engine with Related Website Sets support.
//!
//! Section 2 of the paper describes the machinery this crate implements:
//! browsers treat the *site* (eTLD+1) as the Web's privacy boundary and
//! enforce it through **storage partitioning** — an embedded third party
//! gets a different cookie jar for every top-level site it is embedded
//! under, so it cannot link a user's visits across sites. The **Storage
//! Access API** lets an embedded site ask for its *unpartitioned* storage
//! back, and each vendor applies a different policy to that request: Chrome
//! auto-grants it when the two sites are in the same Related Website Set,
//! Firefox and Safari prompt the user (Firefox auto-grants a limited number
//! after interaction), Brave denies, and pre-phase-out Chrome/Edge never
//! partitioned in the first place.
//!
//! The crate provides:
//!
//! * [`StorageEngine`] — partitioned and unpartitioned cookie jars keyed by
//!   [`PartitionKey`];
//! * [`StorageAccessPolicy`] implementations for each vendor
//!   ([`policy::VendorPolicy`]);
//! * [`Browser`] — a single simulated browser profile that visits pages,
//!   embeds third-party frames and evaluates `requestStorageAccess` calls;
//! * [`linkability`] — the cross-site linkability measure used by the
//!   ablation benches to quantify how much user activity a tracker can join
//!   together under each policy, with and without the RWS list.

pub mod browser;
pub mod context;
pub mod linkability;
pub mod policy;
pub mod storage;

pub use browser::{Browser, EmbedOutcome, PromptBehaviour};
pub use context::{AccessRequest, PartitionKey};
pub use linkability::{
    linkability_by_vendor, linkability_report, LinkabilityReport, TrackerObservation,
};
pub use policy::{PolicyVerdict, StorageAccessPolicy, VendorPolicy};
pub use storage::{StorageArea, StorageEngine};
