//! The behavioural participant model.
//!
//! Real participants opened both sites, looked at them, and decided whether
//! they were affiliated with a common organisation. Table 2 reports the cues
//! they say they used: branding elements (66.7%), footer text (61.9%),
//! domain names (57.1%), header text, and about pages. The simulated
//! [`Participant`] judges a pair from exactly those cues, which are computed
//! from the synthetic sites' specifications ([`Cues::observe`]); its
//! parameters are calibrated so the aggregate behaviour reproduces the
//! paper's headline rates (≈63% correct "related" on same-set pairs, ≈94%
//! correct "unrelated" elsewhere, slower responses for wrong-way same-set
//! judgements).

use crate::pairs::SitePair;
use rws_corpus::Corpus;
use rws_domain::{levenshtein, PublicSuffixList, SiteResolver};
use rws_stats::rng::Rng;
use serde::{Deserialize, Serialize};

/// A participant's answer to one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The participant judged the sites related.
    Related,
    /// The participant judged the sites unrelated.
    Unrelated,
}

impl Verdict {
    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Related => "Related",
            Verdict::Unrelated => "Unrelated",
        }
    }
}

/// The cues a participant can observe about a pair of sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Cues {
    /// The two pages present the same organisation name in their footers /
    /// about pages, or visibly share brand naming and palette.
    pub shared_branding: bool,
    /// The registrable domains share their SLD exactly.
    pub identical_sld: bool,
    /// One SLD contains the other (shared stem, e.g. `autobild` / `bild`).
    pub shared_domain_stem: bool,
    /// Normalised SLD edit similarity in `[0, 1]` (1 = identical).
    pub sld_similarity: f64,
    /// The sites are in the same content category (similar topic can create
    /// a false impression of affiliation).
    pub same_category: bool,
    /// Either site failed to load for the participant.
    pub load_failure: bool,
}

impl Cues {
    /// Observe the cues for a pair of sites from the corpus.
    pub fn observe(corpus: &Corpus, pair: &SitePair, psl: &PublicSuffixList) -> Cues {
        Cues::observe_slds(corpus, pair, |domain| psl.second_level_label(domain))
    }

    /// Like [`observe`](Self::observe), but resolving SLDs through a
    /// memoizing [`SiteResolver`] — the survey shows the same pairs to many
    /// participants, so every domain's SLD is resolved once.
    pub fn observe_cached(corpus: &Corpus, pair: &SitePair, resolver: &SiteResolver) -> Cues {
        Cues::observe_slds(corpus, pair, |domain| resolver.second_level_label(domain))
    }

    fn observe_slds(
        corpus: &Corpus,
        pair: &SitePair,
        second_level_label: impl Fn(&rws_domain::DomainName) -> Option<String>,
    ) -> Cues {
        let a = corpus.site(&pair.first);
        let b = corpus.site(&pair.second);
        let (Some(a), Some(b)) = (a, b) else {
            return Cues {
                load_failure: true,
                ..Cues::default()
            };
        };
        let shared_branding = a.brand.organisation_name == b.brand.organisation_name
            || a.brand.slug.contains(&b.brand.slug)
            || b.brand.slug.contains(&a.brand.slug);
        let sld_a = second_level_label(&a.domain);
        let sld_b = second_level_label(&b.domain);
        let (identical_sld, shared_domain_stem, sld_similarity) = match (sld_a, sld_b) {
            (Some(x), Some(y)) => {
                let identical = x == y;
                let stem = !identical && (x.contains(&y) || y.contains(&x));
                let max_len = x.chars().count().max(y.chars().count()).max(1);
                let sim = 1.0 - levenshtein(&x, &y) as f64 / max_len as f64;
                (identical, stem, sim)
            }
            _ => (false, false, 0.0),
        };
        Cues {
            shared_branding,
            identical_sld,
            shared_domain_stem,
            sld_similarity,
            same_category: a.category == b.category,
            load_failure: !a.live || !b.live,
        }
    }
}

/// The cue types participants report using (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Factor {
    /// The domain names themselves.
    DomainName,
    /// Branding elements (logos, colours and similar).
    BrandingElements,
    /// Header text.
    HeaderText,
    /// Footer text.
    FooterText,
    /// "About" pages or similar.
    AboutPages,
    /// Anything else.
    Other,
}

impl Factor {
    /// Every factor, in Table 2's row order.
    pub const ALL: [Factor; 6] = [
        Factor::DomainName,
        Factor::BrandingElements,
        Factor::HeaderText,
        Factor::FooterText,
        Factor::AboutPages,
        Factor::Other,
    ];

    /// The row label used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Factor::DomainName => "Domain name",
            Factor::BrandingElements => "Branding elements",
            Factor::HeaderText => "Header text",
            Factor::FooterText => "Footer text",
            Factor::AboutPages => "\u{201c}About\u{201d} pages or similar",
            Factor::Other => "Other",
        }
    }

    /// The probabilities, from Table 2, that a responding participant
    /// reports using this factor when judging sites *related* and
    /// *unrelated* respectively.
    pub fn reporting_rates(self) -> (f64, f64) {
        match self {
            Factor::DomainName => (0.571, 0.524),
            Factor::BrandingElements => (0.667, 0.619),
            Factor::HeaderText => (0.428, 0.524),
            Factor::FooterText => (0.619, 0.524),
            Factor::AboutPages => (0.476, 0.333),
            Factor::Other => (0.19, 0.238),
        }
    }
}

/// One participant's answers to the end-of-survey factor questionnaire.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactorReport {
    /// Factors the participant says they used to decide sites were related.
    pub for_related: Vec<Factor>,
    /// Factors used to decide sites were unrelated.
    pub for_unrelated: Vec<Factor>,
}

/// Behavioural parameters of one simulated participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Participant {
    /// Participant (session) identifier.
    pub id: usize,
    /// Multiplier on cue-driven detection probability; below 1.0 the
    /// participant misses cues more often.
    pub attentiveness: f64,
    /// Baseline probability of calling any pair related with no cues at all.
    pub base_related_rate: f64,
    /// Median seconds spent on an easy judgement.
    pub base_seconds: f64,
    /// Log-normal sigma of the participant's response times.
    pub time_sigma: f64,
    /// Probability of skipping any individual question.
    pub skip_probability: f64,
    /// Probability of abandoning the survey after each question.
    pub dropout_probability: f64,
    /// Whether the participant answers the factor questionnaire at the end
    /// (21 of 30 did).
    pub answers_factor_question: bool,
}

impl Participant {
    /// Draw a participant from the population model.
    pub fn generate<R: Rng + ?Sized>(id: usize, rng: &mut R) -> Participant {
        Participant {
            id,
            attentiveness: rng.range_f64(0.75, 1.1),
            base_related_rate: rng.range_f64(0.02, 0.09),
            base_seconds: rng.range_f64(18.0, 34.0),
            time_sigma: rng.range_f64(0.3, 0.55),
            skip_probability: 0.05,
            dropout_probability: 0.035,
            answers_factor_question: rng.chance(0.7),
        }
    }

    /// The probability this participant judges a pair related, given cues.
    pub fn related_probability(&self, cues: &Cues) -> f64 {
        if cues.load_failure {
            // A site that does not load gives the participant nothing to go
            // on; they overwhelmingly answer "unrelated".
            return (self.base_related_rate * 0.5).clamp(0.0, 1.0);
        }
        let mut p = self.base_related_rate;
        if cues.shared_branding {
            p += 0.78;
        }
        if cues.identical_sld {
            p += 0.70;
        } else if cues.shared_domain_stem {
            p += 0.55;
        } else if cues.sld_similarity > 0.6 {
            p += 0.25 * cues.sld_similarity;
        }
        if cues.same_category {
            p += 0.02;
        }
        (p * self.attentiveness).clamp(0.0, 0.97)
    }

    /// Judge a pair: returns the verdict and the seconds taken.
    ///
    /// Response times follow the paper's Figure 2 pattern: judgements that
    /// go against the visible evidence — in particular calling a genuinely
    /// related pair "unrelated" after failing to spot the affiliation — take
    /// longer, because the participant keeps looking before giving up.
    pub fn judge<R: Rng + ?Sized>(&self, cues: &Cues, rng: &mut R) -> (Verdict, f64) {
        let p_related = self.related_probability(cues);
        let verdict = if rng.chance(p_related) {
            Verdict::Related
        } else {
            Verdict::Unrelated
        };
        let evidence_strength = (p_related - self.base_related_rate).max(0.0);
        let mut median_seconds = self.base_seconds;
        match verdict {
            Verdict::Related => {
                // Clear evidence is recognised quickly.
                median_seconds *= 1.0 - 0.25 * evidence_strength;
            }
            Verdict::Unrelated => {
                // Deciding "unrelated" when some evidence existed (or on a
                // same-set pair whose affiliation was simply not presented)
                // means the participant searched for longer first.
                median_seconds *= 1.0 + 0.45 * evidence_strength + 0.18;
            }
        }
        let seconds = rng
            .log_normal(median_seconds.max(3.0).ln(), self.time_sigma)
            .clamp(2.0, 120.0);
        (verdict, seconds)
    }

    /// Whether the participant skips this question.
    pub fn skips<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.chance(self.skip_probability)
    }

    /// Whether the participant abandons the survey after a question.
    pub fn drops_out<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.chance(self.dropout_probability)
    }

    /// Fill in the end-of-survey factor questionnaire, if the participant
    /// answers it.
    pub fn report_factors<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<FactorReport> {
        if !self.answers_factor_question {
            return None;
        }
        let mut report = FactorReport::default();
        for factor in Factor::ALL {
            let (p_related, p_unrelated) = factor.reporting_rates();
            if rng.chance(p_related) {
                report.for_related.push(factor);
            }
            if rng.chance(p_unrelated) {
                report.for_unrelated.push(factor);
            }
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_stats::rng::Xoshiro256StarStar;

    fn participant(seed: u64) -> Participant {
        let mut rng = Xoshiro256StarStar::new(seed);
        Participant::generate(0, &mut rng)
    }

    #[test]
    fn strong_cues_raise_related_probability() {
        let p = participant(1);
        let none = Cues::default();
        let branding = Cues {
            shared_branding: true,
            ..Cues::default()
        };
        let domain = Cues {
            shared_domain_stem: true,
            sld_similarity: 0.6,
            ..Cues::default()
        };
        assert!(p.related_probability(&none) < 0.15);
        assert!(p.related_probability(&branding) > 0.6);
        assert!(p.related_probability(&domain) > 0.4);
        assert!(p.related_probability(&branding) <= 0.97);
    }

    #[test]
    fn load_failure_suppresses_related_verdicts() {
        let p = participant(2);
        let cues = Cues {
            shared_branding: true,
            load_failure: true,
            ..Cues::default()
        };
        assert!(p.related_probability(&cues) < 0.1);
    }

    #[test]
    fn judgement_rates_track_probabilities() {
        let p = participant(3);
        let mut rng = Xoshiro256StarStar::new(33);
        let strong = Cues {
            shared_branding: true,
            identical_sld: true,
            sld_similarity: 1.0,
            same_category: true,
            ..Cues::default()
        };
        let related = (0..2000)
            .filter(|_| p.judge(&strong, &mut rng).0 == Verdict::Related)
            .count();
        assert!(
            related > 1700,
            "strong cues should usually yield Related ({related}/2000)"
        );
        let none = Cues::default();
        let false_related = (0..2000)
            .filter(|_| p.judge(&none, &mut rng).0 == Verdict::Related)
            .count();
        assert!(
            false_related < 300,
            "no cues should rarely yield Related ({false_related}/2000)"
        );
    }

    #[test]
    fn wrong_way_unrelated_judgements_take_longer() {
        let p = participant(4);
        let mut rng = Xoshiro256StarStar::new(44);
        let strong = Cues {
            shared_branding: true,
            shared_domain_stem: true,
            sld_similarity: 0.8,
            ..Cues::default()
        };
        let mut related_times = Vec::new();
        let mut unrelated_times = Vec::new();
        for _ in 0..5000 {
            let (verdict, secs) = p.judge(&strong, &mut rng);
            match verdict {
                Verdict::Related => related_times.push(secs),
                Verdict::Unrelated => unrelated_times.push(secs),
            }
        }
        // With strong cues most verdicts are Related, but the rare Unrelated
        // ones are slower on average.
        if !unrelated_times.is_empty() {
            let mean_related = rws_stats::mean(&related_times).unwrap();
            let mean_unrelated = rws_stats::mean(&unrelated_times).unwrap();
            assert!(
                mean_unrelated > mean_related,
                "unrelated {mean_unrelated:.1}s should exceed related {mean_related:.1}s"
            );
        }
        for &t in related_times.iter().chain(unrelated_times.iter()) {
            assert!((2.0..=120.0).contains(&t));
        }
    }

    #[test]
    fn factor_reports_only_from_respondents() {
        let mut rng = Xoshiro256StarStar::new(5);
        let mut responding = 0usize;
        for id in 0..200 {
            let p = Participant::generate(id, &mut rng);
            if let Some(report) = p.report_factors(&mut rng) {
                responding += 1;
                // Reported factors are drawn from the known set without
                // duplicates.
                let mut seen = report.for_related.clone();
                seen.sort();
                seen.dedup();
                assert_eq!(seen.len(), report.for_related.len());
            } else {
                assert!(!p.answers_factor_question);
            }
        }
        assert!(
            (100..=180).contains(&responding),
            "~70% should respond, got {responding}"
        );
    }

    #[test]
    fn verdict_and_factor_labels() {
        assert_eq!(Verdict::Related.label(), "Related");
        assert_eq!(Verdict::Unrelated.label(), "Unrelated");
        assert_eq!(Factor::BrandingElements.label(), "Branding elements");
        assert_eq!(Factor::ALL.len(), 6);
    }
}
