//! Analysis of a survey dataset: Tables 1 and 2, Figures 1 and 2.

use crate::pairs::PairGroup;
use crate::participant::{Factor, Verdict};
use crate::runner::SurveyDataset;
use rws_stats::ecdf::Ecdf;
use rws_stats::ks::{ks_two_sample, KsResult};
use serde::{Deserialize, Serialize};

/// One row of Table 1: per group, how many responses gave each verdict and
/// the mean time taken for each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// The pair group.
    pub group: PairGroup,
    /// Number of "related" responses.
    pub related_count: usize,
    /// Mean seconds for "related" responses (0 when none).
    pub related_mean_seconds: f64,
    /// Number of "unrelated" responses.
    pub unrelated_count: usize,
    /// Mean seconds for "unrelated" responses (0 when none).
    pub unrelated_mean_seconds: f64,
}

impl GroupSummary {
    /// Total responses in the group.
    pub fn total(&self) -> usize {
        self.related_count + self.unrelated_count
    }
}

/// Figure 1: the confusion matrix between expected (RWS ground truth) and
/// actual (participant) responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Expected related, answered related (correct).
    pub related_related: usize,
    /// Expected related, answered unrelated (privacy-harming error).
    pub related_unrelated: usize,
    /// Expected unrelated, answered related.
    pub unrelated_related: usize,
    /// Expected unrelated, answered unrelated (correct).
    pub unrelated_unrelated: usize,
}

impl ConfusionMatrix {
    /// Fraction of expected-related responses answered unrelated — the
    /// paper's headline 36.8%.
    pub fn privacy_harming_rate(&self) -> f64 {
        let total = self.related_related + self.related_unrelated;
        if total == 0 {
            0.0
        } else {
            self.related_unrelated as f64 / total as f64
        }
    }

    /// Fraction of expected-unrelated responses answered unrelated — the
    /// paper's 93.7%.
    pub fn correct_unrelated_rate(&self) -> f64 {
        let total = self.unrelated_related + self.unrelated_unrelated;
        if total == 0 {
            0.0
        } else {
            self.unrelated_unrelated as f64 / total as f64
        }
    }

    /// Total responses.
    pub fn total(&self) -> usize {
        self.related_related
            + self.related_unrelated
            + self.unrelated_related
            + self.unrelated_unrelated
    }
}

/// One row of Table 2: how many factor-questionnaire respondents reported
/// using each factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorTable {
    /// Number of participants who answered the questionnaire.
    pub respondents: usize,
    /// Per factor: (used for related judgements, used for unrelated).
    pub rows: Vec<(Factor, usize, usize)>,
}

impl FactorTable {
    /// The count pair for a factor.
    pub fn counts_for(&self, factor: Factor) -> (usize, usize) {
        self.rows
            .iter()
            .find(|(f, _, _)| *f == factor)
            .map(|(_, r, u)| (*r, *u))
            .unwrap_or((0, 0))
    }
}

/// Figure 2: timing ECDFs for RWS (same set) responses split by verdict,
/// plus the KS test between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingSplit {
    /// ECDF of seconds for "related" verdicts on same-set pairs.
    pub related: Ecdf,
    /// ECDF of seconds for "unrelated" verdicts on same-set pairs.
    pub unrelated: Ecdf,
    /// Two-sample KS test between the two distributions (None when either
    /// sample is empty).
    pub ks: Option<KsResult>,
}

/// The full analysis of one survey dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyAnalysis {
    /// Table 1.
    pub group_summaries: Vec<GroupSummary>,
    /// Figure 1.
    pub confusion: ConfusionMatrix,
    /// Table 2.
    pub factors: FactorTable,
    /// Figure 2.
    pub timing: TimingSplit,
    /// Pairwise KS tests of timing across the four groups (the paper finds
    /// none significant). Keys are `(group_a, group_b)` label pairs.
    pub cross_group_ks: Vec<(PairGroup, PairGroup, KsResult)>,
    /// Total responses analysed.
    pub total_responses: usize,
    /// Participants with at least one privacy-harming error, and the number
    /// of active participants.
    pub harmed_participants: (usize, usize),
}

impl SurveyAnalysis {
    /// Analyse a dataset.
    pub fn analyse(dataset: &SurveyDataset) -> SurveyAnalysis {
        let mut group_summaries = Vec::new();
        for group in PairGroup::ALL {
            let responses = dataset.for_group(group);
            let related: Vec<f64> = responses
                .iter()
                .filter(|r| r.verdict == Verdict::Related)
                .map(|r| r.seconds)
                .collect();
            let unrelated: Vec<f64> = responses
                .iter()
                .filter(|r| r.verdict == Verdict::Unrelated)
                .map(|r| r.seconds)
                .collect();
            group_summaries.push(GroupSummary {
                group,
                related_count: related.len(),
                related_mean_seconds: rws_stats::mean(&related).unwrap_or(0.0),
                unrelated_count: unrelated.len(),
                unrelated_mean_seconds: rws_stats::mean(&unrelated).unwrap_or(0.0),
            });
        }

        let mut confusion = ConfusionMatrix::default();
        for response in &dataset.responses {
            match (response.pair.related_under_rws(), response.verdict) {
                (true, Verdict::Related) => confusion.related_related += 1,
                (true, Verdict::Unrelated) => confusion.related_unrelated += 1,
                (false, Verdict::Related) => confusion.unrelated_related += 1,
                (false, Verdict::Unrelated) => confusion.unrelated_unrelated += 1,
            }
        }

        let mut factors = FactorTable {
            respondents: dataset.factor_reports.len(),
            rows: Factor::ALL.iter().map(|f| (*f, 0usize, 0usize)).collect(),
        };
        for report in &dataset.factor_reports {
            for (factor, related_count, unrelated_count) in factors.rows.iter_mut() {
                if report.for_related.contains(factor) {
                    *related_count += 1;
                }
                if report.for_unrelated.contains(factor) {
                    *unrelated_count += 1;
                }
            }
        }

        let same_set = dataset.for_group(PairGroup::RwsSameSet);
        let related_times: Vec<f64> = same_set
            .iter()
            .filter(|r| r.verdict == Verdict::Related)
            .map(|r| r.seconds)
            .collect();
        let unrelated_times: Vec<f64> = same_set
            .iter()
            .filter(|r| r.verdict == Verdict::Unrelated)
            .map(|r| r.seconds)
            .collect();
        let ks = if related_times.is_empty() || unrelated_times.is_empty() {
            None
        } else {
            Some(ks_two_sample(&related_times, &unrelated_times))
        };
        let timing = TimingSplit {
            related: Ecdf::new(&related_times),
            unrelated: Ecdf::new(&unrelated_times),
            ks,
        };

        let mut cross_group_ks = Vec::new();
        for (i, a) in PairGroup::ALL.iter().enumerate() {
            for b in PairGroup::ALL.iter().skip(i + 1) {
                let ta: Vec<f64> = dataset.for_group(*a).iter().map(|r| r.seconds).collect();
                let tb: Vec<f64> = dataset.for_group(*b).iter().map(|r| r.seconds).collect();
                if !ta.is_empty() && !tb.is_empty() {
                    cross_group_ks.push((*a, *b, ks_two_sample(&ta, &tb)));
                }
            }
        }

        SurveyAnalysis {
            group_summaries,
            confusion,
            factors,
            timing,
            cross_group_ks,
            total_responses: dataset.responses.len(),
            harmed_participants: (
                dataset.participants_with_privacy_harming_error(),
                dataset.active_participants(),
            ),
        }
    }

    /// The fraction of participants that made at least one privacy-harming
    /// error (paper: 73.3%).
    pub fn harmed_participant_rate(&self) -> f64 {
        let (harmed, active) = self.harmed_participants;
        if active == 0 {
            0.0
        } else {
            harmed as f64 / active as f64
        }
    }

    /// The Table 1 row for a group.
    pub fn summary_for(&self, group: PairGroup) -> Option<&GroupSummary> {
        self.group_summaries.iter().find(|s| s.group == group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairGenerator;
    use crate::runner::{SurveyConfig, SurveyRunner};
    use rws_classify::CategoryDatabase;
    use rws_corpus::{CorpusConfig, CorpusGenerator};
    use rws_stats::rng::Xoshiro256StarStar;

    fn analysed(seed: u64) -> SurveyAnalysis {
        // Use the full-size corpus (41 sets) so the same-set pair pool is
        // large enough for the calibration checks to be meaningful.
        let corpus = CorpusGenerator::new(CorpusConfig {
            top_sites: 400,
            ..CorpusConfig::default()
        })
        .generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let mut rng = Xoshiro256StarStar::new(seed);
        let universe = PairGenerator::new(&corpus, &categories).generate(&mut rng);
        let dataset = SurveyRunner::new(SurveyConfig {
            seed,
            ..SurveyConfig::default()
        })
        .run(&corpus, &universe);
        SurveyAnalysis::analyse(&dataset)
    }

    #[test]
    fn confusion_matrix_sums_to_total_responses() {
        let analysis = analysed(1);
        assert_eq!(analysis.confusion.total(), analysis.total_responses);
        assert!(analysis.total_responses > 100);
    }

    #[test]
    fn group_summaries_cover_all_four_groups() {
        let analysis = analysed(2);
        assert_eq!(analysis.group_summaries.len(), 4);
        let total: usize = analysis
            .group_summaries
            .iter()
            .map(GroupSummary::total)
            .sum();
        assert_eq!(total, analysis.total_responses);
        // Groups 2-4 are dominated by "unrelated" verdicts.
        for group in [
            PairGroup::RwsOtherSet,
            PairGroup::TopSiteSameCategory,
            PairGroup::TopSiteOtherCategory,
        ] {
            if let Some(summary) = analysis.summary_for(group) {
                if summary.total() > 10 {
                    assert!(
                        summary.unrelated_count > summary.related_count,
                        "{:?}: {} related vs {} unrelated",
                        group,
                        summary.related_count,
                        summary.unrelated_count
                    );
                }
            }
        }
    }

    #[test]
    fn headline_rates_have_paper_shape() {
        let analysis = analysed(3);
        let harming = analysis.confusion.privacy_harming_rate();
        assert!(
            (0.15..=0.60).contains(&harming),
            "privacy-harming rate {harming} far from the paper's 0.368"
        );
        let correct_unrelated = analysis.confusion.correct_unrelated_rate();
        assert!(
            correct_unrelated > 0.85,
            "correct-unrelated rate {correct_unrelated} far from the paper's 0.937"
        );
        let harmed = analysis.harmed_participant_rate();
        assert!(
            harmed > 0.4,
            "harmed-participant rate {harmed} far from the paper's 0.733"
        );
    }

    #[test]
    fn wrong_way_same_set_judgements_take_longer_on_average() {
        let analysis = analysed(4);
        let summary = analysis.summary_for(PairGroup::RwsSameSet).unwrap();
        if summary.related_count > 10 && summary.unrelated_count > 10 {
            assert!(
                summary.unrelated_mean_seconds > summary.related_mean_seconds,
                "unrelated {:.1}s should exceed related {:.1}s",
                summary.unrelated_mean_seconds,
                summary.related_mean_seconds
            );
        }
        // Figure 2's ECDFs exist and the KS test ran.
        assert!(!analysis.timing.related.is_empty());
        assert!(!analysis.timing.unrelated.is_empty());
        assert!(analysis.timing.ks.is_some());
    }

    #[test]
    fn factor_table_counts_bounded_by_respondents() {
        let analysis = analysed(5);
        assert!(analysis.factors.respondents > 0);
        for (factor, related, unrelated) in &analysis.factors.rows {
            assert!(*related <= analysis.factors.respondents, "{factor:?}");
            assert!(*unrelated <= analysis.factors.respondents, "{factor:?}");
        }
        // Branding elements should be among the most-reported factors for
        // related judgements, as in Table 2.
        let (branding_related, _) = analysis.factors.counts_for(Factor::BrandingElements);
        let (other_related, _) = analysis.factors.counts_for(Factor::Other);
        assert!(branding_related >= other_related);
    }

    #[test]
    fn cross_group_ks_covers_all_pairs() {
        let analysis = analysed(6);
        // Four groups → six unordered pairs (when all groups have data).
        assert!(analysis.cross_group_ks.len() <= 6);
        for (_, _, ks) in &analysis.cross_group_ks {
            assert!((0.0..=1.0).contains(&ks.p_value));
        }
    }
}
