//! A sharded, concurrent cache of observed pair cues.
//!
//! Cues depend only on the pair shown, not on the participant: every
//! participant who draws `(a, b)` sees the same branding, domain and
//! category evidence. The sequential runner memoized this in a run-local
//! `HashMap`; with participants fanned out across the pool the cache must
//! be shared *between* concurrent participants, so it wraps the same
//! [`ShardedMemo`] the site resolver's host table uses. Observation is
//! deterministic, so two participants racing on the same uncached pair
//! compute the same [`Cues`] and the first-writer-wins insert is benign.

use crate::pairs::SitePair;
use crate::participant::Cues;
use rws_corpus::Corpus;
use rws_domain::{DomainName, SiteResolver};
use rws_stats::memo::ShardedMemo;

/// A concurrent pair → [`Cues`] memo shared by every participant of a run.
#[derive(Debug, Default)]
pub struct CueCache {
    memo: ShardedMemo<(DomainName, DomainName), Cues>,
}

impl CueCache {
    /// An empty cache.
    pub fn new() -> CueCache {
        CueCache {
            memo: ShardedMemo::new(),
        }
    }

    /// The cues for a pair: answered from the cache when any participant
    /// already observed it, computed (through the shared resolver) and
    /// published otherwise.
    pub fn observe(&self, corpus: &Corpus, pair: &SitePair, resolver: &SiteResolver) -> Cues {
        self.memo
            .get_or_insert_with((pair.first.clone(), pair.second.clone()), || {
                Cues::observe_cached(corpus, pair, resolver)
            })
    }

    /// Number of distinct pairs cached, across all shards.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairGroup;

    fn pair(a: &str, b: &str) -> SitePair {
        SitePair {
            first: DomainName::parse(a).unwrap(),
            second: DomainName::parse(b).unwrap(),
            group: PairGroup::RwsOtherSet,
        }
    }

    #[test]
    fn caches_distinct_pairs_once() {
        let corpus =
            rws_corpus::CorpusGenerator::new(rws_corpus::CorpusConfig::small(3)).generate();
        let resolver = SiteResolver::embedded();
        let cache = CueCache::new();
        assert!(cache.is_empty());
        let domains = corpus.list.all_domains();
        let p = pair(domains[0].as_str(), domains[1].as_str());
        let first = cache.observe(&corpus, &p, &resolver);
        let again = cache.observe(&corpus, &p, &resolver);
        assert_eq!(first, again);
        assert_eq!(cache.len(), 1);
        let q = pair(domains[1].as_str(), domains[2].as_str());
        let _ = cache.observe(&corpus, &q, &resolver);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_cues_match_direct_observation() {
        let corpus =
            rws_corpus::CorpusGenerator::new(rws_corpus::CorpusConfig::small(5)).generate();
        let resolver = SiteResolver::embedded();
        let cache = CueCache::new();
        let domains = corpus.list.all_domains();
        for window in domains.windows(2).take(10) {
            let p = pair(window[0].as_str(), window[1].as_str());
            let cached = cache.observe(&corpus, &p, &resolver);
            let direct = Cues::observe_cached(&corpus, &p, &resolver);
            assert_eq!(cached, direct);
        }
    }

    #[test]
    fn concurrent_observers_agree() {
        let corpus =
            rws_corpus::CorpusGenerator::new(rws_corpus::CorpusConfig::small(7)).generate();
        let resolver = SiteResolver::embedded();
        let cache = CueCache::new();
        let domains = corpus.list.all_domains();
        let pairs: Vec<SitePair> = domains
            .windows(2)
            .map(|w| pair(w[0].as_str(), w[1].as_str()))
            .collect();
        let pool = rws_stats::pool::ThreadPool::new(3);
        let observed =
            rws_stats::pool::par_map_on(&pool, &pairs, |_, p| cache.observe(&corpus, p, &resolver));
        for (p, cues) in pairs.iter().zip(&observed) {
            assert_eq!(*cues, Cues::observe_cached(&corpus, p, &resolver));
        }
        assert_eq!(cache.len(), pairs.len());
    }
}
