//! The survey runner: participants × pairs → timed responses.

use crate::pairs::{PairGroup, PairUniverse, SitePair};
use crate::participant::{Cues, FactorReport, Participant, Verdict};
use rws_corpus::Corpus;
use rws_domain::SiteResolver;
use rws_stats::rng::Xoshiro256StarStar;
use rws_stats::sampling::{sample_without_replacement, shuffle};
use serde::{Deserialize, Serialize};

/// Configuration of the survey run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Seed for participant behaviour and pair assignment.
    pub seed: u64,
    /// Number of participants (the paper recruited 30 sessions).
    pub participants: usize,
    /// Pairs drawn per group for each participant (the paper used 5,
    /// giving 20 questions).
    pub pairs_per_group: usize,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            seed: 0x5343_2024,
            participants: 30,
            pairs_per_group: 5,
        }
    }
}

/// One answered question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyResponse {
    /// The participant (session) id.
    pub participant: usize,
    /// The pair shown.
    pub pair: SitePair,
    /// The verdict given.
    pub verdict: Verdict,
    /// Seconds spent on the question.
    pub seconds: f64,
}

impl SurveyResponse {
    /// True if this response is a privacy-harming error: the pair is related
    /// under RWS but the participant judged it unrelated.
    pub fn privacy_harming_error(&self) -> bool {
        self.pair.related_under_rws() && self.verdict == Verdict::Unrelated
    }

    /// True if the verdict matches the RWS ground truth.
    pub fn correct(&self) -> bool {
        (self.verdict == Verdict::Related) == self.pair.related_under_rws()
    }
}

/// The complete dataset produced by a run — the analogue of the anonymised
/// CSV released with the paper.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SurveyDataset {
    /// Every answered question.
    pub responses: Vec<SurveyResponse>,
    /// Factor questionnaires from the participants that answered them.
    pub factor_reports: Vec<FactorReport>,
    /// Number of participants that started the survey.
    pub participants_started: usize,
}

impl SurveyDataset {
    /// All responses for one group.
    pub fn for_group(&self, group: PairGroup) -> Vec<&SurveyResponse> {
        self.responses
            .iter()
            .filter(|r| r.pair.group == group)
            .collect()
    }

    /// Number of distinct participants with at least one response.
    pub fn active_participants(&self) -> usize {
        let mut ids: Vec<usize> = self.responses.iter().map(|r| r.participant).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of participants that made at least one privacy-harming error
    /// (the paper: 22 of 30, 73.3%).
    pub fn participants_with_privacy_harming_error(&self) -> usize {
        let mut ids: Vec<usize> = self
            .responses
            .iter()
            .filter(|r| r.privacy_harming_error())
            .map(|r| r.participant)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// Runs the survey against a corpus.
pub struct SurveyRunner {
    config: SurveyConfig,
}

impl SurveyRunner {
    /// Create a runner.
    pub fn new(config: SurveyConfig) -> SurveyRunner {
        SurveyRunner { config }
    }

    /// Run the survey: each participant sees `pairs_per_group` pairs from
    /// each group, in shuffled order, may skip questions or abandon the
    /// survey, and finally answers the factor questionnaire.
    pub fn run(&self, corpus: &Corpus, universe: &PairUniverse) -> SurveyDataset {
        self.run_with(corpus, universe, &SiteResolver::embedded())
    }

    /// Like [`run`](Self::run), but resolving SLD cues through a shared
    /// memoizing [`SiteResolver`] instead of constructing a fresh one — the
    /// scenario pipeline hands every layer the same resolver, so hosts the
    /// corpus and history already resolved answer from cache here.
    pub fn run_with(
        &self,
        corpus: &Corpus,
        universe: &PairUniverse,
        resolver: &SiteResolver,
    ) -> SurveyDataset {
        let cfg = self.config;
        let mut rng = Xoshiro256StarStar::new(cfg.seed).derive("survey-runner");
        // Cues depend only on the pair, not the participant: observe each
        // distinct pair once and serve repeats from this cache.
        let mut cue_cache: std::collections::HashMap<
            (rws_domain::DomainName, rws_domain::DomainName),
            Cues,
        > = std::collections::HashMap::new();
        let mut dataset = SurveyDataset {
            participants_started: cfg.participants,
            ..SurveyDataset::default()
        };

        for participant_id in 0..cfg.participants {
            let participant = Participant::generate(participant_id, &mut rng);

            // Draw this participant's question list: pairs_per_group from
            // each group (or as many as exist), shuffled together.
            let mut questions: Vec<SitePair> = Vec::new();
            for group in PairGroup::ALL {
                let pool = universe.group(group);
                if pool.is_empty() {
                    continue;
                }
                questions.extend(sample_without_replacement(
                    pool,
                    cfg.pairs_per_group,
                    &mut rng,
                ));
            }
            shuffle(&mut questions, &mut rng);

            for pair in questions {
                if participant.skips(&mut rng) {
                    continue;
                }
                let cues = *cue_cache
                    .entry((pair.first.clone(), pair.second.clone()))
                    .or_insert_with(|| Cues::observe_cached(corpus, &pair, resolver));
                let (verdict, seconds) = participant.judge(&cues, &mut rng);
                dataset.responses.push(SurveyResponse {
                    participant: participant_id,
                    pair,
                    verdict,
                    seconds,
                });
                if participant.drops_out(&mut rng) {
                    break;
                }
            }

            if let Some(report) = participant.report_factors(&mut rng) {
                dataset.factor_reports.push(report);
            }
        }

        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairGenerator;
    use rws_classify::CategoryDatabase;
    use rws_corpus::{CorpusConfig, CorpusGenerator};

    fn run_small(seed: u64) -> (rws_corpus::Corpus, SurveyDataset) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(31)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let mut rng = Xoshiro256StarStar::new(seed);
        let universe = PairGenerator::new(&corpus, &categories).generate(&mut rng);
        let dataset = SurveyRunner::new(SurveyConfig {
            seed,
            ..SurveyConfig::default()
        })
        .run(&corpus, &universe);
        (corpus, dataset)
    }

    #[test]
    fn run_produces_responses_for_every_group_present() {
        let (_, dataset) = run_small(1);
        assert!(!dataset.responses.is_empty());
        assert!(dataset.active_participants() > 20);
        assert!(dataset.participants_started == 30);
        // Most participants answer most of their 20 questions.
        let per_participant = dataset.responses.len() as f64 / dataset.active_participants() as f64;
        assert!(
            per_participant > 8.0,
            "mean responses per participant {per_participant}"
        );
        // Factor questionnaires come from roughly 70% of participants.
        assert!((10..=30).contains(&dataset.factor_reports.len()));
    }

    #[test]
    fn runs_are_deterministic() {
        let (_, a) = run_small(7);
        let (_, b) = run_small(7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = run_small(7);
        let (_, b) = run_small(8);
        assert_ne!(a, b);
    }

    #[test]
    fn privacy_harming_errors_only_on_same_set_pairs() {
        let (_, dataset) = run_small(3);
        for response in &dataset.responses {
            if response.privacy_harming_error() {
                assert_eq!(response.pair.group, PairGroup::RwsSameSet);
                assert_eq!(response.verdict, Verdict::Unrelated);
            }
        }
        assert!(dataset.participants_with_privacy_harming_error() <= dataset.active_participants());
    }

    #[test]
    fn response_times_within_bounds() {
        let (_, dataset) = run_small(4);
        for response in &dataset.responses {
            assert!((2.0..=120.0).contains(&response.seconds));
        }
    }

    #[test]
    fn correctness_definition_matches_ground_truth() {
        let (corpus, dataset) = run_small(5);
        for response in &dataset.responses {
            let actually_related = corpus
                .list
                .are_related(&response.pair.first, &response.pair.second);
            assert_eq!(response.pair.related_under_rws(), actually_related);
            assert_eq!(
                response.correct(),
                (response.verdict == Verdict::Related) == actually_related
            );
        }
    }
}
