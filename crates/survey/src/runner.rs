//! The survey runner: participants × pairs → timed responses.
//!
//! # Parallel sessions
//!
//! Real survey sessions were independent: each participant saw their own
//! pair draw and judged it alone. The runner models that directly — every
//! participant's behaviour (their parameters, question draw, skips,
//! judgements, dropout and factor questionnaire) comes from an rng stream
//! **derived from the participant id**, the same per-task derivation the
//! governance replay uses per submitter. Participants therefore fan out
//! across the engine's pool one session per task, share one concurrent
//! [`CueCache`](crate::cue_cache::CueCache) (cues depend only on the pair),
//! and the dataset is byte-identical no matter how the sessions interleave
//! (or whether they run sequentially at all).

use crate::cue_cache::CueCache;
use crate::pairs::{PairGroup, PairUniverse, SitePair};
use crate::participant::{FactorReport, Participant, Verdict};
use rws_corpus::Corpus;
use rws_domain::SiteResolver;
use rws_engine::{EngineBackend, EngineContext};
use rws_stats::pool::ThreadPool;
use rws_stats::rng::Xoshiro256StarStar;
use rws_stats::sampling::{sample_indices_floyd, sample_indices_without_replacement, shuffle};
use serde::{Deserialize, Serialize};

/// Configuration of the survey run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Seed for participant behaviour and pair assignment.
    pub seed: u64,
    /// Number of participants (the paper recruited 30 sessions).
    pub participants: usize,
    /// Pairs drawn per group for each participant (the paper used 5,
    /// giving 20 questions).
    pub pairs_per_group: usize,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            seed: 0x5343_2024,
            participants: 30,
            pairs_per_group: 5,
        }
    }
}

/// One answered question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyResponse {
    /// The participant (session) id.
    pub participant: usize,
    /// The pair shown.
    pub pair: SitePair,
    /// The verdict given.
    pub verdict: Verdict,
    /// Seconds spent on the question.
    pub seconds: f64,
}

impl SurveyResponse {
    /// True if this response is a privacy-harming error: the pair is related
    /// under RWS but the participant judged it unrelated.
    pub fn privacy_harming_error(&self) -> bool {
        self.pair.related_under_rws() && self.verdict == Verdict::Unrelated
    }

    /// True if the verdict matches the RWS ground truth.
    pub fn correct(&self) -> bool {
        (self.verdict == Verdict::Related) == self.pair.related_under_rws()
    }
}

/// The complete dataset produced by a run — the analogue of the anonymised
/// CSV released with the paper.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SurveyDataset {
    /// Every answered question.
    pub responses: Vec<SurveyResponse>,
    /// Factor questionnaires from the participants that answered them.
    pub factor_reports: Vec<FactorReport>,
    /// Number of participants that started the survey.
    pub participants_started: usize,
}

impl SurveyDataset {
    /// All responses for one group.
    pub fn for_group(&self, group: PairGroup) -> Vec<&SurveyResponse> {
        self.responses
            .iter()
            .filter(|r| r.pair.group == group)
            .collect()
    }

    /// Number of distinct participants with at least one response.
    ///
    /// Counted through a participant-id bitset rather than clone-sort-dedup
    /// of the whole response vector: at scaled universes (thousands of
    /// sessions × dozens of answers) this runs once per analysis figure,
    /// and the O(n log n) sort over owned copies was the hot spot.
    pub fn active_participants(&self) -> usize {
        count_distinct_participants(self.responses.iter().map(|r| r.participant))
    }

    /// Number of participants that made at least one privacy-harming error
    /// (the paper: 22 of 30, 73.3%).
    pub fn participants_with_privacy_harming_error(&self) -> usize {
        count_distinct_participants(
            self.responses
                .iter()
                .filter(|r| r.privacy_harming_error())
                .map(|r| r.participant),
        )
    }
}

/// Count distinct ids via a growable bitset. Ids are session indices
/// (`0..participants_started`), so the bitset stays one word per 64
/// participants and each response costs one index + mask probe.
fn count_distinct_participants(ids: impl Iterator<Item = usize>) -> usize {
    let mut words: Vec<u64> = Vec::new();
    let mut distinct = 0usize;
    for id in ids {
        let word = id / 64;
        if word >= words.len() {
            words.resize(word + 1, 0);
        }
        let mask = 1u64 << (id % 64);
        if words[word] & mask == 0 {
            words[word] |= mask;
            distinct += 1;
        }
    }
    distinct
}

/// Runs the survey against a corpus.
pub struct SurveyRunner {
    config: SurveyConfig,
}

impl SurveyRunner {
    /// Create a runner.
    pub fn new(config: SurveyConfig) -> SurveyRunner {
        SurveyRunner { config }
    }

    /// Run the survey: each participant sees `pairs_per_group` pairs from
    /// each group, in shuffled order, may skip questions or abandon the
    /// survey, and finally answers the factor questionnaire.
    pub fn run(&self, corpus: &Corpus, universe: &PairUniverse) -> SurveyDataset {
        self.run_with(corpus, universe, &SiteResolver::embedded())
    }

    /// Like [`run`](Self::run), but resolving SLD cues through a shared
    /// memoizing [`SiteResolver`] instead of constructing a fresh one — the
    /// scenario pipeline hands every layer the same resolver, so hosts the
    /// corpus and history already resolved answer from cache here.
    pub fn run_with(
        &self,
        corpus: &Corpus,
        universe: &PairUniverse,
        resolver: &SiteResolver,
    ) -> SurveyDataset {
        self.run_on(
            corpus,
            universe,
            &EngineContext::with_parts(ThreadPool::global().clone(), resolver.clone()),
        )
    }

    /// Run the survey on an engine: one pool task per participant, cues
    /// shared through a concurrent [`CueCache`]. Output is identical
    /// whether the context is pooled or sequential, because every
    /// participant draws from their own derived rng stream.
    pub fn run_on<E: EngineBackend>(
        &self,
        corpus: &Corpus,
        universe: &PairUniverse,
        ctx: &E,
    ) -> SurveyDataset {
        let cfg = self.config;
        let base = Xoshiro256StarStar::new(cfg.seed).derive("survey-runner");
        // Cues depend only on the pair, not the participant: the first
        // session to show a pair observes it, every other session (on any
        // worker) reads it back.
        let cue_cache = CueCache::new();
        let ids: Vec<usize> = (0..cfg.participants).collect();
        // Supervised sweep: under the default fail-fast policy this is the
        // plain pooled fan-out; under salvage a panicking participant is
        // quarantined in the context's monitor and contributes no
        // responses, like a session the survey platform dropped.
        let sessions: Vec<Option<ParticipantSession>> =
            ctx.par_map_supervised("survey", &ids, |_, id| {
                run_participant(
                    cfg,
                    corpus,
                    universe,
                    ctx.resolver(),
                    &cue_cache,
                    &base,
                    *id,
                )
            });

        let mut dataset = SurveyDataset {
            participants_started: cfg.participants,
            ..SurveyDataset::default()
        };
        for session in sessions.into_iter().flatten() {
            dataset.responses.extend(session.responses);
            if let Some(report) = session.factor_report {
                dataset.factor_reports.push(report);
            }
        }
        dataset
    }
}

/// Everything one participant produced: their answered questions (in the
/// order they answered them) and their factor questionnaire, if any.
struct ParticipantSession {
    responses: Vec<SurveyResponse>,
    factor_report: Option<FactorReport>,
}

/// One complete survey session, pure in `(config, corpus, universe,
/// participant id)`: the participant's behaviour comes entirely from the
/// stream derived from their id, so sessions can run in any order, on any
/// thread, and produce the same answers.
fn run_participant(
    cfg: SurveyConfig,
    corpus: &Corpus,
    universe: &PairUniverse,
    resolver: &SiteResolver,
    cue_cache: &CueCache,
    base: &Xoshiro256StarStar,
    participant_id: usize,
) -> ParticipantSession {
    let mut rng = base.derive(&format!("participant:{participant_id}"));
    let participant = Participant::generate(participant_id, &mut rng);

    // Draw this participant's question list: pairs_per_group from each
    // group (or as many as exist), shuffled together. Only the drawn
    // questions are materialized into owned pairs — the universe itself
    // stays indexed. Paper-scale pools use the partial Fisher–Yates draw
    // (O(pool), preserves the established streams); scaled universes
    // switch to the O(k) Floyd draw so per-session setup stays flat as
    // the pool grows to millions of pairs.
    const FLOYD_CUTOFF: usize = 4096;
    let mut questions: Vec<SitePair> = Vec::new();
    for group in PairGroup::ALL {
        let pool = universe.group(group);
        if pool.is_empty() {
            continue;
        }
        let picks = if pool.len() >= FLOYD_CUTOFF {
            sample_indices_floyd(pool.len(), cfg.pairs_per_group, &mut rng)
        } else {
            sample_indices_without_replacement(pool.len(), cfg.pairs_per_group, &mut rng)
        };
        questions.extend(
            picks
                .into_iter()
                .map(|pick| universe.materialize(group, pool[pick])),
        );
    }
    shuffle(&mut questions, &mut rng);

    let mut session = ParticipantSession {
        responses: Vec::with_capacity(questions.len()),
        factor_report: None,
    };
    for pair in questions {
        if participant.skips(&mut rng) {
            continue;
        }
        let cues = cue_cache.observe(corpus, &pair, resolver);
        let (verdict, seconds) = participant.judge(&cues, &mut rng);
        session.responses.push(SurveyResponse {
            participant: participant_id,
            pair,
            verdict,
            seconds,
        });
        if participant.drops_out(&mut rng) {
            break;
        }
    }
    session.factor_report = participant.report_factors(&mut rng);
    session
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairGenerator;
    use rws_classify::CategoryDatabase;
    use rws_corpus::{CorpusConfig, CorpusGenerator};

    fn run_small(seed: u64) -> (rws_corpus::Corpus, SurveyDataset) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(31)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let mut rng = Xoshiro256StarStar::new(seed);
        let universe = PairGenerator::new(&corpus, &categories).generate(&mut rng);
        let dataset = SurveyRunner::new(SurveyConfig {
            seed,
            ..SurveyConfig::default()
        })
        .run(&corpus, &universe);
        (corpus, dataset)
    }

    #[test]
    fn run_produces_responses_for_every_group_present() {
        let (_, dataset) = run_small(1);
        assert!(!dataset.responses.is_empty());
        assert!(dataset.active_participants() > 20);
        assert!(dataset.participants_started == 30);
        // Most participants answer most of their 20 questions.
        let per_participant = dataset.responses.len() as f64 / dataset.active_participants() as f64;
        assert!(
            per_participant > 8.0,
            "mean responses per participant {per_participant}"
        );
        // Factor questionnaires come from roughly 70% of participants.
        assert!((10..=30).contains(&dataset.factor_reports.len()));
    }

    #[test]
    fn runs_are_deterministic() {
        let (_, a) = run_small(7);
        let (_, b) = run_small(7);
        assert_eq!(a, b);
    }

    #[test]
    fn pooled_and_sequential_runs_are_identical() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(31)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let mut rng = Xoshiro256StarStar::new(9);
        let universe = PairGenerator::new(&corpus, &categories).generate(&mut rng);
        let runner = SurveyRunner::new(SurveyConfig::default());
        let pooled_ctx = EngineContext::embedded();
        let pooled = runner.run_on(&corpus, &universe, &pooled_ctx);
        let sequential = runner.run_on(&corpus, &universe, &pooled_ctx.sequential_twin());
        assert_eq!(pooled, sequential);
    }

    #[test]
    fn distinct_participant_counts_match_sort_dedup_oracle() {
        let (_, dataset) = run_small(6);
        let oracle = |ids: Vec<usize>| {
            let mut ids = ids;
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        assert_eq!(
            dataset.active_participants(),
            oracle(dataset.responses.iter().map(|r| r.participant).collect())
        );
        assert_eq!(
            dataset.participants_with_privacy_harming_error(),
            oracle(
                dataset
                    .responses
                    .iter()
                    .filter(|r| r.privacy_harming_error())
                    .map(|r| r.participant)
                    .collect()
            )
        );
        // Sparse ids (an analysis slicing a subset) still count correctly.
        assert_eq!(
            count_distinct_participants([3, 200, 3, 64, 200].into_iter()),
            3
        );
        assert_eq!(count_distinct_participants(std::iter::empty()), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let (_, a) = run_small(7);
        let (_, b) = run_small(8);
        assert_ne!(a, b);
    }

    #[test]
    fn privacy_harming_errors_only_on_same_set_pairs() {
        let (_, dataset) = run_small(3);
        for response in &dataset.responses {
            if response.privacy_harming_error() {
                assert_eq!(response.pair.group, PairGroup::RwsSameSet);
                assert_eq!(response.verdict, Verdict::Unrelated);
            }
        }
        assert!(dataset.participants_with_privacy_harming_error() <= dataset.active_participants());
    }

    #[test]
    fn response_times_within_bounds() {
        let (_, dataset) = run_small(4);
        for response in &dataset.responses {
            assert!((2.0..=120.0).contains(&response.seconds));
        }
    }

    #[test]
    fn correctness_definition_matches_ground_truth() {
        let (corpus, dataset) = run_small(5);
        for response in &dataset.responses {
            let actually_related = corpus
                .list
                .are_related(&response.pair.first, &response.pair.second);
            assert_eq!(response.pair.related_under_rws(), actually_related);
            assert_eq!(
                response.correct(),
                (response.verdict == Verdict::Related) == actually_related
            );
        }
    }
}
