//! The user-study machinery of Section 3.
//!
//! The paper's central experiment asks 30 participants to judge, for 20
//! pairs of websites each, whether the two sites are "related to each other
//! by an affiliation to a common company or organisation". The pairs are
//! drawn from four groups (same RWS set, different RWS sets, top sites in
//! the same Forcepoint category, top sites in a different category), each
//! response is timed, and participants finally report which cues they used.
//! The headline findings: 36.8% of same-set pairs are judged *unrelated*
//! (privacy-harming errors), 73.3% of participants make at least one such
//! error, wrong-way judgements take longer, and branding/domain names are
//! the dominant cues.
//!
//! Human participants cannot be recruited offline, so this crate pairs the
//! paper's exact *pair-construction* and *analysis* code with a behavioural
//! [`Participant`] model whose judgements are driven by the same cues the
//! real participants reported (Table 2): presented branding, domain-name
//! similarity, header/footer text and about pages. Every analysis consumes
//! the resulting [`SurveyDataset`] exactly as it would consume the paper's
//! released CSV.

pub mod analysis;
pub mod cue_cache;
pub mod pairs;
pub mod participant;
pub mod runner;

pub use analysis::{ConfusionMatrix, FactorTable, GroupSummary, SurveyAnalysis, TimingSplit};
pub use cue_cache::CueCache;
pub use pairs::{PairGenerator, PairGroup, PairRef, PairUniverse, SitePair, SurveyScale};
pub use participant::{Cues, Factor, FactorReport, Participant, Verdict};
pub use runner::{SurveyConfig, SurveyDataset, SurveyResponse, SurveyRunner};
