//! Construction of the survey's website pairs.
//!
//! Following Section 3 of the paper, pairs come from four groups:
//!
//! 1. **RWS (same set)** — all combinations of set primaries and associated
//!    sites *within* each set (related under the proposal);
//! 2. **RWS (other set)** — all combinations of set primaries and associated
//!    sites drawn from *different* sets (not related);
//! 3. **Top Site (same category)** — RWS members paired with one of 200
//!    Tranco top sites in the *same* Forcepoint category (not related);
//! 4. **Top Site (other category)** — RWS members paired with a top site in
//!    a *different* category (not related).
//!
//! Before pairing, the RWS member pool is filtered to live, primarily
//! English-language primaries and associated sites — the paper's manual
//! filter that reduced 146 sites to 31.

use rws_classify::CategoryDatabase;
use rws_corpus::{Corpus, SiteRole};
use rws_domain::DomainName;
use rws_stats::rng::Rng;
use rws_stats::sampling::sample_without_replacement;
use serde::{Deserialize, Serialize};

/// Which of the four groups a pair belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairGroup {
    /// Primary and associated site from the same RWS set.
    RwsSameSet,
    /// Members of two different RWS sets.
    RwsOtherSet,
    /// An RWS member and a top site in the same category.
    TopSiteSameCategory,
    /// An RWS member and a top site in a different category.
    TopSiteOtherCategory,
}

impl PairGroup {
    /// All groups in the order the paper tabulates them.
    pub const ALL: [PairGroup; 4] = [
        PairGroup::RwsSameSet,
        PairGroup::RwsOtherSet,
        PairGroup::TopSiteSameCategory,
        PairGroup::TopSiteOtherCategory,
    ];

    /// The label used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            PairGroup::RwsSameSet => "RWS (same set)",
            PairGroup::RwsOtherSet => "RWS (other set)",
            PairGroup::TopSiteSameCategory => "Top Site (same category)",
            PairGroup::TopSiteOtherCategory => "Top Site (other category)",
        }
    }

    /// Whether pairs in this group are related under the RWS proposal.
    pub fn related_under_rws(self) -> bool {
        matches!(self, PairGroup::RwsSameSet)
    }
}

/// One pair of sites shown to participants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SitePair {
    /// First site (always an RWS primary or associated site).
    pub first: DomainName,
    /// Second site.
    pub second: DomainName,
    /// The group the pair was drawn for.
    pub group: PairGroup,
}

impl SitePair {
    /// Ground truth under the RWS proposal.
    pub fn related_under_rws(&self) -> bool {
        self.group.related_under_rws()
    }
}

/// The full universe of candidate pairs, by group — what the paper reports
/// as 39 / 426 / 141 / 216 generated pairs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PairUniverse {
    /// All candidate pairs, grouped.
    pub same_set: Vec<SitePair>,
    /// All cross-set pairs.
    pub other_set: Vec<SitePair>,
    /// All same-category top-site pairs.
    pub top_same_category: Vec<SitePair>,
    /// All other-category top-site pairs.
    pub top_other_category: Vec<SitePair>,
}

impl PairUniverse {
    /// The pairs for one group.
    pub fn group(&self, group: PairGroup) -> &[SitePair] {
        match group {
            PairGroup::RwsSameSet => &self.same_set,
            PairGroup::RwsOtherSet => &self.other_set,
            PairGroup::TopSiteSameCategory => &self.top_same_category,
            PairGroup::TopSiteOtherCategory => &self.top_other_category,
        }
    }

    /// Total candidate pairs across all groups.
    pub fn total(&self) -> usize {
        PairGroup::ALL.iter().map(|g| self.group(*g).len()).sum()
    }
}

/// Builds the pair universe from a corpus.
pub struct PairGenerator<'a> {
    corpus: &'a Corpus,
    categories: &'a CategoryDatabase,
    /// Number of top sites to sample for groups 3 and 4 (paper: 200).
    pub top_site_sample: usize,
}

impl<'a> PairGenerator<'a> {
    /// Create a generator over a corpus and a category database.
    pub fn new(corpus: &'a Corpus, categories: &'a CategoryDatabase) -> PairGenerator<'a> {
        PairGenerator {
            corpus,
            categories,
            top_site_sample: 200,
        }
    }

    /// The filtered pool of RWS members eligible for the survey: live,
    /// English-language primaries and associated sites.
    pub fn eligible_members(&self) -> Vec<DomainName> {
        let mut members: Vec<DomainName> = self
            .corpus
            .sites
            .values()
            .filter(|s| {
                s.survey_eligible()
                    && matches!(s.role, SiteRole::SetPrimary | SiteRole::SetAssociated)
            })
            .map(|s| s.domain.clone())
            .collect();
        members.sort();
        members
    }

    /// Generate the full pair universe.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> PairUniverse {
        let members = self.eligible_members();
        let mut universe = PairUniverse::default();

        // Group 1: each set primary paired with each of its associated
        // sites ("all combinations of set primaries and associated sites
        // within each set"), restricted to eligible members.
        for set in self.corpus.list.sets() {
            if !members.contains(set.primary()) {
                continue;
            }
            for associated in set.associated_sites() {
                if members.contains(associated) {
                    universe.same_set.push(SitePair {
                        first: set.primary().clone(),
                        second: associated.clone(),
                        group: PairGroup::RwsSameSet,
                    });
                }
            }
        }

        // Group 2: combinations across different sets.
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let a = &members[i];
                let b = &members[j];
                if !self.corpus.list.are_related(a, b) {
                    universe.other_set.push(SitePair {
                        first: a.clone(),
                        second: b.clone(),
                        group: PairGroup::RwsOtherSet,
                    });
                }
            }
        }

        // Groups 3 and 4: RWS members × a 200-site sample of the top list.
        let top_pool: Vec<DomainName> = self
            .corpus
            .tranco
            .iter()
            .map(|e| e.domain.clone())
            .collect();
        let sample = sample_without_replacement(&top_pool, self.top_site_sample, rng);
        for member in &members {
            for top in &sample {
                let pair_group = if self.categories.same_category(member, top) {
                    PairGroup::TopSiteSameCategory
                } else {
                    PairGroup::TopSiteOtherCategory
                };
                let pair = SitePair {
                    first: member.clone(),
                    second: top.clone(),
                    group: pair_group,
                };
                match pair_group {
                    PairGroup::TopSiteSameCategory => universe.top_same_category.push(pair),
                    _ => universe.top_other_category.push(pair),
                }
            }
        }

        universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_corpus::{CorpusConfig, CorpusGenerator};
    use rws_stats::rng::Xoshiro256StarStar;

    fn universe() -> (rws_corpus::Corpus, PairUniverse) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(23)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let mut rng = Xoshiro256StarStar::new(1);
        let generator = PairGenerator::new(&corpus, &categories);
        let u = generator.generate(&mut rng);
        (corpus, u)
    }

    #[test]
    fn group_labels_and_truth() {
        assert_eq!(PairGroup::RwsSameSet.label(), "RWS (same set)");
        assert!(PairGroup::RwsSameSet.related_under_rws());
        for g in [
            PairGroup::RwsOtherSet,
            PairGroup::TopSiteSameCategory,
            PairGroup::TopSiteOtherCategory,
        ] {
            assert!(!g.related_under_rws());
        }
    }

    #[test]
    fn same_set_pairs_are_actually_related() {
        let (corpus, u) = universe();
        assert!(!u.same_set.is_empty(), "no same-set pairs generated");
        for pair in &u.same_set {
            assert!(corpus.list.are_related(&pair.first, &pair.second));
            assert!(pair.related_under_rws());
        }
    }

    #[test]
    fn other_group_pairs_are_not_related() {
        let (corpus, u) = universe();
        for pair in u
            .other_set
            .iter()
            .chain(u.top_same_category.iter())
            .chain(u.top_other_category.iter())
        {
            assert!(!corpus.list.are_related(&pair.first, &pair.second));
            assert!(!pair.related_under_rws());
        }
    }

    #[test]
    fn eligible_members_are_live_english_primaries_or_associated() {
        let (corpus, _) = universe();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let generator = PairGenerator::new(&corpus, &categories);
        for member in generator.eligible_members() {
            let spec = corpus.site(&member).unwrap();
            assert!(spec.survey_eligible());
            assert!(matches!(
                spec.role,
                SiteRole::SetPrimary | SiteRole::SetAssociated
            ));
        }
    }

    #[test]
    fn category_groups_respect_the_database() {
        let (corpus, u) = universe();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        for pair in &u.top_same_category {
            assert!(categories.same_category(&pair.first, &pair.second));
        }
        for pair in &u.top_other_category {
            assert!(!categories.same_category(&pair.first, &pair.second));
        }
    }

    #[test]
    fn universe_totals_are_consistent() {
        let (_, u) = universe();
        assert_eq!(
            u.total(),
            u.same_set.len()
                + u.other_set.len()
                + u.top_same_category.len()
                + u.top_other_category.len()
        );
        assert!(u.total() > 0);
        for g in PairGroup::ALL {
            for pair in u.group(g) {
                assert_eq!(pair.group, g);
                assert_ne!(pair.first, pair.second);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(23)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let generator = PairGenerator::new(&corpus, &categories);
        let mut rng_a = Xoshiro256StarStar::new(5);
        let mut rng_b = Xoshiro256StarStar::new(5);
        assert_eq!(
            generator.generate(&mut rng_a),
            generator.generate(&mut rng_b)
        );
    }
}
