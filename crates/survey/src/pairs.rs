//! Construction of the survey's website pairs.
//!
//! Following Section 3 of the paper, pairs come from four groups:
//!
//! 1. **RWS (same set)** — all combinations of set primaries and associated
//!    sites *within* each set (related under the proposal);
//! 2. **RWS (other set)** — all combinations of set primaries and associated
//!    sites drawn from *different* sets (not related);
//! 3. **Top Site (same category)** — RWS members paired with one of 200
//!    Tranco top sites in the *same* Forcepoint category (not related);
//! 4. **Top Site (other category)** — RWS members paired with a top site in
//!    a *different* category (not related).
//!
//! Before pairing, the RWS member pool is filtered to live, primarily
//! English-language primaries and associated sites — the paper's manual
//! filter that reduced 146 sites to 31.
//!
//! # Indexed representation
//!
//! The universe is quadratic in the member pool (the paper's 31 members
//! already yield 822 candidate pairs; a 32× pool yields half a million), so
//! [`PairUniverse`] stores each candidate as a [`PairRef`] — two `u32`
//! indices into one shared site table — rather than two owned domain names.
//! Building a pair is then an 8-byte push instead of two reference-count
//! round-trips, and the whole universe occupies a fifth of the memory. The
//! handful of pairs a participant actually sees are materialized on demand
//! into [`SitePair`]s ([`PairUniverse::materialize`]).
//!
//! Generation itself is indexed too: membership and set identity are
//! precomputed per member (hash set + member → set id map), so the group-2
//! sweep compares integers instead of walking the list's `BTreeMap` index
//! per pair, and the per-member sweeps fan out across the engine's pool.
//! The original double loop is retained as
//! [`PairGenerator::generate_naive`], the oracle the regression tests and
//! the bench trajectory compare against.

use rws_classify::CategoryDatabase;
use rws_corpus::{Corpus, SiteCategory, SiteRole};
use rws_domain::DomainName;
use rws_engine::{EngineBackend, EngineContext};
use rws_stats::memo::{FnvHasher, ShardedMemo};
use rws_stats::rng::Rng;
use rws_stats::sampling::sample_without_replacement;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Which of the four groups a pair belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairGroup {
    /// Primary and associated site from the same RWS set.
    RwsSameSet,
    /// Members of two different RWS sets.
    RwsOtherSet,
    /// An RWS member and a top site in the same category.
    TopSiteSameCategory,
    /// An RWS member and a top site in a different category.
    TopSiteOtherCategory,
}

impl PairGroup {
    /// All groups in the order the paper tabulates them.
    pub const ALL: [PairGroup; 4] = [
        PairGroup::RwsSameSet,
        PairGroup::RwsOtherSet,
        PairGroup::TopSiteSameCategory,
        PairGroup::TopSiteOtherCategory,
    ];

    /// The label used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            PairGroup::RwsSameSet => "RWS (same set)",
            PairGroup::RwsOtherSet => "RWS (other set)",
            PairGroup::TopSiteSameCategory => "Top Site (same category)",
            PairGroup::TopSiteOtherCategory => "Top Site (other category)",
        }
    }

    /// Whether pairs in this group are related under the RWS proposal.
    pub fn related_under_rws(self) -> bool {
        matches!(self, PairGroup::RwsSameSet)
    }
}

/// One pair of sites shown to participants — the materialized view of a
/// [`PairRef`], carrying owned domain names. Only the questions actually
/// drawn for a participant are materialized; the universe itself stays
/// indexed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SitePair {
    /// First site (always an RWS primary or associated site).
    pub first: DomainName,
    /// Second site.
    pub second: DomainName,
    /// The group the pair was drawn for.
    pub group: PairGroup,
}

impl SitePair {
    /// Ground truth under the RWS proposal.
    pub fn related_under_rws(&self) -> bool {
        self.group.related_under_rws()
    }
}

/// One candidate pair, as two indices into the universe's site table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairRef {
    /// Index of the first site (always an RWS member).
    pub first: u32,
    /// Index of the second site.
    pub second: u32,
}

/// The full universe of candidate pairs, by group — what the paper reports
/// as 39 / 426 / 141 / 216 generated pairs. Pairs are stored as index
/// pairs into [`sites`](Self::sites); see the module docs for why.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PairUniverse {
    /// The site table every [`PairRef`] points into: the (scaled) member
    /// pool followed by the sampled top sites.
    pub sites: Vec<DomainName>,
    /// All candidate same-set pairs.
    pub same_set: Vec<PairRef>,
    /// All cross-set pairs.
    pub other_set: Vec<PairRef>,
    /// All same-category top-site pairs.
    pub top_same_category: Vec<PairRef>,
    /// All other-category top-site pairs.
    pub top_other_category: Vec<PairRef>,
}

impl PairUniverse {
    /// The candidate pairs for one group.
    pub fn group(&self, group: PairGroup) -> &[PairRef] {
        match group {
            PairGroup::RwsSameSet => &self.same_set,
            PairGroup::RwsOtherSet => &self.other_set,
            PairGroup::TopSiteSameCategory => &self.top_same_category,
            PairGroup::TopSiteOtherCategory => &self.top_other_category,
        }
    }

    /// Total candidate pairs across all groups.
    pub fn total(&self) -> usize {
        PairGroup::ALL.iter().map(|g| self.group(*g).len()).sum()
    }

    /// Materialize one candidate into an owned [`SitePair`].
    pub fn materialize(&self, group: PairGroup, pair: PairRef) -> SitePair {
        SitePair {
            first: self.sites[pair.first as usize].clone(),
            second: self.sites[pair.second as usize].clone(),
            group,
        }
    }

    /// Iterate one group's pairs, materialized.
    pub fn iter_group(&self, group: PairGroup) -> impl Iterator<Item = SitePair> + '_ {
        self.group(group)
            .iter()
            .map(move |pair| self.materialize(group, *pair))
    }

    /// Iterate every candidate pair, materialized, in group order.
    pub fn iter_all(&self) -> impl Iterator<Item = SitePair> + '_ {
        PairGroup::ALL
            .into_iter()
            .flat_map(move |group| self.iter_group(group))
    }
}

/// Scaling knobs for survey universes beyond the paper's 31 filtered sites
/// and 30 sessions. [`SurveyScale::paper`] reproduces the study exactly;
/// [`SurveyScale::times`] multiplies it for the scaled benchmarks (10–100×
/// universes), padding the member pool with synthetic variants of the
/// eligible members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyScale {
    /// Number of survey participants (paper: 30).
    pub participants: usize,
    /// Pairs drawn per group per participant (paper: 5).
    pub pairs_per_group: usize,
    /// Top sites sampled for groups 3 and 4 (paper: 200).
    pub top_site_sample: usize,
    /// Multiplier on the eligible-member pool: 1 keeps the corpus's own
    /// filtered members, `k` adds `k - 1` synthetic variants of each.
    pub member_multiplier: usize,
}

impl SurveyScale {
    /// The paper's exact scale.
    pub fn paper() -> SurveyScale {
        SurveyScale {
            participants: 30,
            pairs_per_group: 5,
            top_site_sample: 200,
            member_multiplier: 1,
        }
    }

    /// The paper's survey multiplied `factor` times: `factor ×` the
    /// participants and `factor ×` the eligible-member pool (which grows
    /// the group-2 universe quadratically).
    pub fn times(factor: usize) -> SurveyScale {
        let factor = factor.max(1);
        SurveyScale {
            participants: 30 * factor,
            member_multiplier: factor,
            ..SurveyScale::paper()
        }
    }

    /// The runner configuration at this scale.
    pub fn survey_config(&self, seed: u64) -> crate::runner::SurveyConfig {
        crate::runner::SurveyConfig {
            seed,
            participants: self.participants,
            pairs_per_group: self.pairs_per_group,
        }
    }
}

impl Default for SurveyScale {
    fn default() -> Self {
        SurveyScale::paper()
    }
}

/// Precomputed membership facts about the (possibly scaled) member pool:
/// a member → position map for O(1) membership tests and one integer set
/// id per member, so the O(members²) group-2 sweep compares integers
/// instead of walking the list's `BTreeMap` index twice per pair and the
/// group-1 loop answers membership without scanning the pool.
struct MemberIndex {
    members: Vec<DomainName>,
    position_of: HashMap<DomainName, u32>,
    set_of: Vec<Option<usize>>,
}

impl MemberIndex {
    fn build(corpus: &Corpus, members: Vec<DomainName>) -> MemberIndex {
        let position_of: HashMap<DomainName, u32> = members
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i as u32))
            .collect();
        let set_of: Vec<Option<usize>> = members
            .iter()
            .map(|m| corpus.list.set_index_of(m))
            .collect();
        MemberIndex {
            members,
            position_of,
            set_of,
        }
    }

    /// The position of a domain in the member pool, if it is eligible.
    fn position_of(&self, domain: &DomainName) -> Option<u32> {
        self.position_of.get(domain).copied()
    }

    /// True when members `i` and `j` belong to the same set — exactly
    /// `corpus.list.are_related(&members[i], &members[j])`, precomputed.
    fn related(&self, i: usize, j: usize) -> bool {
        matches!((self.set_of[i], self.set_of[j]), (Some(a), Some(b)) if a == b)
    }
}

/// Builds the pair universe from a corpus.
pub struct PairGenerator<'a> {
    corpus: &'a Corpus,
    categories: &'a CategoryDatabase,
    /// Number of top sites to sample for groups 3 and 4 (paper: 200).
    pub top_site_sample: usize,
    /// Multiplier on the eligible-member pool (see
    /// [`SurveyScale::member_multiplier`]); 1 is the paper's pool.
    pub member_multiplier: usize,
}

impl<'a> PairGenerator<'a> {
    /// Create a generator over a corpus and a category database.
    pub fn new(corpus: &'a Corpus, categories: &'a CategoryDatabase) -> PairGenerator<'a> {
        PairGenerator {
            corpus,
            categories,
            top_site_sample: 200,
            member_multiplier: 1,
        }
    }

    /// Create a generator at an explicit scale.
    pub fn with_scale(
        corpus: &'a Corpus,
        categories: &'a CategoryDatabase,
        scale: SurveyScale,
    ) -> PairGenerator<'a> {
        PairGenerator {
            corpus,
            categories,
            top_site_sample: scale.top_site_sample,
            member_multiplier: scale.member_multiplier,
        }
    }

    /// The filtered pool of RWS members eligible for the survey: live,
    /// English-language primaries and associated sites.
    pub fn eligible_members(&self) -> Vec<DomainName> {
        let mut members: Vec<DomainName> = self
            .corpus
            .sites
            .values()
            .filter(|s| {
                s.survey_eligible()
                    && matches!(s.role, SiteRole::SetPrimary | SiteRole::SetAssociated)
            })
            .map(|s| s.domain.clone())
            .collect();
        members.sort();
        members
    }

    /// The eligible members after applying the member multiplier: the base
    /// pool, then `member_multiplier − 1` synthetic variants of each (named
    /// `sclone<k>.<member>`, which are never on the RWS list and therefore
    /// unrelated to everything — exactly the shape of a survey universe
    /// drawn from a far larger filtered pool).
    ///
    /// Scaled pools are interned process-wide per (base pool, multiplier):
    /// the synthetic variants are parsed once and every later `generate`
    /// call at the same scale clones the interned pool — `DomainName` is
    /// `Arc<str>`-backed, so the clone is one refcount bump per member
    /// rather than a fresh parse and allocation.
    pub fn scaled_members(&self) -> Vec<DomainName> {
        let base = self.eligible_members();
        if self.member_multiplier <= 1 {
            return base;
        }
        interned_scaled_pool(&base, self.member_multiplier)
            .as_ref()
            .clone()
    }

    /// Generate the full pair universe (indexed membership, sequential).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> PairUniverse {
        self.generate_impl(rng, None::<&EngineContext>)
    }

    /// Like [`generate`](Self::generate), but fanning the per-member group-2
    /// and group-3/4 sweeps out across the context's pool. Output is
    /// identical whether the context is pooled or sequential (and identical
    /// to [`generate`](Self::generate)).
    pub fn generate_on<R: Rng + ?Sized, E: EngineBackend>(
        &self,
        rng: &mut R,
        ctx: &E,
    ) -> PairUniverse {
        self.generate_impl(rng, Some(ctx))
    }

    fn generate_impl<R: Rng + ?Sized, E: EngineBackend>(
        &self,
        rng: &mut R,
        ctx: Option<&E>,
    ) -> PairUniverse {
        let index = MemberIndex::build(self.corpus, self.scaled_members());
        let members = &index.members;
        let mut universe = PairUniverse::default();

        // Group 1: each set primary paired with each of its associated
        // sites ("all combinations of set primaries and associated sites
        // within each set"), restricted to eligible members — membership
        // (and the pair's site indices) answered by the member → position
        // map instead of scanning the pool per site.
        for set in self.corpus.list.sets() {
            let Some(primary) = index.position_of(set.primary()) else {
                continue;
            };
            for associated in set.associated_sites() {
                if let Some(associated) = index.position_of(associated) {
                    universe.same_set.push(PairRef {
                        first: primary,
                        second: associated,
                    });
                }
            }
        }

        // Group 2: combinations across different sets. One task per outer
        // member; each task only compares precomputed integer set ids, and
        // the per-member vectors are concatenated in member order so the
        // result is identical to the naive double loop.
        let per_member: Vec<Vec<PairRef>> = par_members(ctx, members, |i, _| {
            let mut out: Vec<PairRef> = Vec::with_capacity(members.len() - i - 1);
            for j in (i + 1)..members.len() {
                if !index.related(i, j) {
                    out.push(PairRef {
                        first: i as u32,
                        second: j as u32,
                    });
                }
            }
            out
        });
        let total: usize = per_member.iter().map(Vec::len).sum();
        universe.other_set.reserve_exact(total);
        for chunk in per_member {
            universe.other_set.extend(chunk);
        }

        // Groups 3 and 4: RWS members × a 200-site sample of the top list.
        // Categories are resolved once per member and once per sampled top
        // site instead of twice per pair; the member sweep fans out on the
        // pool with per-member (same, other) vectors stitched in order.
        let top_pool: Vec<DomainName> = self
            .corpus
            .tranco
            .iter()
            .map(|e| e.domain.clone())
            .collect();
        let sample = sample_without_replacement(&top_pool, self.top_site_sample, rng);
        let top_categories: Vec<Option<SiteCategory>> = sample
            .iter()
            .map(|top| self.categories.known_category(top))
            .collect();
        let top_base = members.len() as u32;
        let per_member: Vec<(Vec<PairRef>, Vec<PairRef>)> =
            par_members(ctx, members, |i, member| {
                let member_category = self.categories.known_category(member);
                let mut same = Vec::new();
                let mut other = Vec::with_capacity(sample.len());
                for (t, top_category) in top_categories.iter().enumerate() {
                    let same_category = match (member_category, top_category) {
                        (Some(a), Some(b)) => a == *b,
                        _ => false,
                    };
                    let pair = PairRef {
                        first: i as u32,
                        second: top_base + t as u32,
                    };
                    if same_category {
                        same.push(pair);
                    } else {
                        other.push(pair);
                    }
                }
                (same, other)
            });
        for (same, other) in per_member {
            universe.top_same_category.extend(same);
            universe.top_other_category.extend(other);
        }

        universe.sites = index.members;
        universe.sites.extend(sample);
        assert!(
            universe.sites.len() <= u32::MAX as usize,
            "site table exceeds u32 index space"
        );
        universe
    }

    /// The original double-loop generator, kept as the oracle the
    /// regression tests and the bench trajectory compare the indexed
    /// generator against: linear `members` scans in group 1, a
    /// `BTreeMap`-walking `are_related` per group-2 pair and two tree walks
    /// per group-3/4 pair.
    #[doc(hidden)]
    pub fn generate_naive<R: Rng + ?Sized>(&self, rng: &mut R) -> PairUniverse {
        let members = self.scaled_members();
        let mut universe = PairUniverse::default();

        for set in self.corpus.list.sets() {
            if !members.contains(set.primary()) {
                continue;
            }
            let primary =
                member_position(&members, set.primary()).expect("contains implies a position");
            for associated in set.associated_sites() {
                if let Some(associated) = member_position(&members, associated) {
                    universe.same_set.push(PairRef {
                        first: primary,
                        second: associated,
                    });
                }
            }
        }

        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let a = &members[i];
                let b = &members[j];
                if !self.corpus.list.are_related(a, b) {
                    universe.other_set.push(PairRef {
                        first: i as u32,
                        second: j as u32,
                    });
                }
            }
        }

        let top_pool: Vec<DomainName> = self
            .corpus
            .tranco
            .iter()
            .map(|e| e.domain.clone())
            .collect();
        let sample = sample_without_replacement(&top_pool, self.top_site_sample, rng);
        let top_base = members.len() as u32;
        for (i, member) in members.iter().enumerate() {
            for (t, top) in sample.iter().enumerate() {
                let pair = PairRef {
                    first: i as u32,
                    second: top_base + t as u32,
                };
                if self.categories.same_category(member, top) {
                    universe.top_same_category.push(pair);
                } else {
                    universe.top_other_category.push(pair);
                }
            }
        }

        universe.sites = members;
        universe.sites.extend(sample);
        universe
    }
}

/// Most distinct (base pool, multiplier) combinations the intern table
/// retains. Real workloads cycle through a handful of scales over one or
/// two corpora; the cap stops a pathological caller (say, a property test
/// sweeping corpus seeds at scale) from growing process memory without
/// bound — beyond it, pools are built uncached, exactly as before the
/// intern table existed.
const MAX_INTERNED_POOLS: usize = 64;

/// The process-wide intern table for scaled member pools, keyed by a
/// fingerprint of the base pool plus the multiplier. First writer wins, so
/// concurrent generators at the same scale agree on one pool.
fn interned_scaled_pool(base: &[DomainName], multiplier: usize) -> Arc<Vec<DomainName>> {
    /// (base-pool fingerprint, base-pool length, multiplier) → interned pool.
    type PoolKey = (u64, usize, usize);
    static POOLS: OnceLock<ShardedMemo<PoolKey, Arc<Vec<DomainName>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(ShardedMemo::new);
    let key = (fingerprint(base), base.len(), multiplier);
    if let Some(pool) = pools.get(&key) {
        return pool;
    }
    let pool = Arc::new(build_scaled_pool(base, multiplier));
    if pools.len() >= MAX_INTERNED_POOLS {
        return pool;
    }
    pools.insert(key, pool)
}

fn build_scaled_pool(base: &[DomainName], multiplier: usize) -> Vec<DomainName> {
    let mut members: Vec<DomainName> = Vec::with_capacity(base.len() * multiplier);
    members.extend(base.iter().cloned());
    for k in 1..multiplier {
        for member in base {
            members.push(
                DomainName::parse(&format!("sclone{k}.{member}"))
                    .expect("member with a prepended label is a valid domain"),
            );
        }
    }
    members
}

/// FNV-1a over the base pool's domains (with a separator byte), identifying
/// the corpus's eligible-member pool in the intern table.
fn fingerprint(members: &[DomainName]) -> u64 {
    use std::hash::Hasher;
    let mut hasher = FnvHasher::new();
    for member in members {
        hasher.write(member.as_str().as_bytes());
        hasher.write_u8(0);
    }
    hasher.finish()
}

/// Linear scan for a member's position — the naive generator's lookup, also
/// used by the (cold) group-1 loop.
fn member_position(members: &[DomainName], domain: &DomainName) -> Option<u32> {
    members.iter().position(|m| m == domain).map(|i| i as u32)
}

/// Ordered map over the member pool: on the context's pool when one is
/// supplied, inline otherwise. Results are always in member order.
fn par_members<R: Send, E: EngineBackend>(
    ctx: Option<&E>,
    members: &[DomainName],
    f: impl Fn(usize, &DomainName) -> R + Sync,
) -> Vec<R> {
    match ctx {
        Some(ctx) => ctx.par_map(members, f),
        None => members.iter().enumerate().map(|(i, m)| f(i, m)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_corpus::{CorpusConfig, CorpusGenerator};
    use rws_stats::rng::Xoshiro256StarStar;

    fn universe() -> (rws_corpus::Corpus, PairUniverse) {
        let corpus = CorpusGenerator::new(CorpusConfig::small(23)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let mut rng = Xoshiro256StarStar::new(1);
        let generator = PairGenerator::new(&corpus, &categories);
        let u = generator.generate(&mut rng);
        (corpus, u)
    }

    #[test]
    fn group_labels_and_truth() {
        assert_eq!(PairGroup::RwsSameSet.label(), "RWS (same set)");
        assert!(PairGroup::RwsSameSet.related_under_rws());
        for g in [
            PairGroup::RwsOtherSet,
            PairGroup::TopSiteSameCategory,
            PairGroup::TopSiteOtherCategory,
        ] {
            assert!(!g.related_under_rws());
        }
    }

    #[test]
    fn same_set_pairs_are_actually_related() {
        let (corpus, u) = universe();
        assert!(!u.same_set.is_empty(), "no same-set pairs generated");
        for pair in u.iter_group(PairGroup::RwsSameSet) {
            assert!(corpus.list.are_related(&pair.first, &pair.second));
            assert!(pair.related_under_rws());
        }
    }

    #[test]
    fn other_group_pairs_are_not_related() {
        let (corpus, u) = universe();
        for group in [
            PairGroup::RwsOtherSet,
            PairGroup::TopSiteSameCategory,
            PairGroup::TopSiteOtherCategory,
        ] {
            for pair in u.iter_group(group) {
                assert!(!corpus.list.are_related(&pair.first, &pair.second));
                assert!(!pair.related_under_rws());
            }
        }
    }

    #[test]
    fn eligible_members_are_live_english_primaries_or_associated() {
        let (corpus, _) = universe();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let generator = PairGenerator::new(&corpus, &categories);
        for member in generator.eligible_members() {
            let spec = corpus.site(&member).unwrap();
            assert!(spec.survey_eligible());
            assert!(matches!(
                spec.role,
                SiteRole::SetPrimary | SiteRole::SetAssociated
            ));
        }
    }

    #[test]
    fn category_groups_respect_the_database() {
        let (corpus, u) = universe();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        for pair in u.iter_group(PairGroup::TopSiteSameCategory) {
            assert!(categories.same_category(&pair.first, &pair.second));
        }
        for pair in u.iter_group(PairGroup::TopSiteOtherCategory) {
            assert!(!categories.same_category(&pair.first, &pair.second));
        }
    }

    #[test]
    fn universe_totals_are_consistent() {
        let (_, u) = universe();
        assert_eq!(
            u.total(),
            u.same_set.len()
                + u.other_set.len()
                + u.top_same_category.len()
                + u.top_other_category.len()
        );
        assert!(u.total() > 0);
        assert_eq!(u.iter_all().count(), u.total());
        for g in PairGroup::ALL {
            for pair in u.iter_group(g) {
                assert_eq!(pair.group, g);
                assert_ne!(pair.first, pair.second);
            }
        }
    }

    #[test]
    fn pair_refs_point_into_the_site_table() {
        let (_, u) = universe();
        for g in PairGroup::ALL {
            for pair in u.group(g) {
                assert!((pair.first as usize) < u.sites.len());
                assert!((pair.second as usize) < u.sites.len());
                assert_ne!(pair.first, pair.second);
            }
        }
    }

    #[test]
    fn scaled_member_pool_is_interned_per_scale() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(23)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let generator = PairGenerator::with_scale(&corpus, &categories, SurveyScale::times(3));
        let first = generator.scaled_members();
        let second = generator.scaled_members();
        assert_eq!(first, second);
        let base_len = generator.eligible_members().len();
        assert_eq!(first.len(), base_len * 3);
        // The synthetic variants come out of the intern table: the second
        // call's domains share the first call's string allocations
        // (`DomainName` is `Arc<str>`-backed) instead of re-parsing.
        for (a, b) in first.iter().zip(&second).skip(base_len) {
            assert!(
                std::ptr::eq(a.as_str(), b.as_str()),
                "synthetic variant {a} was re-parsed instead of interned"
            );
        }
        // A different multiplier is a different pool.
        let bigger = PairGenerator::with_scale(&corpus, &categories, SurveyScale::times(4));
        assert_eq!(bigger.scaled_members().len(), base_len * 4);
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let corpus = CorpusGenerator::new(CorpusConfig::small(23)).generate();
        let categories = CategoryDatabase::from_ground_truth(&corpus);
        let generator = PairGenerator::new(&corpus, &categories);
        let mut rng_a = Xoshiro256StarStar::new(5);
        let mut rng_b = Xoshiro256StarStar::new(5);
        assert_eq!(
            generator.generate(&mut rng_a),
            generator.generate(&mut rng_b)
        );
    }
}
