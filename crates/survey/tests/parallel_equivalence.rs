//! Parallel-vs-sequential equivalence gates for the survey subsystem.
//!
//! The survey chain's contract mirrors the pipeline-wide one in
//! `crates/analysis/tests/parallel_equivalence.rs`: fanning participants
//! (and pair-universe members) out across the pool changes wall-clock time
//! and nothing else. Every test here compares the pooled runner against the
//! sequential oracle **field for field**, and the indexed pair generator
//! against the retained naive double loop, across seeds and scales.

use proptest::prelude::*;
use rws_classify::CategoryDatabase;
use rws_corpus::{Corpus, CorpusConfig, CorpusGenerator};
use rws_engine::EngineContext;
use rws_stats::pool::ThreadPool;
use rws_stats::rng::Xoshiro256StarStar;
use rws_survey::{PairGenerator, PairUniverse, SurveyConfig, SurveyRunner, SurveyScale};

fn fixture(seed: u64) -> (Corpus, CategoryDatabase) {
    let corpus = CorpusGenerator::new(CorpusConfig::small(seed)).generate();
    let categories = CategoryDatabase::from_ground_truth(&corpus);
    (corpus, categories)
}

fn universe(corpus: &Corpus, categories: &CategoryDatabase, seed: u64) -> PairUniverse {
    let mut rng = Xoshiro256StarStar::new(seed);
    PairGenerator::new(corpus, categories).generate(&mut rng)
}

proptest! {
    /// Pooled `SurveyRunner` output equals the sequential oracle for
    /// arbitrary seeds — responses, factor reports and counts all included
    /// in `SurveyDataset`'s `PartialEq`.
    #[test]
    fn survey_parallel_equivalence(seed in 0u64..1_000_000) {
        let (corpus, categories) = fixture(seed % 97);
        let pairs = universe(&corpus, &categories, seed);
        let runner = SurveyRunner::new(SurveyConfig {
            seed,
            ..SurveyConfig::default()
        });
        let pooled_ctx = EngineContext::new();
        let pooled = runner.run_on(&corpus, &pairs, &pooled_ctx);
        let sequential = runner.run_on(&corpus, &pairs, &pooled_ctx.sequential_twin());
        prop_assert_eq!(pooled, sequential);
    }

    /// The indexed generator reproduces the naive double loop exactly —
    /// same pairs, same groups, same order — for arbitrary seeds at paper
    /// scale, both sequentially and on the pool.
    #[test]
    fn pair_universe_matches_naive_oracle(seed in 0u64..1_000_000) {
        let (corpus, categories) = fixture(seed % 89);
        let generator = PairGenerator::new(&corpus, &categories);
        let naive = generator.generate_naive(&mut Xoshiro256StarStar::new(seed));
        let indexed = generator.generate(&mut Xoshiro256StarStar::new(seed));
        prop_assert_eq!(&naive, &indexed);
        let pooled = generator.generate_on(
            &mut Xoshiro256StarStar::new(seed),
            &EngineContext::new(),
        );
        prop_assert_eq!(&naive, &pooled);
    }
}

/// Forced multi-worker pool: even on a single-core host (where the global
/// pool runs zero workers and everything degenerates to the caller), the
/// cross-thread claim/notify paths must produce the identical dataset.
#[test]
fn survey_equivalence_holds_on_a_forced_multiworker_pool() {
    for seed in [3u64, 17, 61, 2024] {
        let (corpus, categories) = fixture(seed);
        let pairs = universe(&corpus, &categories, seed);
        let runner = SurveyRunner::new(SurveyConfig {
            seed,
            participants: 40,
            ..SurveyConfig::default()
        });
        let forced =
            EngineContext::with_parts(ThreadPool::new(3), rws_domain::SiteResolver::embedded());
        let pooled = runner.run_on(&corpus, &pairs, &forced);
        let sequential = runner.run_on(&corpus, &pairs, &forced.sequential_twin());
        assert_eq!(pooled, sequential, "seed {seed}");
    }
}

/// The equivalence also holds under `EngineContext::new()` vs
/// `EngineContext::sequential()` (independent resolver handles), not just
/// twins sharing one memo cache.
#[test]
fn survey_equivalence_across_independent_contexts() {
    let (corpus, categories) = fixture(11);
    let pairs = universe(&corpus, &categories, 11);
    let runner = SurveyRunner::new(SurveyConfig::default());
    let pooled = runner.run_on(&corpus, &pairs, &EngineContext::new());
    let sequential = runner.run_on(&corpus, &pairs, &EngineContext::sequential());
    assert_eq!(pooled, sequential);
}

/// Regression gate for the scaled generator: at a non-trivial
/// `member_multiplier` the indexed sweep must still reproduce the naive
/// double loop pair for pair, and the universe must actually have grown
/// quadratically in group 2.
#[test]
fn scaled_pair_universe_matches_naive_oracle() {
    let (corpus, categories) = fixture(23);
    let paper = PairGenerator::new(&corpus, &categories);
    let paper_universe = paper.generate(&mut Xoshiro256StarStar::new(5));

    let scale = SurveyScale {
        member_multiplier: 4,
        ..SurveyScale::paper()
    };
    let scaled = PairGenerator::with_scale(&corpus, &categories, scale);
    let naive = scaled.generate_naive(&mut Xoshiro256StarStar::new(5));
    let indexed = scaled.generate(&mut Xoshiro256StarStar::new(5));
    assert_eq!(naive, indexed);
    let pooled = scaled.generate_on(&mut Xoshiro256StarStar::new(5), &EngineContext::new());
    assert_eq!(naive, pooled);

    // Group 1 is untouched by synthetic members; group 2 grows ~16× for a
    // 4× member pool; groups 3/4 grow 4×.
    assert_eq!(naive.same_set, paper_universe.same_set);
    let paper_members = paper.eligible_members().len();
    let scaled_members = scaled.scaled_members().len();
    assert_eq!(scaled_members, paper_members * 4);
    assert!(
        naive.other_set.len() > paper_universe.other_set.len() * 9,
        "group 2 should grow quadratically: {} vs {}",
        naive.other_set.len(),
        paper_universe.other_set.len()
    );
    assert_eq!(
        naive.top_same_category.len() + naive.top_other_category.len(),
        (paper_universe.top_same_category.len() + paper_universe.top_other_category.len()) * 4
    );
}

/// `SurveyScale::times` scales both the sessions and the member pool.
#[test]
fn survey_scale_times_multiplies_paper_scale() {
    let paper = SurveyScale::paper();
    assert_eq!(paper, SurveyScale::default());
    assert_eq!(paper.participants, 30);
    assert_eq!(paper.pairs_per_group, 5);
    assert_eq!(paper.top_site_sample, 200);
    assert_eq!(paper.member_multiplier, 1);
    let scaled = SurveyScale::times(32);
    assert_eq!(scaled.participants, 960);
    assert_eq!(scaled.member_multiplier, 32);
    assert_eq!(scaled.pairs_per_group, paper.pairs_per_group);
    // A zero factor clamps to the paper's scale.
    assert_eq!(SurveyScale::times(0).member_multiplier, 1);
}
