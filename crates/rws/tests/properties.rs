//! Property-based tests for the RWS list model.

use proptest::prelude::*;
use rws_domain::DomainName;
use rws_model::{list_from_json, list_to_json, RwsList, RwsSet, WellKnownFile};

/// Strategy for distinct bare domain names like `brandXX.com`.
fn domain_pool(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("site{i}.com")).collect()
}

/// Strategy describing a random list layout: for each set, the number of
/// associated and service members.
fn layout_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..4, 0usize..3), 1..6)
}

fn build_list(layout: &[(usize, usize)]) -> RwsList {
    let mut next = 0usize;
    let pool = domain_pool(200);
    let mut take = || {
        let d = pool[next].clone();
        next += 1;
        d
    };
    let mut sets = Vec::new();
    for (assoc, service) in layout {
        let mut set = RwsSet::new(&format!("https://{}", take())).unwrap();
        for _ in 0..*assoc {
            set.add_associated(&format!("https://{}", take()), "affiliated brand")
                .unwrap();
        }
        for _ in 0..*service {
            set.add_service(&format!("https://{}", take()), "supporting infrastructure")
                .unwrap();
        }
        sets.push(set);
    }
    RwsList::from_sets(sets).unwrap()
}

proptest! {
    /// Relatedness is reflexive for members, symmetric always, and never
    /// holds across different sets.
    #[test]
    fn relatedness_properties(layout in layout_strategy()) {
        let list = build_list(&layout);
        let domains = list.all_domains();
        for d in &domains {
            prop_assert!(list.are_related(d, d));
        }
        for a in &domains {
            for b in &domains {
                prop_assert_eq!(list.are_related(a, b), list.are_related(b, a));
                let same_set = list.set_for(a).unwrap().primary() == list.set_for(b).unwrap().primary();
                prop_assert_eq!(list.are_related(a, b), same_set);
            }
        }
        let outsider = DomainName::parse("definitely-not-in-any-set.org").unwrap();
        for d in &domains {
            prop_assert!(!list.are_related(d, &outsider));
        }
    }

    /// The canonical JSON round-trip preserves set count, member count,
    /// relatedness and roles.
    #[test]
    fn json_round_trip(layout in layout_strategy()) {
        let list = build_list(&layout);
        let json = list_to_json(&list);
        let back = list_from_json(&json).unwrap();
        prop_assert_eq!(back.set_count(), list.set_count());
        prop_assert_eq!(back.domain_count(), list.domain_count());
        for d in list.all_domains() {
            prop_assert_eq!(back.role_of(&d), list.role_of(&d));
        }
        // Serialising the reparsed list reproduces the same JSON.
        prop_assert_eq!(list_to_json(&back), json);
    }

    /// Every member's generated well-known file is consistent with its own
    /// set and inconsistent with any other set's primary copy.
    #[test]
    fn well_known_consistency(layout in layout_strategy()) {
        let list = build_list(&layout);
        for set in list.sets() {
            let primary_copy = WellKnownFile::for_primary(set);
            prop_assert!(primary_copy.matches_submission(set));
            for member in set.domains() {
                if &member != set.primary() {
                    let member_copy = WellKnownFile::for_member(set.primary());
                    prop_assert!(member_copy.matches_submission(set));
                    let text = member_copy.to_json_string();
                    let parsed = WellKnownFile::from_json_str(&text).unwrap();
                    prop_assert_eq!(parsed.primary(), set.primary());
                }
            }
            for other in list.sets() {
                if other.primary() != set.primary() {
                    prop_assert!(!primary_copy.matches_submission(other));
                }
            }
        }
    }

    /// member_primary_pairs returns exactly the non-primary members, each
    /// paired with its own primary.
    #[test]
    fn member_primary_pairs_consistent(layout in layout_strategy()) {
        let list = build_list(&layout);
        let pairs = list.member_primary_pairs();
        let expected: usize = list.sets().map(|s| s.size() - 1).sum();
        prop_assert_eq!(pairs.len(), expected);
        for (primary, member, role) in pairs {
            prop_assert_eq!(list.set_for(&member).unwrap().primary(), &primary);
            prop_assert_eq!(list.role_of(&member), Some(role));
            prop_assert!(list.are_related(&primary, &member));
        }
    }
}
