//! Dated snapshots of the RWS list and composition-over-time series.
//!
//! Section 4 of the paper characterises the list as of 26 March 2024 (41
//! sets; 22% with service sites, 14.6% with ccTLD sites, 92.7% with
//! associated sites; mean 2.6 associated sites per set) and plots the
//! per-subset site counts by month in Figure 7. A [`SnapshotSeries`] is the
//! data structure those analyses run over.

use crate::list::RwsList;
use crate::set::MemberRole;
use rws_stats::timeseries::{Date, Month, MonthlySeries};
use serde::{Deserialize, Serialize};

/// Counts of sites by subset type in one list snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubsetCounts {
    /// Number of set primaries (== number of sets).
    pub primaries: usize,
    /// Number of associated sites.
    pub associated: usize,
    /// Number of service sites.
    pub service: usize,
    /// Number of ccTLD variant sites.
    pub cctld: usize,
}

impl SubsetCounts {
    /// Total sites across all subsets (including primaries).
    pub fn total(&self) -> usize {
        self.primaries + self.associated + self.service + self.cctld
    }
}

/// The RWS list as it stood on a particular date.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ListSnapshot {
    /// The date of the snapshot.
    pub date: Date,
    /// The list contents at that date.
    pub list: RwsList,
}

impl ListSnapshot {
    /// Create a snapshot.
    pub fn new(date: Date, list: RwsList) -> ListSnapshot {
        ListSnapshot { date, list }
    }

    /// Per-subset site counts for this snapshot (the bars of Figure 7).
    pub fn subset_counts(&self) -> SubsetCounts {
        let mut counts = SubsetCounts::default();
        for set in self.list.sets() {
            counts.primaries += 1;
            counts.associated += set.associated_count();
            counts.service += set.service_count();
            counts.cctld += set.cctld_count();
        }
        counts
    }

    /// Fraction of sets that contain at least one member with the given
    /// role (the "92.7% of sets include one or more associated sites"
    /// statistic). Returns 0 for an empty list.
    pub fn fraction_of_sets_with(&self, role: MemberRole) -> f64 {
        let total = self.list.set_count();
        if total == 0 {
            return 0.0;
        }
        let with = self
            .list
            .sets()
            .filter(|set| match role {
                MemberRole::Primary => true,
                MemberRole::Associated => set.associated_count() > 0,
                MemberRole::Service => set.service_count() > 0,
                MemberRole::Cctld => set.cctld_count() > 0,
            })
            .count();
        with as f64 / total as f64
    }

    /// Mean number of associated sites per set (the "mean of 2.6" figure).
    pub fn mean_associated_per_set(&self) -> f64 {
        let total = self.list.set_count();
        if total == 0 {
            return 0.0;
        }
        self.subset_counts().associated as f64 / total as f64
    }
}

/// A chronological series of list snapshots (e.g. one per month from 2023-01
/// to 2024-03, as the paper's governance figures use).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SnapshotSeries {
    snapshots: Vec<ListSnapshot>,
}

impl SnapshotSeries {
    /// Create an empty series.
    pub fn new() -> SnapshotSeries {
        SnapshotSeries::default()
    }

    /// Append a snapshot, keeping the series sorted by date.
    pub fn push(&mut self, snapshot: ListSnapshot) {
        self.snapshots.push(snapshot);
        self.snapshots.sort_by_key(|s| s.date);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if the series has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Iterate snapshots in date order.
    pub fn iter(&self) -> impl Iterator<Item = &ListSnapshot> {
        self.snapshots.iter()
    }

    /// The latest snapshot, if any.
    pub fn latest(&self) -> Option<&ListSnapshot> {
        self.snapshots.last()
    }

    /// The snapshot in force at (the last one on or before) `date`.
    pub fn at(&self, date: Date) -> Option<&ListSnapshot> {
        self.snapshots.iter().rev().find(|s| s.date <= date)
    }

    /// Build the per-month, per-subset count series behind Figure 7. The
    /// value for a month is taken from the last snapshot within that month
    /// (or the most recent one before it).
    pub fn composition_by_month(&self, start: Month, end: Month) -> CompositionSeries {
        let mut service = MonthlySeries::zeros(start, end);
        let mut associated = MonthlySeries::zeros(start, end);
        let mut cctld = MonthlySeries::zeros(start, end);
        let mut primaries = MonthlySeries::zeros(start, end);
        for month in start.range_inclusive(end) {
            let last_day = Date::new(month.year, month.month, month.days_in_month());
            if let Some(snapshot) = self.at(last_day) {
                let counts = snapshot.subset_counts();
                service.set(month, counts.service as f64);
                associated.set(month, counts.associated as f64);
                cctld.set(month, counts.cctld as f64);
                primaries.set(month, counts.primaries as f64);
            }
        }
        CompositionSeries {
            service,
            associated,
            cctld,
            primaries,
        }
    }
}

/// Monthly per-subset counts — the three series plotted in Figure 7 (plus
/// primaries, which the paper reports in the text).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositionSeries {
    /// Service-site count per month.
    pub service: MonthlySeries,
    /// Associated-site count per month.
    pub associated: MonthlySeries,
    /// ccTLD-site count per month.
    pub cctld: MonthlySeries,
    /// Set-primary count per month.
    pub primaries: MonthlySeries,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::RwsSet;

    fn list_with(n_sets: usize, assoc_per_set: usize, with_service: bool) -> RwsList {
        let mut sets = Vec::new();
        for i in 0..n_sets {
            let mut set = RwsSet::new(&format!("https://primary{i}.com")).unwrap();
            for j in 0..assoc_per_set {
                set.add_associated(&format!("https://assoc{i}x{j}.com"), "affiliated brand")
                    .unwrap();
            }
            if with_service {
                set.add_service(&format!("https://service{i}.com"), "cdn")
                    .unwrap();
            }
            sets.push(set);
        }
        RwsList::from_sets(sets).unwrap()
    }

    #[test]
    fn subset_counts_and_fractions() {
        let snapshot = ListSnapshot::new(Date::new(2024, 3, 26), list_with(4, 2, true));
        let counts = snapshot.subset_counts();
        assert_eq!(counts.primaries, 4);
        assert_eq!(counts.associated, 8);
        assert_eq!(counts.service, 4);
        assert_eq!(counts.cctld, 0);
        assert_eq!(counts.total(), 16);
        assert_eq!(snapshot.fraction_of_sets_with(MemberRole::Associated), 1.0);
        assert_eq!(snapshot.fraction_of_sets_with(MemberRole::Service), 1.0);
        assert_eq!(snapshot.fraction_of_sets_with(MemberRole::Cctld), 0.0);
        assert_eq!(snapshot.mean_associated_per_set(), 2.0);
    }

    #[test]
    fn empty_snapshot_fractions_are_zero() {
        let snapshot = ListSnapshot::new(Date::new(2024, 1, 1), RwsList::new());
        assert_eq!(snapshot.fraction_of_sets_with(MemberRole::Associated), 0.0);
        assert_eq!(snapshot.mean_associated_per_set(), 0.0);
        assert_eq!(snapshot.subset_counts().total(), 0);
    }

    #[test]
    fn series_is_sorted_and_queryable() {
        let mut series = SnapshotSeries::new();
        series.push(ListSnapshot::new(
            Date::new(2024, 1, 15),
            list_with(3, 1, false),
        ));
        series.push(ListSnapshot::new(
            Date::new(2023, 6, 1),
            list_with(1, 1, false),
        ));
        series.push(ListSnapshot::new(
            Date::new(2023, 10, 1),
            list_with(2, 1, false),
        ));
        assert_eq!(series.len(), 3);
        let dates: Vec<Date> = series.iter().map(|s| s.date).collect();
        assert!(dates.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(series.latest().unwrap().list.set_count(), 3);
        assert_eq!(
            series.at(Date::new(2023, 8, 1)).unwrap().list.set_count(),
            1
        );
        assert_eq!(
            series.at(Date::new(2023, 12, 1)).unwrap().list.set_count(),
            2
        );
        assert!(series.at(Date::new(2023, 1, 1)).is_none());
    }

    #[test]
    fn composition_by_month_steps_up() {
        let mut series = SnapshotSeries::new();
        series.push(ListSnapshot::new(
            Date::new(2023, 2, 10),
            list_with(1, 2, false),
        ));
        series.push(ListSnapshot::new(
            Date::new(2023, 4, 10),
            list_with(3, 2, true),
        ));
        let comp = series.composition_by_month(Month::new(2023, 1), Month::new(2023, 5));
        // January: no snapshot yet → zero.
        assert_eq!(comp.associated.get(Month::new(2023, 1)), Some(0.0));
        // February through March: first snapshot (1 set × 2 associated).
        assert_eq!(comp.associated.get(Month::new(2023, 2)), Some(2.0));
        assert_eq!(comp.associated.get(Month::new(2023, 3)), Some(2.0));
        // April onward: second snapshot (3 sets × 2 associated, 3 service).
        assert_eq!(comp.associated.get(Month::new(2023, 4)), Some(6.0));
        assert_eq!(comp.service.get(Month::new(2023, 5)), Some(3.0));
        assert_eq!(comp.primaries.get(Month::new(2023, 5)), Some(3.0));
    }
}
