//! The full Related Website Sets list: a collection of disjoint sets.

use crate::error::SetError;
use crate::set::{MemberRole, RwsSet};
use rws_domain::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The Related Website Sets list — the browser-consumed artefact published
/// as `related_website_sets.JSON`.
///
/// The list maintains the invariant that no domain appears in more than one
/// set, which is what makes the browser-side lookup ("are these two sites in
/// the same set?") well-defined.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RwsList {
    sets: Vec<RwsSet>,
    /// Index from member domain to position in `sets`.
    #[serde(skip)]
    index: BTreeMap<DomainName, usize>,
}

impl RwsList {
    /// An empty list.
    pub fn new() -> RwsList {
        RwsList::default()
    }

    /// Build a list from sets, enforcing cross-set disjointness.
    pub fn from_sets(sets: Vec<RwsSet>) -> Result<RwsList, SetError> {
        let mut list = RwsList::new();
        for set in sets {
            list.add_set(set)?;
        }
        Ok(list)
    }

    /// Add a set, enforcing that none of its members already belong to
    /// another set.
    pub fn add_set(&mut self, set: RwsSet) -> Result<(), SetError> {
        for domain in set.domains() {
            if self.index.contains_key(&domain) {
                return Err(SetError::MemberInMultipleSets {
                    domain: domain.to_string(),
                });
            }
        }
        let idx = self.sets.len();
        for domain in set.domains() {
            self.index.insert(domain, idx);
        }
        self.sets.push(set);
        Ok(())
    }

    /// Rebuild the domain index (used after deserialisation, where the index
    /// is skipped).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        for (idx, set) in self.sets.iter().enumerate() {
            for domain in set.domains() {
                self.index.insert(domain, idx);
            }
        }
    }

    /// Number of sets in the list.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Total number of member domains across all sets (including primaries).
    pub fn domain_count(&self) -> usize {
        self.sets.iter().map(RwsSet::size).sum()
    }

    /// Iterate over the sets.
    pub fn sets(&self) -> impl Iterator<Item = &RwsSet> {
        self.sets.iter()
    }

    /// The set containing a domain, if any.
    pub fn set_for(&self, domain: &DomainName) -> Option<&RwsSet> {
        self.index.get(domain).map(|&i| &self.sets[i])
    }

    /// The position (in [`sets`](Self::sets) order) of the set containing a
    /// domain, if any. Two domains are related exactly when both have the
    /// same `Some` index — precomputing this per domain turns the pair
    /// universe's O(members²) relatedness sweep into integer compares.
    pub fn set_index_of(&self, domain: &DomainName) -> Option<usize> {
        self.index.get(domain).copied()
    }

    /// The set whose primary is the given domain, if any.
    pub fn set_with_primary(&self, primary: &DomainName) -> Option<&RwsSet> {
        self.set_for(primary).filter(|set| set.primary() == primary)
    }

    /// The role a domain plays in the list, if it is a member of any set.
    pub fn role_of(&self, domain: &DomainName) -> Option<MemberRole> {
        self.set_for(domain).and_then(|set| set.role_of(domain))
    }

    /// True if the two domains are members of the same set — the core
    /// browser-side relatedness check that gates `requestStorageAccess`
    /// auto-grants.
    pub fn are_related(&self, a: &DomainName, b: &DomainName) -> bool {
        match (self.index.get(a), self.index.get(b)) {
            (Some(ia), Some(ib)) => ia == ib,
            _ => false,
        }
    }

    /// All member domains in the list, sorted.
    pub fn all_domains(&self) -> Vec<DomainName> {
        let mut v: Vec<DomainName> = self.index.keys().cloned().collect();
        v.sort();
        v
    }

    /// All `(primary, member, role)` triples for non-primary members, in set
    /// order — the iteration Figures 3 and 4 perform ("each service or
    /// associated site compared with its set primary").
    pub fn member_primary_pairs(&self) -> Vec<(DomainName, DomainName, MemberRole)> {
        let mut out = Vec::new();
        for set in &self.sets {
            for member in set.members() {
                if member.role != MemberRole::Primary {
                    out.push((set.primary().clone(), member.domain, member.role));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn sample_list() -> RwsList {
        let mut bild = RwsSet::new("https://bild.de").unwrap();
        bild.add_associated("https://autobild.de", "IT news sister brand")
            .unwrap()
            .add_associated("https://computerbild.de", "Computer magazine")
            .unwrap();
        let mut yandex = RwsSet::new("https://ya.ru").unwrap();
        yandex
            .add_associated("https://webvisor.com", "Web analytics service")
            .unwrap()
            .add_service("https://yastatic.net", "Static asset host")
            .unwrap();
        RwsList::from_sets(vec![bild, yandex]).unwrap()
    }

    #[test]
    fn counts() {
        let list = sample_list();
        assert_eq!(list.set_count(), 2);
        assert_eq!(list.domain_count(), 6);
        assert_eq!(list.all_domains().len(), 6);
    }

    #[test]
    fn lookups() {
        let list = sample_list();
        assert_eq!(
            list.set_for(&dn("autobild.de")).unwrap().primary(),
            &dn("bild.de")
        );
        assert!(list.set_for(&dn("unknown.com")).is_none());
        assert!(list.set_with_primary(&dn("bild.de")).is_some());
        assert!(list.set_with_primary(&dn("autobild.de")).is_none());
        assert_eq!(list.role_of(&dn("yastatic.net")), Some(MemberRole::Service));
        assert_eq!(list.role_of(&dn("ya.ru")), Some(MemberRole::Primary));
        assert_eq!(list.role_of(&dn("unknown.com")), None);
    }

    #[test]
    fn relatedness_is_same_set_membership() {
        let list = sample_list();
        assert!(list.are_related(&dn("bild.de"), &dn("autobild.de")));
        assert!(list.are_related(&dn("autobild.de"), &dn("computerbild.de")));
        assert!(!list.are_related(&dn("bild.de"), &dn("ya.ru")));
        assert!(!list.are_related(&dn("bild.de"), &dn("unknown.com")));
        assert!(!list.are_related(&dn("unknown.com"), &dn("also-unknown.com")));
    }

    #[test]
    fn cross_set_duplicates_rejected() {
        let mut a = RwsSet::new("https://a.com").unwrap();
        a.add_associated("https://shared.com", "x").unwrap();
        let mut b = RwsSet::new("https://b.com").unwrap();
        b.add_associated("https://shared.com", "y").unwrap();
        let err = RwsList::from_sets(vec![a, b]).unwrap_err();
        assert!(matches!(err, SetError::MemberInMultipleSets { .. }));
    }

    #[test]
    fn member_primary_pairs_cover_non_primaries() {
        let list = sample_list();
        let pairs = list.member_primary_pairs();
        assert_eq!(pairs.len(), 4);
        assert!(pairs.iter().any(|(p, m, r)| p == &dn("ya.ru")
            && m == &dn("yastatic.net")
            && *r == MemberRole::Service));
        assert!(pairs.iter().all(|(p, m, _)| p != m));
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let list = sample_list();
        let json = serde_json::to_string(&list).unwrap();
        let mut restored: RwsList = serde_json::from_str(&json).unwrap();
        // Before rebuilding, the skipped index is empty.
        assert!(restored.set_for(&dn("bild.de")).is_none());
        restored.rebuild_index();
        assert!(restored.are_related(&dn("bild.de"), &dn("autobild.de")));
        assert_eq!(restored.set_count(), 2);
    }

    #[test]
    fn empty_list_behaviour() {
        let list = RwsList::new();
        assert_eq!(list.set_count(), 0);
        assert_eq!(list.domain_count(), 0);
        assert!(!list.are_related(&dn("a.com"), &dn("b.com")));
        assert!(list.member_primary_pairs().is_empty());
    }
}
