//! The `/.well-known/related-website-set.json` file.
//!
//! The submission guidelines require every member of a proposed set to serve
//! a JSON file proving administrative control of the domain. The primary
//! serves the full set object; every non-primary member serves a small
//! object naming its primary. The validation bot fetches each file and
//! compares it with the submitted set; mismatches and fetch failures are the
//! two largest error classes in Table 3.

use crate::json::{set_from_json, set_to_json};
use crate::set::{format_member, parse_member, RwsSet};
use crate::SetError;
use rws_domain::DomainName;
use serde_json::{json, Value};

/// The contents a member serves at the well-known path.
#[derive(Debug, Clone, PartialEq)]
pub enum WellKnownFile {
    /// The primary's copy: the full set object.
    Primary(RwsSet),
    /// A non-primary member's copy: a pointer to its primary.
    Member {
        /// The primary this member claims to belong to.
        primary: DomainName,
    },
}

impl WellKnownFile {
    /// The well-known document the set primary must serve.
    pub fn for_primary(set: &RwsSet) -> WellKnownFile {
        WellKnownFile::Primary(set.clone())
    }

    /// The well-known document a non-primary member must serve.
    pub fn for_member(primary: &DomainName) -> WellKnownFile {
        WellKnownFile::Member {
            primary: primary.clone(),
        }
    }

    /// Serialise to the JSON the file would contain.
    pub fn to_json(&self) -> Value {
        match self {
            WellKnownFile::Primary(set) => set_to_json(set),
            WellKnownFile::Member { primary } => json!({
                "primary": format_member(primary),
            }),
        }
    }

    /// Serialise to a JSON string.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("well-known JSON is serialisable")
    }

    /// Parse a well-known document. A document with member lists parses as a
    /// primary copy; a document with only a `primary` field parses as a
    /// member pointer.
    pub fn from_json(value: &Value) -> Result<WellKnownFile, SetError> {
        let obj = value.as_object().ok_or_else(|| SetError::MalformedJson {
            reason: "well-known document is not a JSON object".to_string(),
        })?;
        let has_member_lists = obj.contains_key("associatedSites")
            || obj.contains_key("serviceSites")
            || obj.contains_key("ccTLDs");
        if has_member_lists {
            Ok(WellKnownFile::Primary(set_from_json(value)?))
        } else {
            let primary = obj.get("primary").and_then(Value::as_str).ok_or_else(|| {
                SetError::MalformedJson {
                    reason: "well-known document is missing 'primary'".to_string(),
                }
            })?;
            Ok(WellKnownFile::Member {
                primary: parse_member(primary)?,
            })
        }
    }

    /// Parse from JSON text.
    pub fn from_json_str(text: &str) -> Result<WellKnownFile, SetError> {
        let value: Value = serde_json::from_str(text).map_err(|e| SetError::MalformedJson {
            reason: e.to_string(),
        })?;
        WellKnownFile::from_json(&value)
    }

    /// The primary domain this document points at.
    pub fn primary(&self) -> &DomainName {
        match self {
            WellKnownFile::Primary(set) => set.primary(),
            WellKnownFile::Member { primary } => primary,
        }
    }

    /// Whether this well-known document is consistent with the submitted
    /// set: a primary copy must describe an identical set; a member copy
    /// must name the submitted set's primary.
    pub fn matches_submission(&self, submitted: &RwsSet) -> bool {
        match self {
            WellKnownFile::Primary(set) => {
                // Compare canonical JSON forms, which ignores insertion order
                // differences in maps but preserves member lists.
                set_to_json(set) == set_to_json(submitted)
            }
            WellKnownFile::Member { primary } => primary == submitted.primary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> RwsSet {
        let mut set = RwsSet::new("https://bild.de").unwrap();
        set.add_associated("https://autobild.de", "Sister publication")
            .unwrap();
        set
    }

    #[test]
    fn primary_copy_round_trips() {
        let set = sample_set();
        let wk = WellKnownFile::for_primary(&set);
        let text = wk.to_json_string();
        let parsed = WellKnownFile::from_json_str(&text).unwrap();
        assert_eq!(parsed, wk);
        assert!(parsed.matches_submission(&set));
        assert_eq!(parsed.primary().as_str(), "bild.de");
    }

    #[test]
    fn member_copy_round_trips() {
        let primary = DomainName::parse("bild.de").unwrap();
        let wk = WellKnownFile::for_member(&primary);
        let text = wk.to_json_string();
        let parsed = WellKnownFile::from_json_str(&text).unwrap();
        assert_eq!(parsed, wk);
        assert!(parsed.matches_submission(&sample_set()));
    }

    #[test]
    fn mismatched_primary_copy_detected() {
        let mut different = sample_set();
        different
            .add_associated("https://extra.de", "Not in the submission")
            .unwrap();
        let wk = WellKnownFile::for_primary(&different);
        assert!(!wk.matches_submission(&sample_set()));
    }

    #[test]
    fn mismatched_member_pointer_detected() {
        let other_primary = DomainName::parse("unrelated.com").unwrap();
        let wk = WellKnownFile::for_member(&other_primary);
        assert!(!wk.matches_submission(&sample_set()));
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(WellKnownFile::from_json_str("[]").is_err());
        assert!(WellKnownFile::from_json_str("{}").is_err());
        assert!(WellKnownFile::from_json_str("{\"primary\": 7}").is_err());
        assert!(WellKnownFile::from_json_str("not json at all").is_err());
    }
}
