//! The Related Website Sets list model.
//!
//! This crate implements the data model at the centre of the paper: the
//! Related Website Sets (RWS) list published in Google's
//! `related_website_sets.JSON`, the subset structure it defines (primary,
//! *associated*, *service* and *ccTLD* sites), the `.well-known` files each
//! member must serve, the set-level validation requirements enforced by the
//! GitHub submission process (Section 4 / Table 3), and dated snapshots of
//! the list so the composition-over-time figures (Figure 7) can be computed.
//!
//! The three subset types differ in their requirements (Section 2):
//!
//! * **service sites** must be under common ownership with the primary,
//!   support other members, cannot be a top-level grant target and must not
//!   be indexable (the bot checks for an `X-Robots-Tag` header);
//! * **associated sites** only need a *clearly presented affiliation* — no
//!   common ownership — which is exactly the relaxation the paper's user
//!   study probes;
//! * **ccTLD sites** are country-code variants of another member and must
//!   share ownership with it.
//!
//! ```
//! use rws_model::{RwsList, RwsSet};
//!
//! let mut set = RwsSet::new("https://bild.de").unwrap();
//! set.add_associated("https://autobild.de", "Shared automotive news brand").unwrap();
//! let list = RwsList::from_sets(vec![set]).unwrap();
//!
//! let a = rws_domain::DomainName::parse("bild.de").unwrap();
//! let b = rws_domain::DomainName::parse("autobild.de").unwrap();
//! assert!(list.are_related(&a, &b));
//! ```

pub mod error;
pub mod json;
pub mod list;
pub mod set;
pub mod snapshot;
pub mod validation;
pub mod well_known;

pub use error::SetError;
pub use json::{list_from_json, list_to_json};
pub use list::RwsList;
pub use set::{MemberRole, RwsSet, SetMember};
pub use snapshot::{ListSnapshot, SnapshotSeries, SubsetCounts};
pub use validation::{
    SetValidator, ValidationIssue, ValidationOutcome, ValidationReport, ValidatorConfig,
};
pub use well_known::WellKnownFile;
