//! A single Related Website Set.

use crate::error::SetError;
use rws_domain::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The role a domain plays within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemberRole {
    /// The set primary.
    Primary,
    /// An associated site: clearly affiliated, common ownership *not*
    /// required. The most privacy-impacting subset.
    Associated,
    /// A service site: common ownership required, supports other members,
    /// cannot receive top-level storage-access grants.
    Service,
    /// A ccTLD variant of another member (its "base").
    Cctld,
}

impl MemberRole {
    /// Human-readable label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            MemberRole::Primary => "primary",
            MemberRole::Associated => "associated",
            MemberRole::Service => "service",
            MemberRole::Cctld => "ccTLD",
        }
    }
}

/// A member of a set together with its role and metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetMember {
    /// The member's domain (an eTLD+1 in a valid set).
    pub domain: DomainName,
    /// The member's role.
    pub role: MemberRole,
    /// The rationale string supplied for associated/service members, if any.
    /// The submission guidelines require one; its absence is a Table 3
    /// validation error.
    pub rationale: Option<String>,
    /// For ccTLD members, the member this one is a variant of.
    pub cctld_base: Option<DomainName>,
}

/// A single Related Website Set: one primary plus associated, service and
/// ccTLD members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RwsSet {
    /// The set primary.
    primary: DomainName,
    /// Associated sites with their rationales, in insertion order.
    associated: Vec<(DomainName, Option<String>)>,
    /// Service sites with their rationales, in insertion order.
    service: Vec<(DomainName, Option<String>)>,
    /// ccTLD variants keyed by the member they are a variant of.
    cctlds: BTreeMap<DomainName, Vec<DomainName>>,
    /// Contact address recorded in the submission (optional metadata).
    contact: Option<String>,
}

/// Parse an `https://example.com`-style origin (or a bare domain) into a
/// domain name. The canonical RWS JSON writes members as https origins.
pub(crate) fn parse_member(input: &str) -> Result<DomainName, SetError> {
    let trimmed = input.trim();
    let host = trimmed
        .strip_prefix("https://")
        .unwrap_or(trimmed)
        .trim_end_matches('/');
    if host.starts_with("http://") {
        return Err(SetError::InvalidOrigin {
            input: input.to_string(),
            reason: "http:// origins are not permitted; sets require https".to_string(),
        });
    }
    DomainName::parse(host).map_err(|e| SetError::InvalidOrigin {
        input: input.to_string(),
        reason: e.to_string(),
    })
}

/// Format a domain the way the canonical JSON does (an https origin).
pub(crate) fn format_member(domain: &DomainName) -> String {
    format!("https://{domain}")
}

impl RwsSet {
    /// Create a set with the given primary (accepts `https://` origins or
    /// bare domains).
    pub fn new(primary: &str) -> Result<RwsSet, SetError> {
        Ok(RwsSet {
            primary: parse_member(primary)?,
            associated: Vec::new(),
            service: Vec::new(),
            cctlds: BTreeMap::new(),
            contact: None,
        })
    }

    /// Create a set from an already-parsed primary domain.
    pub fn for_primary(primary: DomainName) -> RwsSet {
        RwsSet {
            primary,
            associated: Vec::new(),
            service: Vec::new(),
            cctlds: BTreeMap::new(),
            contact: None,
        }
    }

    /// Set the contact address.
    pub fn set_contact<S: Into<String>>(&mut self, contact: S) -> &mut Self {
        self.contact = Some(contact.into());
        self
    }

    /// The contact address, if recorded.
    pub fn contact(&self) -> Option<&str> {
        self.contact.as_deref()
    }

    /// The set primary.
    pub fn primary(&self) -> &DomainName {
        &self.primary
    }

    fn check_not_member(&self, domain: &DomainName) -> Result<(), SetError> {
        if self.contains(domain) {
            Err(SetError::DuplicateMember {
                domain: domain.to_string(),
            })
        } else {
            Ok(())
        }
    }

    /// Add an associated site with its rationale.
    pub fn add_associated(&mut self, domain: &str, rationale: &str) -> Result<&mut Self, SetError> {
        let d = parse_member(domain)?;
        self.check_not_member(&d)?;
        let rationale = if rationale.trim().is_empty() {
            None
        } else {
            Some(rationale.trim().to_string())
        };
        self.associated.push((d, rationale));
        Ok(self)
    }

    /// Add an associated site without a rationale (invalid per the
    /// guidelines, but representable so the validator can flag it).
    pub fn add_associated_without_rationale(
        &mut self,
        domain: &str,
    ) -> Result<&mut Self, SetError> {
        let d = parse_member(domain)?;
        self.check_not_member(&d)?;
        self.associated.push((d, None));
        Ok(self)
    }

    /// Add a service site with its rationale.
    pub fn add_service(&mut self, domain: &str, rationale: &str) -> Result<&mut Self, SetError> {
        let d = parse_member(domain)?;
        self.check_not_member(&d)?;
        let rationale = if rationale.trim().is_empty() {
            None
        } else {
            Some(rationale.trim().to_string())
        };
        self.service.push((d, rationale));
        Ok(self)
    }

    /// Add a service site without a rationale.
    pub fn add_service_without_rationale(&mut self, domain: &str) -> Result<&mut Self, SetError> {
        let d = parse_member(domain)?;
        self.check_not_member(&d)?;
        self.service.push((d, None));
        Ok(self)
    }

    /// Declare ccTLD variants of an existing member. The base must already
    /// be the primary or a member of the set.
    pub fn add_cctld_variants(
        &mut self,
        base: &str,
        variants: &[&str],
    ) -> Result<&mut Self, SetError> {
        let base_domain = parse_member(base)?;
        if base_domain != self.primary && !self.contains(&base_domain) {
            return Err(SetError::UnknownCctldBase {
                base: base_domain.to_string(),
            });
        }
        let mut parsed = Vec::new();
        for v in variants {
            let d = parse_member(v)?;
            self.check_not_member(&d)?;
            if parsed.contains(&d) {
                return Err(SetError::DuplicateMember {
                    domain: d.to_string(),
                });
            }
            parsed.push(d);
        }
        self.cctlds.entry(base_domain).or_default().extend(parsed);
        Ok(self)
    }

    /// Associated sites in insertion order.
    pub fn associated_sites(&self) -> impl Iterator<Item = &DomainName> {
        self.associated.iter().map(|(d, _)| d)
    }

    /// Service sites in insertion order.
    pub fn service_sites(&self) -> impl Iterator<Item = &DomainName> {
        self.service.iter().map(|(d, _)| d)
    }

    /// ccTLD variants, flattened.
    pub fn cctld_sites(&self) -> impl Iterator<Item = &DomainName> {
        self.cctlds.values().flatten()
    }

    /// The ccTLD map (base → variants).
    pub fn cctld_map(&self) -> &BTreeMap<DomainName, Vec<DomainName>> {
        &self.cctlds
    }

    /// The rationale for a given member, if one was supplied.
    pub fn rationale_for(&self, domain: &DomainName) -> Option<&str> {
        self.associated
            .iter()
            .chain(self.service.iter())
            .find(|(d, _)| d == domain)
            .and_then(|(_, r)| r.as_deref())
    }

    /// Number of associated sites.
    pub fn associated_count(&self) -> usize {
        self.associated.len()
    }

    /// Number of service sites.
    pub fn service_count(&self) -> usize {
        self.service.len()
    }

    /// Number of ccTLD variant sites.
    pub fn cctld_count(&self) -> usize {
        self.cctlds.values().map(Vec::len).sum()
    }

    /// Total number of member domains including the primary.
    pub fn size(&self) -> usize {
        1 + self.associated_count() + self.service_count() + self.cctld_count()
    }

    /// True if the domain is the primary or any member of the set.
    pub fn contains(&self, domain: &DomainName) -> bool {
        self.role_of(domain).is_some()
    }

    /// The role of a domain within the set, if it is a member.
    pub fn role_of(&self, domain: &DomainName) -> Option<MemberRole> {
        if *domain == self.primary {
            return Some(MemberRole::Primary);
        }
        if self.associated.iter().any(|(d, _)| d == domain) {
            return Some(MemberRole::Associated);
        }
        if self.service.iter().any(|(d, _)| d == domain) {
            return Some(MemberRole::Service);
        }
        if self.cctlds.values().any(|vs| vs.contains(domain)) {
            return Some(MemberRole::Cctld);
        }
        None
    }

    /// The base member a ccTLD variant belongs to, if `domain` is a ccTLD
    /// member.
    pub fn cctld_base_of(&self, domain: &DomainName) -> Option<&DomainName> {
        self.cctlds
            .iter()
            .find(|(_, vs)| vs.contains(domain))
            .map(|(base, _)| base)
    }

    /// Every member of the set (primary first) with role and metadata.
    pub fn members(&self) -> Vec<SetMember> {
        let mut out = vec![SetMember {
            domain: self.primary.clone(),
            role: MemberRole::Primary,
            rationale: None,
            cctld_base: None,
        }];
        for (d, r) in &self.associated {
            out.push(SetMember {
                domain: d.clone(),
                role: MemberRole::Associated,
                rationale: r.clone(),
                cctld_base: None,
            });
        }
        for (d, r) in &self.service {
            out.push(SetMember {
                domain: d.clone(),
                role: MemberRole::Service,
                rationale: r.clone(),
                cctld_base: None,
            });
        }
        for (base, variants) in &self.cctlds {
            for v in variants {
                out.push(SetMember {
                    domain: v.clone(),
                    role: MemberRole::Cctld,
                    rationale: None,
                    cctld_base: Some(base.clone()),
                });
            }
        }
        out
    }

    /// All member domains (primary first).
    pub fn domains(&self) -> Vec<DomainName> {
        self.members().into_iter().map(|m| m.domain).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn times_internet() -> RwsSet {
        // The paper's worked example: Times Internet operates
        // timesinternet.in and indiatimes.com.
        let mut set = RwsSet::new("https://timesinternet.in").unwrap();
        set.add_associated("https://indiatimes.com", "Times Internet news property")
            .unwrap();
        set.add_service("https://timesstatic.in", "Static asset CDN for set members")
            .unwrap();
        set.add_cctld_variants("https://indiatimes.com", &["https://indiatimes.co.uk"])
            .unwrap();
        set
    }

    #[test]
    fn primary_parsing_accepts_origins_and_bare_domains() {
        assert_eq!(
            RwsSet::new("https://example.com/").unwrap().primary(),
            &dn("example.com")
        );
        assert_eq!(
            RwsSet::new("example.com").unwrap().primary(),
            &dn("example.com")
        );
    }

    #[test]
    fn http_origins_rejected() {
        let err = RwsSet::new("http://example.com").unwrap_err();
        assert!(matches!(err, SetError::InvalidOrigin { .. }));
        assert!(err.to_string().contains("https"));
    }

    #[test]
    fn roles_and_membership() {
        let set = times_internet();
        assert_eq!(
            set.role_of(&dn("timesinternet.in")),
            Some(MemberRole::Primary)
        );
        assert_eq!(
            set.role_of(&dn("indiatimes.com")),
            Some(MemberRole::Associated)
        );
        assert_eq!(
            set.role_of(&dn("timesstatic.in")),
            Some(MemberRole::Service)
        );
        assert_eq!(
            set.role_of(&dn("indiatimes.co.uk")),
            Some(MemberRole::Cctld)
        );
        assert_eq!(set.role_of(&dn("unrelated.com")), None);
        assert!(set.contains(&dn("indiatimes.com")));
        assert!(!set.contains(&dn("unrelated.com")));
    }

    #[test]
    fn counts_and_size() {
        let set = times_internet();
        assert_eq!(set.associated_count(), 1);
        assert_eq!(set.service_count(), 1);
        assert_eq!(set.cctld_count(), 1);
        assert_eq!(set.size(), 4);
        assert_eq!(set.domains().len(), 4);
    }

    #[test]
    fn duplicate_members_rejected() {
        let mut set = times_internet();
        let err = set
            .add_associated("https://indiatimes.com", "again")
            .unwrap_err();
        assert!(matches!(err, SetError::DuplicateMember { .. }));
        let err = set
            .add_service("https://timesinternet.in", "primary as service")
            .unwrap_err();
        assert!(matches!(err, SetError::DuplicateMember { .. }));
    }

    #[test]
    fn cctld_requires_known_base() {
        let mut set = RwsSet::new("https://example.com").unwrap();
        let err = set
            .add_cctld_variants("https://unknown.com", &["https://unknown.de"])
            .unwrap_err();
        assert!(matches!(err, SetError::UnknownCctldBase { .. }));
        // Variants of the primary itself are allowed.
        set.add_cctld_variants("https://example.com", &["https://example.de"])
            .unwrap();
        assert_eq!(set.cctld_count(), 1);
        assert_eq!(
            set.cctld_base_of(&dn("example.de")),
            Some(&dn("example.com"))
        );
    }

    #[test]
    fn rationale_lookup() {
        let set = times_internet();
        assert_eq!(
            set.rationale_for(&dn("indiatimes.com")),
            Some("Times Internet news property")
        );
        assert_eq!(set.rationale_for(&dn("timesinternet.in")), None);
        let mut set2 = RwsSet::new("https://a.com").unwrap();
        set2.add_associated_without_rationale("https://b.com")
            .unwrap();
        assert_eq!(set2.rationale_for(&dn("b.com")), None);
    }

    #[test]
    fn members_listing_has_roles_and_bases() {
        let set = times_internet();
        let members = set.members();
        assert_eq!(members.len(), 4);
        assert_eq!(members[0].role, MemberRole::Primary);
        let cctld = members
            .iter()
            .find(|m| m.role == MemberRole::Cctld)
            .unwrap();
        assert_eq!(cctld.cctld_base, Some(dn("indiatimes.com")));
        assert_eq!(MemberRole::Cctld.label(), "ccTLD");
        assert_eq!(MemberRole::Associated.label(), "associated");
    }

    #[test]
    fn contact_metadata() {
        let mut set = RwsSet::new("https://example.com").unwrap();
        assert_eq!(set.contact(), None);
        set.set_contact("owner@example.com");
        assert_eq!(set.contact(), Some("owner@example.com"));
    }

    #[test]
    fn empty_rationale_treated_as_missing() {
        let mut set = RwsSet::new("https://a.com").unwrap();
        set.add_associated("https://b.com", "   ").unwrap();
        assert_eq!(set.rationale_for(&dn("b.com")), None);
    }
}
