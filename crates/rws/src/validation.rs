//! Set-level technical validation — the automated checks behind Table 3.
//!
//! When a set is proposed on GitHub, a bot runs a series of technical checks
//! and reports failures as pull-request comments. Table 3 of the paper
//! counts the observed messages:
//!
//! | message | count |
//! |---|---|
//! | Unable to fetch .well-known JSON file | 202 |
//! | Associated site isn't an eTLD+1 | 65 |
//! | Service site without X-Robots-Tag header | 19 |
//! | PR set does not match .well-known JSON file | 12 |
//! | Alias site isn't an eTLD+1 | 10 |
//! | Primary site isn't an eTLD+1 | 9 |
//! | Other | 8 |
//! | No rationale for one or more set members | 5 |
//!
//! [`SetValidator`] reproduces those checks against the simulated web: it
//! verifies eTLD+1 status of every member, HTTPS reachability, the
//! `.well-known` file on every member, its consistency with the submission,
//! the `X-Robots-Tag` header on service sites, and rationale presence.

use crate::set::RwsSet;
use crate::well_known::WellKnownFile;
use rws_domain::{DomainName, PublicSuffixList, SiteResolver};
use rws_net::{
    well_known_path, FaultInjector, FetchPolicy, FetchSession, Fetcher, NetError, RetryPolicy,
    SimulatedWeb, Url,
};
use serde::{Deserialize, Serialize};

/// Seed for the validator's per-member [`FetchSession`]s: fixed, so a
/// validation run against a given fault plan replays identically.
const VALIDATOR_SESSION_SEED: u64 = 0x5641_4C49; // "VALI"

/// One validation failure, tagged with the member it concerns.
///
/// The variants map one-to-one onto the GitHub bot's message classes in
/// Table 3 (plus `Other`, which the bot uses for everything else).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationIssue {
    /// The member's `/.well-known/related-website-set.json` could not be
    /// fetched (DNS failure, connection refused, non-200, or invalid JSON).
    WellKnownUnfetchable {
        /// The member whose file failed to fetch.
        site: DomainName,
        /// A human-readable description of the failure.
        detail: String,
    },
    /// An associated site is not an eTLD+1.
    AssociatedSiteNotEtldPlusOne {
        /// The offending associated site.
        site: DomainName,
    },
    /// A service site does not serve an `X-Robots-Tag` header.
    ServiceSiteWithoutRobotsTag {
        /// The offending service site.
        site: DomainName,
    },
    /// The member's well-known file does not match the submitted set.
    WellKnownMismatch {
        /// The member whose file disagrees with the submission.
        site: DomainName,
    },
    /// A ccTLD ("alias") site is not an eTLD+1.
    AliasSiteNotEtldPlusOne {
        /// The offending ccTLD variant.
        site: DomainName,
    },
    /// The primary is not an eTLD+1.
    PrimarySiteNotEtldPlusOne {
        /// The primary in question.
        site: DomainName,
    },
    /// A member is missing a rationale.
    MissingRationale {
        /// The member missing its rationale.
        site: DomainName,
    },
    /// Anything else (non-HTTPS members, unreachable pages, …), matching
    /// the bot's residual "Other" bucket.
    Other {
        /// The member concerned.
        site: DomainName,
        /// Description of the problem.
        detail: String,
    },
    /// The member's well-known file failed with a *retryable* error even
    /// after re-checking — a transient failure, distinct from the
    /// persistent [`WellKnownUnfetchable`](Self::WellKnownUnfetchable)
    /// class. Only emitted when
    /// [`ValidatorConfig::recheck_transient`] is on; it degrades the
    /// verdict instead of failing it outright. Not a Table 3 message: the
    /// paper's counts see only the persistent classes.
    WellKnownTransient {
        /// The member whose file failed transiently.
        site: DomainName,
        /// A human-readable description of the last failure.
        detail: String,
        /// Fetch attempts made before giving up.
        attempts: u32,
    },
}

impl ValidationIssue {
    /// The exact bot-comment label used in Table 3 of the paper.
    pub fn bot_message(&self) -> &'static str {
        match self {
            ValidationIssue::WellKnownUnfetchable { .. } => "Unable to fetch .well-known JSON file",
            ValidationIssue::AssociatedSiteNotEtldPlusOne { .. } => {
                "Associated site isn't an eTLD+1"
            }
            ValidationIssue::ServiceSiteWithoutRobotsTag { .. } => {
                "Service site without X-Robots-Tag header"
            }
            ValidationIssue::WellKnownMismatch { .. } => {
                "PR set does not match .well-known JSON file"
            }
            ValidationIssue::AliasSiteNotEtldPlusOne { .. } => "Alias site isn't an eTLD+1",
            ValidationIssue::PrimarySiteNotEtldPlusOne { .. } => "Primary site isn't an eTLD+1",
            ValidationIssue::MissingRationale { .. } => "No rationale for one or more set members",
            ValidationIssue::Other { .. } => "Other",
            ValidationIssue::WellKnownTransient { .. } => {
                "Re-check scheduled: .well-known fetch failed transiently"
            }
        }
    }

    /// The site the issue concerns.
    pub fn site(&self) -> &DomainName {
        match self {
            ValidationIssue::WellKnownUnfetchable { site, .. }
            | ValidationIssue::AssociatedSiteNotEtldPlusOne { site }
            | ValidationIssue::ServiceSiteWithoutRobotsTag { site }
            | ValidationIssue::WellKnownMismatch { site }
            | ValidationIssue::AliasSiteNotEtldPlusOne { site }
            | ValidationIssue::PrimarySiteNotEtldPlusOne { site }
            | ValidationIssue::MissingRationale { site }
            | ValidationIssue::Other { site, .. }
            | ValidationIssue::WellKnownTransient { site, .. } => site,
        }
    }

    /// True for the transient class that degrades rather than fails.
    pub fn is_transient(&self) -> bool {
        matches!(self, ValidationIssue::WellKnownTransient { .. })
    }
}

/// The overall outcome of validating a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationOutcome {
    /// Every check passed.
    Passed,
    /// At least one check failed.
    Failed,
    /// Every persistent check passed, but at least one `.well-known` fetch
    /// failed transiently even after re-checking. The submission is not
    /// rejected — the bot schedules a re-check — but the verdict is
    /// distinct from a clean pass *and* from a failure.
    Degraded,
}

impl ValidationOutcome {
    /// True for the transient-failure verdict.
    pub fn is_degraded(self) -> bool {
        self == ValidationOutcome::Degraded
    }
}

/// The full validation report for one submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The set primary the submission proposed.
    pub primary: DomainName,
    /// Overall outcome.
    pub outcome: ValidationOutcome,
    /// Every issue found, in check order (the bot reports all of them, not
    /// just the first).
    pub issues: Vec<ValidationIssue>,
    /// Number of network fetches performed during validation.
    pub fetches: usize,
}

impl ValidationReport {
    /// True if validation passed. A [`Degraded`](ValidationOutcome::Degraded)
    /// verdict is *not* a pass: the submission awaits a re-check.
    pub fn passed(&self) -> bool {
        self.outcome == ValidationOutcome::Passed
    }

    /// True if the only failures were transient (see
    /// [`ValidationOutcome::Degraded`]).
    pub fn is_degraded(&self) -> bool {
        self.outcome.is_degraded()
    }

    /// The bot-comment labels for every issue, in order.
    pub fn bot_messages(&self) -> Vec<&'static str> {
        self.issues
            .iter()
            .map(ValidationIssue::bot_message)
            .collect()
    }
}

/// Configuration for which checks run. The full set mirrors the real bot;
/// the flags exist so ablation benches can price individual checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorConfig {
    /// Check that every member is an eTLD+1.
    pub check_etld_plus_one: bool,
    /// Fetch and cross-check every member's well-known file.
    pub check_well_known: bool,
    /// Check `X-Robots-Tag` on service sites.
    pub check_service_robots: bool,
    /// Check that associated/service members carry rationales.
    pub check_rationales: bool,
    /// Distinguish transient from persistent `.well-known` failure: retry
    /// retryable fetch errors with backoff
    /// ([`RetryPolicy::standard`]) and report survivors as
    /// [`ValidationIssue::WellKnownTransient`], degrading the verdict
    /// instead of failing it. Off by default so the Table 3 governance
    /// replay counts are unperturbed.
    pub recheck_transient: bool,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            check_etld_plus_one: true,
            check_well_known: true,
            check_service_robots: true,
            check_rationales: true,
            recheck_transient: false,
        }
    }
}

/// The automated set validator.
pub struct SetValidator {
    resolver: SiteResolver,
    fetcher: Fetcher,
    config: ValidatorConfig,
}

impl SetValidator {
    /// Create a validator over a simulated web with the default (full)
    /// configuration and the strict fetch policy the real bot uses.
    pub fn new(web: SimulatedWeb) -> SetValidator {
        SetValidator::with_config(web, ValidatorConfig::default())
    }

    /// Create a validator with an explicit configuration.
    pub fn with_config(web: SimulatedWeb, config: ValidatorConfig) -> SetValidator {
        SetValidator::with_resolver(web, config, SiteResolver::embedded())
    }

    /// Create a validator sharing an existing memoizing [`SiteResolver`]
    /// instead of constructing its own — the governance pipeline validates
    /// hundreds of submissions naming the same hosts, and the rest of the
    /// engine asks the same eTLD+1 questions; one shared cache answers all
    /// of them.
    pub fn with_resolver(
        web: SimulatedWeb,
        config: ValidatorConfig,
        resolver: SiteResolver,
    ) -> SetValidator {
        let mut fetcher = Fetcher::with_policy(web, FetchPolicy::strict());
        if config.recheck_transient {
            fetcher.set_retry(RetryPolicy::standard());
        }
        SetValidator {
            resolver,
            fetcher,
            config,
        }
    }

    /// Install a fault injector on the validator's fetcher — how the
    /// resilience tests and benches expose the bot to transient weather.
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> SetValidator {
        self.fetcher.set_fault_injector(Some(injector));
        self
    }

    /// Share a memoizing [`SiteResolver`] with other components (the
    /// governance pipeline validates hundreds of submissions naming the
    /// same hosts; one shared cache answers the repeats).
    pub fn set_resolver(&mut self, resolver: SiteResolver) {
        self.resolver = resolver;
    }

    /// Replace the Public Suffix List used for eTLD+1 checks.
    pub fn set_psl(&mut self, psl: PublicSuffixList) {
        self.resolver = SiteResolver::new(psl);
    }

    /// Validate one submitted set, returning the full report.
    pub fn validate(&self, set: &RwsSet) -> ValidationReport {
        let mut issues = Vec::new();
        let fetches_before = self.fetcher.requests_issued();

        if self.config.check_etld_plus_one {
            self.check_etld_plus_one(set, &mut issues);
        }
        if self.config.check_rationales {
            self.check_rationales(set, &mut issues);
        }
        if self.config.check_well_known {
            self.check_well_known(set, &mut issues);
        }
        if self.config.check_service_robots {
            self.check_service_robots(set, &mut issues);
        }

        let fetches = self.fetcher.requests_issued() - fetches_before;
        let outcome = if issues.is_empty() {
            ValidationOutcome::Passed
        } else if issues.iter().all(ValidationIssue::is_transient) {
            // Every failure was transient: degrade, don't reject.
            ValidationOutcome::Degraded
        } else {
            ValidationOutcome::Failed
        };
        ValidationReport {
            primary: set.primary().clone(),
            outcome,
            issues,
            fetches,
        }
    }

    fn check_etld_plus_one(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        if !self.resolver.is_etld_plus_one(set.primary()) {
            issues.push(ValidationIssue::PrimarySiteNotEtldPlusOne {
                site: set.primary().clone(),
            });
        }
        for site in set.associated_sites() {
            if !self.resolver.is_etld_plus_one(site) {
                issues.push(ValidationIssue::AssociatedSiteNotEtldPlusOne { site: site.clone() });
            }
        }
        for site in set.service_sites() {
            if !self.resolver.is_etld_plus_one(site) {
                // The bot reports non-eTLD+1 service sites under "Other".
                issues.push(ValidationIssue::Other {
                    site: site.clone(),
                    detail: "Service site isn't an eTLD+1".to_string(),
                });
            }
        }
        for site in set.cctld_sites() {
            if !self.resolver.is_etld_plus_one(site) {
                issues.push(ValidationIssue::AliasSiteNotEtldPlusOne { site: site.clone() });
            }
        }
    }

    fn check_rationales(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        let mut missing: Vec<DomainName> = Vec::new();
        for site in set.associated_sites().chain(set.service_sites()) {
            if set.rationale_for(site).is_none() {
                missing.push(site.clone());
            }
        }
        // The bot emits a single "No rationale for one or more set members"
        // comment per validation run, regardless of how many members lack
        // one — mirror that by reporting the first offender only.
        if let Some(site) = missing.into_iter().next() {
            issues.push(ValidationIssue::MissingRationale { site });
        }
    }

    fn check_well_known(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        for member in set.domains() {
            let url = well_known_path(&member);
            // One session per member (keyed by its name) keeps the fault
            // schedule a pure function of the member, independent of how
            // many sets name it or in what order members are checked.
            let mut session = FetchSession::new(VALIDATOR_SESSION_SEED, member.as_str());
            // `get_success_once` folds non-success statuses into a
            // status-carrying NetError — so 5xx answers are retryable for
            // the bot (it re-checks) even though browsing clients treat
            // them as served pages — and a JSON parse failure becomes a
            // retryable `InvalidJson`, covering truncated payloads. The
            // retry loop is a no-op (one attempt) unless
            // `recheck_transient` armed the standard retry policy.
            let outcome = self.fetcher.retrying(&mut session, |fetcher, session| {
                let resp = fetcher.get_success_once(&url, session)?;
                // The served JSON is interned UTF-8, so the borrowed
                // `body_str` fast path parses without re-allocating the
                // body; the lossy copy only runs for non-UTF-8 bodies.
                resp.body_str()
                    .map(WellKnownFile::from_json_str)
                    .unwrap_or_else(|| WellKnownFile::from_json_str(&resp.body_text()))
                    .map_err(|err| NetError::InvalidJson {
                        url: url.to_string(),
                        reason: err.to_string(),
                    })
            });
            let attempts = outcome.attempts;
            match outcome.result {
                Ok(file) => {
                    if !file.matches_submission(set) {
                        issues.push(ValidationIssue::WellKnownMismatch {
                            site: member.clone(),
                        });
                    }
                }
                // Still failing retryably after the re-checks: transient,
                // degrade instead of rejecting.
                Err(err) if self.config.recheck_transient && err.is_retryable() => {
                    issues.push(ValidationIssue::WellKnownTransient {
                        site: member.clone(),
                        detail: err.to_string(),
                        attempts,
                    })
                }
                Err(err) => issues.push(ValidationIssue::WellKnownUnfetchable {
                    site: member.clone(),
                    detail: err.to_string(),
                }),
            }
        }
    }

    fn check_service_robots(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        for site in set.service_sites() {
            let url = Url::https(site, "/");
            match self.fetcher.head(&url) {
                Ok(resp) if resp.headers.contains("x-robots-tag") => {}
                Ok(_) => {
                    issues.push(ValidationIssue::ServiceSiteWithoutRobotsTag { site: site.clone() })
                }
                Err(err) => issues.push(ValidationIssue::Other {
                    site: site.clone(),
                    detail: format!("service site unreachable: {err}"),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_net::SiteHost;

    /// Register a member on the simulated web with a correct well-known file
    /// and (optionally) the service-site robots header.
    fn host_member(web: &mut SimulatedWeb, domain: &str, set: &RwsSet, robots: bool) {
        let d = DomainName::parse(domain).unwrap();
        let mut host = SiteHost::new(domain).unwrap();
        host.add_page("/", format!("<html><body>{domain}</body></html>"));
        let wk = if &d == set.primary() {
            WellKnownFile::for_primary(set)
        } else {
            WellKnownFile::for_member(set.primary())
        };
        host.add_json(rws_net::WELL_KNOWN_RWS_PATH, wk.to_json_string());
        if robots {
            host.add_header("/", "X-Robots-Tag", "noindex");
        }
        web.register(host);
    }

    fn valid_set() -> RwsSet {
        let mut set = RwsSet::new("https://bild.de").unwrap();
        set.add_associated("https://autobild.de", "Automotive sister brand")
            .unwrap();
        set.add_service("https://bildstatic.de", "Asset CDN")
            .unwrap();
        set
    }

    fn web_for(set: &RwsSet) -> SimulatedWeb {
        let mut web = SimulatedWeb::new();
        host_member(&mut web, "bild.de", set, false);
        host_member(&mut web, "autobild.de", set, false);
        host_member(&mut web, "bildstatic.de", set, true);
        web
    }

    #[test]
    fn fully_valid_set_passes() {
        let set = valid_set();
        let validator = SetValidator::new(web_for(&set));
        let report = validator.validate(&set);
        assert!(report.passed(), "unexpected issues: {:?}", report.issues);
        assert!(
            report.fetches >= 4,
            "one well-known per member plus service HEAD"
        );
    }

    #[test]
    fn missing_well_known_is_reported_per_member() {
        let set = valid_set();
        let mut web = web_for(&set);
        // Remove autobild.de's well-known by re-registering without it.
        let mut bare = SiteHost::new("autobild.de").unwrap();
        bare.add_page("/", "<html></html>");
        web.register(bare);
        let report = SetValidator::new(web).validate(&set);
        assert!(!report.passed());
        assert_eq!(
            report
                .issues
                .iter()
                .filter(|i| matches!(i, ValidationIssue::WellKnownUnfetchable { .. }))
                .count(),
            1
        );
        assert!(report
            .bot_messages()
            .contains(&"Unable to fetch .well-known JSON file"));
    }

    #[test]
    fn unreachable_host_reported_as_unfetchable() {
        let set = valid_set();
        let mut web = web_for(&set);
        web.update_host(&DomainName::parse("bildstatic.de").unwrap(), |h| {
            h.set_offline(true);
        });
        let report = SetValidator::new(web).validate(&set);
        let unfetchable: Vec<_> = report
            .issues
            .iter()
            .filter(|i| matches!(i, ValidationIssue::WellKnownUnfetchable { .. }))
            .collect();
        assert_eq!(unfetchable.len(), 1);
        assert_eq!(unfetchable[0].site().as_str(), "bildstatic.de");
    }

    #[test]
    fn non_etld_plus_one_members_flagged_by_role() {
        let mut set = RwsSet::new("https://www.primary-example.com").unwrap();
        set.add_associated("https://sub.assoc-example.com", "r")
            .unwrap();
        set.add_cctld_variants(
            "https://www.primary-example.com",
            &["https://www.primary-example.de"],
        )
        .unwrap();
        // Empty web: well-known checks will also fail, but we only assert on
        // the eTLD+1 classes here.
        let report = SetValidator::with_config(
            SimulatedWeb::new(),
            ValidatorConfig {
                check_well_known: false,
                check_service_robots: false,
                ..ValidatorConfig::default()
            },
        )
        .validate(&set);
        let messages = report.bot_messages();
        assert!(messages.contains(&"Primary site isn't an eTLD+1"));
        assert!(messages.contains(&"Associated site isn't an eTLD+1"));
        assert!(messages.contains(&"Alias site isn't an eTLD+1"));
    }

    #[test]
    fn service_site_without_robots_header_flagged() {
        let set = valid_set();
        let mut web = SimulatedWeb::new();
        host_member(&mut web, "bild.de", &set, false);
        host_member(&mut web, "autobild.de", &set, false);
        // Service site present but without the X-Robots-Tag header.
        host_member(&mut web, "bildstatic.de", &set, false);
        let report = SetValidator::new(web).validate(&set);
        assert!(report
            .bot_messages()
            .contains(&"Service site without X-Robots-Tag header"));
    }

    #[test]
    fn well_known_mismatch_flagged() {
        let set = valid_set();
        let mut web = web_for(&set);
        // autobild.de claims a different primary.
        let mut lying = SiteHost::new("autobild.de").unwrap();
        lying.add_page("/", "<html></html>");
        let other = DomainName::parse("unrelated.com").unwrap();
        lying.add_json(
            rws_net::WELL_KNOWN_RWS_PATH,
            WellKnownFile::for_member(&other).to_json_string(),
        );
        web.register(lying);
        let report = SetValidator::new(web).validate(&set);
        assert!(report
            .bot_messages()
            .contains(&"PR set does not match .well-known JSON file"));
    }

    #[test]
    fn missing_rationale_reported_once() {
        let mut set = RwsSet::new("https://a-example.com").unwrap();
        set.add_associated_without_rationale("https://b-example.com")
            .unwrap();
        set.add_associated_without_rationale("https://c-example.com")
            .unwrap();
        let report = SetValidator::with_config(
            SimulatedWeb::new(),
            ValidatorConfig {
                check_well_known: false,
                check_service_robots: false,
                check_etld_plus_one: false,
                ..ValidatorConfig::default()
            },
        )
        .validate(&set);
        assert_eq!(report.issues.len(), 1);
        assert_eq!(
            report.bot_messages(),
            vec!["No rationale for one or more set members"]
        );
    }

    /// The recheck-transient config: full checks plus degradation.
    fn recheck_config() -> ValidatorConfig {
        ValidatorConfig {
            recheck_transient: true,
            ..ValidatorConfig::default()
        }
    }

    #[test]
    fn transient_failure_degrades_instead_of_failing() {
        use rws_net::{FaultInjector, FaultPlan, FaultScale};
        let set = valid_set();
        // Every window faults: the re-checks cannot recover, but every
        // failure is transient, so the verdict is Degraded, not Failed.
        // (An all-Refuse storm is guaranteed by per_mille 1000 only in
        // kind distribution; search a seed where every member's early
        // windows are retryable faults that keep failing.)
        let plan = FaultPlan::new(
            7,
            FaultScale {
                fault_per_mille: 1000,
                burst_len: u32::MAX, // one giant window: the fault never clears
                spike_ms: 60_000,
            },
        );
        let validator = SetValidator::with_config(web_for(&set), recheck_config())
            .with_fault_injector(FaultInjector::new(plan));
        let report = validator.validate(&set);
        assert!(!report.passed());
        if report.is_degraded() {
            assert!(report.issues.iter().all(ValidationIssue::is_transient));
            assert!(report.issues.iter().any(|i| matches!(
                i,
                ValidationIssue::WellKnownTransient { attempts, .. } if *attempts > 1
            )));
        } else {
            // A RedirectStorm window can surface as a non-transient-looking
            // mismatch only if it somehow produced valid JSON — it cannot.
            // The only non-degraded outcome is a robots-check `Other` from
            // the service-site HEAD, which is session-less and unfaulted,
            // so Failed here means a real bug.
            panic!("expected Degraded, got {:?}", report.outcome);
        }
    }

    #[test]
    fn recheck_recovers_from_a_single_window_outage() {
        use rws_net::{Fault, FaultInjector, FaultPlan, FaultScale};
        let set = valid_set();
        let members: Vec<DomainName> = set.domains();
        let scale = FaultScale {
            fault_per_mille: 400,
            burst_len: 1, // one-request windows: the first retry escapes
            spike_ms: 60_000,
        };
        // Search for a plan where at least one member's first fetch is
        // refused but every member's next few ordinals are clear — a
        // transient outage the re-check rides out.
        let plan = (0..200_000u64)
            .map(|seed| FaultPlan::new(seed, scale))
            .find(|plan| {
                members
                    .iter()
                    .any(|m| plan.fault_at(m, 0) == Some(Fault::Refuse))
                    && members
                        .iter()
                        .all(|m| (1..4).all(|o| plan.fault_at(m, o).is_none()))
            })
            .expect("no recovery seed found");
        let validator = SetValidator::with_config(web_for(&set), recheck_config())
            .with_fault_injector(FaultInjector::new(plan));
        let report = validator.validate(&set);
        assert!(
            report.passed(),
            "re-check should recover: {:?}",
            report.issues
        );
        // The retry cost is visible in the fetch tally: more fetches than
        // the fault-free validation needs.
        let baseline = SetValidator::with_config(web_for(&set), recheck_config())
            .validate(&set)
            .fetches;
        assert!(report.fetches > baseline);
    }

    #[test]
    fn recheck_disabled_keeps_transient_failures_terminal() {
        use rws_net::{FaultInjector, FaultPlan, FaultScale};
        let set = valid_set();
        let plan = FaultPlan::new(
            7,
            FaultScale {
                fault_per_mille: 1000,
                burst_len: u32::MAX,
                spike_ms: 60_000,
            },
        );
        // Default config: no re-check, no Degraded — the first failure is
        // terminal and lands in the persistent Table 3 class.
        let validator =
            SetValidator::new(web_for(&set)).with_fault_injector(FaultInjector::new(plan));
        let report = validator.validate(&set);
        assert_eq!(report.outcome, ValidationOutcome::Failed);
        assert!(report.issues.iter().any(|i| matches!(
            i,
            ValidationIssue::WellKnownUnfetchable { .. } | ValidationIssue::Other { .. }
        )));
        assert!(!report.issues.iter().any(ValidationIssue::is_transient));
    }

    #[test]
    fn invalid_json_well_known_is_unfetchable() {
        let set = valid_set();
        let mut web = web_for(&set);
        let mut broken = SiteHost::new("bild.de").unwrap();
        broken.add_page("/", "<html></html>");
        broken.add_json(rws_net::WELL_KNOWN_RWS_PATH, "{not valid json");
        web.register(broken);
        let report = SetValidator::new(web).validate(&set);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::WellKnownUnfetchable { site, .. } if site.as_str() == "bild.de")));
    }
}
