//! Set-level technical validation — the automated checks behind Table 3.
//!
//! When a set is proposed on GitHub, a bot runs a series of technical checks
//! and reports failures as pull-request comments. Table 3 of the paper
//! counts the observed messages:
//!
//! | message | count |
//! |---|---|
//! | Unable to fetch .well-known JSON file | 202 |
//! | Associated site isn't an eTLD+1 | 65 |
//! | Service site without X-Robots-Tag header | 19 |
//! | PR set does not match .well-known JSON file | 12 |
//! | Alias site isn't an eTLD+1 | 10 |
//! | Primary site isn't an eTLD+1 | 9 |
//! | Other | 8 |
//! | No rationale for one or more set members | 5 |
//!
//! [`SetValidator`] reproduces those checks against the simulated web: it
//! verifies eTLD+1 status of every member, HTTPS reachability, the
//! `.well-known` file on every member, its consistency with the submission,
//! the `X-Robots-Tag` header on service sites, and rationale presence.

use crate::set::RwsSet;
use crate::well_known::WellKnownFile;
use rws_domain::{DomainName, PublicSuffixList, SiteResolver};
use rws_net::{well_known_path, FetchPolicy, Fetcher, SimulatedWeb, Url};
use serde::{Deserialize, Serialize};

/// One validation failure, tagged with the member it concerns.
///
/// The variants map one-to-one onto the GitHub bot's message classes in
/// Table 3 (plus `Other`, which the bot uses for everything else).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationIssue {
    /// The member's `/.well-known/related-website-set.json` could not be
    /// fetched (DNS failure, connection refused, non-200, or invalid JSON).
    WellKnownUnfetchable {
        /// The member whose file failed to fetch.
        site: DomainName,
        /// A human-readable description of the failure.
        detail: String,
    },
    /// An associated site is not an eTLD+1.
    AssociatedSiteNotEtldPlusOne {
        /// The offending associated site.
        site: DomainName,
    },
    /// A service site does not serve an `X-Robots-Tag` header.
    ServiceSiteWithoutRobotsTag {
        /// The offending service site.
        site: DomainName,
    },
    /// The member's well-known file does not match the submitted set.
    WellKnownMismatch {
        /// The member whose file disagrees with the submission.
        site: DomainName,
    },
    /// A ccTLD ("alias") site is not an eTLD+1.
    AliasSiteNotEtldPlusOne {
        /// The offending ccTLD variant.
        site: DomainName,
    },
    /// The primary is not an eTLD+1.
    PrimarySiteNotEtldPlusOne {
        /// The primary in question.
        site: DomainName,
    },
    /// A member is missing a rationale.
    MissingRationale {
        /// The member missing its rationale.
        site: DomainName,
    },
    /// Anything else (non-HTTPS members, unreachable pages, …), matching
    /// the bot's residual "Other" bucket.
    Other {
        /// The member concerned.
        site: DomainName,
        /// Description of the problem.
        detail: String,
    },
}

impl ValidationIssue {
    /// The exact bot-comment label used in Table 3 of the paper.
    pub fn bot_message(&self) -> &'static str {
        match self {
            ValidationIssue::WellKnownUnfetchable { .. } => "Unable to fetch .well-known JSON file",
            ValidationIssue::AssociatedSiteNotEtldPlusOne { .. } => {
                "Associated site isn't an eTLD+1"
            }
            ValidationIssue::ServiceSiteWithoutRobotsTag { .. } => {
                "Service site without X-Robots-Tag header"
            }
            ValidationIssue::WellKnownMismatch { .. } => {
                "PR set does not match .well-known JSON file"
            }
            ValidationIssue::AliasSiteNotEtldPlusOne { .. } => "Alias site isn't an eTLD+1",
            ValidationIssue::PrimarySiteNotEtldPlusOne { .. } => "Primary site isn't an eTLD+1",
            ValidationIssue::MissingRationale { .. } => "No rationale for one or more set members",
            ValidationIssue::Other { .. } => "Other",
        }
    }

    /// The site the issue concerns.
    pub fn site(&self) -> &DomainName {
        match self {
            ValidationIssue::WellKnownUnfetchable { site, .. }
            | ValidationIssue::AssociatedSiteNotEtldPlusOne { site }
            | ValidationIssue::ServiceSiteWithoutRobotsTag { site }
            | ValidationIssue::WellKnownMismatch { site }
            | ValidationIssue::AliasSiteNotEtldPlusOne { site }
            | ValidationIssue::PrimarySiteNotEtldPlusOne { site }
            | ValidationIssue::MissingRationale { site }
            | ValidationIssue::Other { site, .. } => site,
        }
    }
}

/// The overall outcome of validating a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationOutcome {
    /// Every check passed.
    Passed,
    /// At least one check failed.
    Failed,
}

/// The full validation report for one submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The set primary the submission proposed.
    pub primary: DomainName,
    /// Overall outcome.
    pub outcome: ValidationOutcome,
    /// Every issue found, in check order (the bot reports all of them, not
    /// just the first).
    pub issues: Vec<ValidationIssue>,
    /// Number of network fetches performed during validation.
    pub fetches: usize,
}

impl ValidationReport {
    /// True if validation passed.
    pub fn passed(&self) -> bool {
        self.outcome == ValidationOutcome::Passed
    }

    /// The bot-comment labels for every issue, in order.
    pub fn bot_messages(&self) -> Vec<&'static str> {
        self.issues
            .iter()
            .map(ValidationIssue::bot_message)
            .collect()
    }
}

/// Configuration for which checks run. The full set mirrors the real bot;
/// the flags exist so ablation benches can price individual checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidatorConfig {
    /// Check that every member is an eTLD+1.
    pub check_etld_plus_one: bool,
    /// Fetch and cross-check every member's well-known file.
    pub check_well_known: bool,
    /// Check `X-Robots-Tag` on service sites.
    pub check_service_robots: bool,
    /// Check that associated/service members carry rationales.
    pub check_rationales: bool,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        ValidatorConfig {
            check_etld_plus_one: true,
            check_well_known: true,
            check_service_robots: true,
            check_rationales: true,
        }
    }
}

/// The automated set validator.
pub struct SetValidator {
    resolver: SiteResolver,
    fetcher: Fetcher,
    config: ValidatorConfig,
}

impl SetValidator {
    /// Create a validator over a simulated web with the default (full)
    /// configuration and the strict fetch policy the real bot uses.
    pub fn new(web: SimulatedWeb) -> SetValidator {
        SetValidator::with_config(web, ValidatorConfig::default())
    }

    /// Create a validator with an explicit configuration.
    pub fn with_config(web: SimulatedWeb, config: ValidatorConfig) -> SetValidator {
        SetValidator::with_resolver(web, config, SiteResolver::embedded())
    }

    /// Create a validator sharing an existing memoizing [`SiteResolver`]
    /// instead of constructing its own — the governance pipeline validates
    /// hundreds of submissions naming the same hosts, and the rest of the
    /// engine asks the same eTLD+1 questions; one shared cache answers all
    /// of them.
    pub fn with_resolver(
        web: SimulatedWeb,
        config: ValidatorConfig,
        resolver: SiteResolver,
    ) -> SetValidator {
        SetValidator {
            resolver,
            fetcher: Fetcher::with_policy(web, FetchPolicy::strict()),
            config,
        }
    }

    /// Share a memoizing [`SiteResolver`] with other components (the
    /// governance pipeline validates hundreds of submissions naming the
    /// same hosts; one shared cache answers the repeats).
    pub fn set_resolver(&mut self, resolver: SiteResolver) {
        self.resolver = resolver;
    }

    /// Replace the Public Suffix List used for eTLD+1 checks.
    pub fn set_psl(&mut self, psl: PublicSuffixList) {
        self.resolver = SiteResolver::new(psl);
    }

    /// Validate one submitted set, returning the full report.
    pub fn validate(&self, set: &RwsSet) -> ValidationReport {
        let mut issues = Vec::new();
        let fetches_before = self.fetcher.requests_issued();

        if self.config.check_etld_plus_one {
            self.check_etld_plus_one(set, &mut issues);
        }
        if self.config.check_rationales {
            self.check_rationales(set, &mut issues);
        }
        if self.config.check_well_known {
            self.check_well_known(set, &mut issues);
        }
        if self.config.check_service_robots {
            self.check_service_robots(set, &mut issues);
        }

        let fetches = self.fetcher.requests_issued() - fetches_before;
        ValidationReport {
            primary: set.primary().clone(),
            outcome: if issues.is_empty() {
                ValidationOutcome::Passed
            } else {
                ValidationOutcome::Failed
            },
            issues,
            fetches,
        }
    }

    fn check_etld_plus_one(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        if !self.resolver.is_etld_plus_one(set.primary()) {
            issues.push(ValidationIssue::PrimarySiteNotEtldPlusOne {
                site: set.primary().clone(),
            });
        }
        for site in set.associated_sites() {
            if !self.resolver.is_etld_plus_one(site) {
                issues.push(ValidationIssue::AssociatedSiteNotEtldPlusOne { site: site.clone() });
            }
        }
        for site in set.service_sites() {
            if !self.resolver.is_etld_plus_one(site) {
                // The bot reports non-eTLD+1 service sites under "Other".
                issues.push(ValidationIssue::Other {
                    site: site.clone(),
                    detail: "Service site isn't an eTLD+1".to_string(),
                });
            }
        }
        for site in set.cctld_sites() {
            if !self.resolver.is_etld_plus_one(site) {
                issues.push(ValidationIssue::AliasSiteNotEtldPlusOne { site: site.clone() });
            }
        }
    }

    fn check_rationales(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        let mut missing: Vec<DomainName> = Vec::new();
        for site in set.associated_sites().chain(set.service_sites()) {
            if set.rationale_for(site).is_none() {
                missing.push(site.clone());
            }
        }
        // The bot emits a single "No rationale for one or more set members"
        // comment per validation run, regardless of how many members lack
        // one — mirror that by reporting the first offender only.
        if let Some(site) = missing.into_iter().next() {
            issues.push(ValidationIssue::MissingRationale { site });
        }
    }

    fn check_well_known(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        for member in set.domains() {
            let url = well_known_path(&member);
            // `get_success` folds non-success statuses into a
            // status-carrying NetError, so transport failures and HTTP
            // errors funnel through one arm — matching the bot's single
            // "unable to fetch" failure class while keeping the real
            // status in the detail.
            match self.fetcher.get_success(&url) {
                Err(err) => issues.push(ValidationIssue::WellKnownUnfetchable {
                    site: member.clone(),
                    detail: err.to_string(),
                }),
                // The served JSON is interned UTF-8, so the borrowed
                // `body_str` fast path parses without re-allocating the
                // body; the lossy copy only runs for non-UTF-8 bodies.
                Ok(resp) => match resp
                    .body_str()
                    .map(WellKnownFile::from_json_str)
                    .unwrap_or_else(|| WellKnownFile::from_json_str(&resp.body_text()))
                {
                    Err(err) => issues.push(ValidationIssue::WellKnownUnfetchable {
                        site: member.clone(),
                        detail: err.to_string(),
                    }),
                    Ok(file) => {
                        if !file.matches_submission(set) {
                            issues.push(ValidationIssue::WellKnownMismatch {
                                site: member.clone(),
                            });
                        }
                    }
                },
            }
        }
    }

    fn check_service_robots(&self, set: &RwsSet, issues: &mut Vec<ValidationIssue>) {
        for site in set.service_sites() {
            let url = Url::https(site, "/");
            match self.fetcher.head(&url) {
                Ok(resp) if resp.headers.contains("x-robots-tag") => {}
                Ok(_) => {
                    issues.push(ValidationIssue::ServiceSiteWithoutRobotsTag { site: site.clone() })
                }
                Err(err) => issues.push(ValidationIssue::Other {
                    site: site.clone(),
                    detail: format!("service site unreachable: {err}"),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_net::SiteHost;

    /// Register a member on the simulated web with a correct well-known file
    /// and (optionally) the service-site robots header.
    fn host_member(web: &mut SimulatedWeb, domain: &str, set: &RwsSet, robots: bool) {
        let d = DomainName::parse(domain).unwrap();
        let mut host = SiteHost::new(domain).unwrap();
        host.add_page("/", format!("<html><body>{domain}</body></html>"));
        let wk = if &d == set.primary() {
            WellKnownFile::for_primary(set)
        } else {
            WellKnownFile::for_member(set.primary())
        };
        host.add_json(rws_net::WELL_KNOWN_RWS_PATH, wk.to_json_string());
        if robots {
            host.add_header("/", "X-Robots-Tag", "noindex");
        }
        web.register(host);
    }

    fn valid_set() -> RwsSet {
        let mut set = RwsSet::new("https://bild.de").unwrap();
        set.add_associated("https://autobild.de", "Automotive sister brand")
            .unwrap();
        set.add_service("https://bildstatic.de", "Asset CDN")
            .unwrap();
        set
    }

    fn web_for(set: &RwsSet) -> SimulatedWeb {
        let mut web = SimulatedWeb::new();
        host_member(&mut web, "bild.de", set, false);
        host_member(&mut web, "autobild.de", set, false);
        host_member(&mut web, "bildstatic.de", set, true);
        web
    }

    #[test]
    fn fully_valid_set_passes() {
        let set = valid_set();
        let validator = SetValidator::new(web_for(&set));
        let report = validator.validate(&set);
        assert!(report.passed(), "unexpected issues: {:?}", report.issues);
        assert!(
            report.fetches >= 4,
            "one well-known per member plus service HEAD"
        );
    }

    #[test]
    fn missing_well_known_is_reported_per_member() {
        let set = valid_set();
        let mut web = web_for(&set);
        // Remove autobild.de's well-known by re-registering without it.
        let mut bare = SiteHost::new("autobild.de").unwrap();
        bare.add_page("/", "<html></html>");
        web.register(bare);
        let report = SetValidator::new(web).validate(&set);
        assert!(!report.passed());
        assert_eq!(
            report
                .issues
                .iter()
                .filter(|i| matches!(i, ValidationIssue::WellKnownUnfetchable { .. }))
                .count(),
            1
        );
        assert!(report
            .bot_messages()
            .contains(&"Unable to fetch .well-known JSON file"));
    }

    #[test]
    fn unreachable_host_reported_as_unfetchable() {
        let set = valid_set();
        let mut web = web_for(&set);
        web.update_host(&DomainName::parse("bildstatic.de").unwrap(), |h| {
            h.set_offline(true);
        });
        let report = SetValidator::new(web).validate(&set);
        let unfetchable: Vec<_> = report
            .issues
            .iter()
            .filter(|i| matches!(i, ValidationIssue::WellKnownUnfetchable { .. }))
            .collect();
        assert_eq!(unfetchable.len(), 1);
        assert_eq!(unfetchable[0].site().as_str(), "bildstatic.de");
    }

    #[test]
    fn non_etld_plus_one_members_flagged_by_role() {
        let mut set = RwsSet::new("https://www.primary-example.com").unwrap();
        set.add_associated("https://sub.assoc-example.com", "r")
            .unwrap();
        set.add_cctld_variants(
            "https://www.primary-example.com",
            &["https://www.primary-example.de"],
        )
        .unwrap();
        // Empty web: well-known checks will also fail, but we only assert on
        // the eTLD+1 classes here.
        let report = SetValidator::with_config(
            SimulatedWeb::new(),
            ValidatorConfig {
                check_well_known: false,
                check_service_robots: false,
                ..ValidatorConfig::default()
            },
        )
        .validate(&set);
        let messages = report.bot_messages();
        assert!(messages.contains(&"Primary site isn't an eTLD+1"));
        assert!(messages.contains(&"Associated site isn't an eTLD+1"));
        assert!(messages.contains(&"Alias site isn't an eTLD+1"));
    }

    #[test]
    fn service_site_without_robots_header_flagged() {
        let set = valid_set();
        let mut web = SimulatedWeb::new();
        host_member(&mut web, "bild.de", &set, false);
        host_member(&mut web, "autobild.de", &set, false);
        // Service site present but without the X-Robots-Tag header.
        host_member(&mut web, "bildstatic.de", &set, false);
        let report = SetValidator::new(web).validate(&set);
        assert!(report
            .bot_messages()
            .contains(&"Service site without X-Robots-Tag header"));
    }

    #[test]
    fn well_known_mismatch_flagged() {
        let set = valid_set();
        let mut web = web_for(&set);
        // autobild.de claims a different primary.
        let mut lying = SiteHost::new("autobild.de").unwrap();
        lying.add_page("/", "<html></html>");
        let other = DomainName::parse("unrelated.com").unwrap();
        lying.add_json(
            rws_net::WELL_KNOWN_RWS_PATH,
            WellKnownFile::for_member(&other).to_json_string(),
        );
        web.register(lying);
        let report = SetValidator::new(web).validate(&set);
        assert!(report
            .bot_messages()
            .contains(&"PR set does not match .well-known JSON file"));
    }

    #[test]
    fn missing_rationale_reported_once() {
        let mut set = RwsSet::new("https://a-example.com").unwrap();
        set.add_associated_without_rationale("https://b-example.com")
            .unwrap();
        set.add_associated_without_rationale("https://c-example.com")
            .unwrap();
        let report = SetValidator::with_config(
            SimulatedWeb::new(),
            ValidatorConfig {
                check_well_known: false,
                check_service_robots: false,
                check_etld_plus_one: false,
                check_rationales: true,
            },
        )
        .validate(&set);
        assert_eq!(report.issues.len(), 1);
        assert_eq!(
            report.bot_messages(),
            vec!["No rationale for one or more set members"]
        );
    }

    #[test]
    fn invalid_json_well_known_is_unfetchable() {
        let set = valid_set();
        let mut web = web_for(&set);
        let mut broken = SiteHost::new("bild.de").unwrap();
        broken.add_page("/", "<html></html>");
        broken.add_json(rws_net::WELL_KNOWN_RWS_PATH, "{not valid json");
        web.register(broken);
        let report = SetValidator::new(web).validate(&set);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::WellKnownUnfetchable { site, .. } if site.as_str() == "bild.de")));
    }
}
