//! Errors raised while constructing or parsing Related Website Sets.

use std::fmt;

/// Errors from building an [`RwsSet`](crate::RwsSet) or
/// [`RwsList`](crate::RwsList), or from parsing the canonical JSON format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetError {
    /// A member string was not an acceptable `https://` origin.
    InvalidOrigin {
        /// The offending input.
        input: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The same domain appears twice within one set.
    DuplicateMember {
        /// The duplicated domain.
        domain: String,
    },
    /// The same domain appears in more than one set of a list.
    MemberInMultipleSets {
        /// The conflicting domain.
        domain: String,
    },
    /// A ccTLD variant was declared for a domain that is not in the set.
    UnknownCctldBase {
        /// The base domain the variants were attached to.
        base: String,
    },
    /// The JSON document did not have the expected structure.
    MalformedJson {
        /// Parser/structural error description.
        reason: String,
    },
}

impl fmt::Display for SetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetError::InvalidOrigin { input, reason } => {
                write!(f, "'{input}' is not a valid https origin: {reason}")
            }
            SetError::DuplicateMember { domain } => {
                write!(f, "domain '{domain}' appears more than once in the set")
            }
            SetError::MemberInMultipleSets { domain } => {
                write!(f, "domain '{domain}' appears in more than one set")
            }
            SetError::UnknownCctldBase { base } => {
                write!(
                    f,
                    "ccTLD variants declared for '{base}', which is not a set member"
                )
            }
            SetError::MalformedJson { reason } => {
                write!(f, "malformed Related Website Sets JSON: {reason}")
            }
        }
    }
}

impl std::error::Error for SetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SetError::DuplicateMember {
            domain: "example.com".into(),
        };
        assert!(e.to_string().contains("example.com"));
        let e = SetError::MalformedJson {
            reason: "missing 'sets'".into(),
        };
        assert!(e.to_string().contains("missing"));
    }
}
