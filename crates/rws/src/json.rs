//! (De)serialisation of the canonical `related_website_sets.JSON` format.
//!
//! The canonical file published in the GoogleChrome/related-website-sets
//! repository has the shape:
//!
//! ```json
//! {
//!   "sets": [
//!     {
//!       "contact": "owner@example.com",
//!       "primary": "https://example.com",
//!       "associatedSites": ["https://example-brand.com"],
//!       "serviceSites": ["https://example-cdn.com"],
//!       "rationaleBySite": {
//!         "https://example-brand.com": "Shared branding",
//!         "https://example-cdn.com": "Asset host"
//!       },
//!       "ccTLDs": {
//!         "https://example.com": ["https://example.de"]
//!       }
//!     }
//!   ]
//! }
//! ```
//!
//! The same per-set object (without the top-level `sets` wrapper) is what
//! every member must serve at `/.well-known/related-website-set.json`.

use crate::error::SetError;
use crate::list::RwsList;
use crate::set::{format_member, parse_member, RwsSet};
use serde_json::{json, Map, Value};

/// Serialise one set to its canonical JSON object.
pub fn set_to_json(set: &RwsSet) -> Value {
    let mut obj = Map::new();
    if let Some(contact) = set.contact() {
        obj.insert("contact".to_string(), json!(contact));
    }
    obj.insert("primary".to_string(), json!(format_member(set.primary())));
    let associated: Vec<String> = set.associated_sites().map(format_member).collect();
    if !associated.is_empty() {
        obj.insert("associatedSites".to_string(), json!(associated));
    }
    let service: Vec<String> = set.service_sites().map(format_member).collect();
    if !service.is_empty() {
        obj.insert("serviceSites".to_string(), json!(service));
    }
    let mut rationales = Map::new();
    for domain in set.associated_sites().chain(set.service_sites()) {
        if let Some(r) = set.rationale_for(domain) {
            rationales.insert(format_member(domain), json!(r));
        }
    }
    if !rationales.is_empty() {
        obj.insert("rationaleBySite".to_string(), Value::Object(rationales));
    }
    if !set.cctld_map().is_empty() {
        let mut cctlds = Map::new();
        for (base, variants) in set.cctld_map() {
            let vs: Vec<String> = variants.iter().map(format_member).collect();
            cctlds.insert(format_member(base), json!(vs));
        }
        obj.insert("ccTLDs".to_string(), Value::Object(cctlds));
    }
    Value::Object(obj)
}

/// Parse one canonical set object.
pub fn set_from_json(value: &Value) -> Result<RwsSet, SetError> {
    let obj = value.as_object().ok_or_else(|| SetError::MalformedJson {
        reason: "set entry is not a JSON object".to_string(),
    })?;
    let primary =
        obj.get("primary")
            .and_then(Value::as_str)
            .ok_or_else(|| SetError::MalformedJson {
                reason: "set entry is missing the 'primary' string".to_string(),
            })?;
    let mut set = RwsSet::new(primary)?;
    if let Some(contact) = obj.get("contact").and_then(Value::as_str) {
        set.set_contact(contact);
    }

    let rationales = obj.get("rationaleBySite").and_then(Value::as_object);
    let rationale_for = |origin: &str| -> Option<String> {
        rationales
            .and_then(|m| m.get(origin))
            .and_then(Value::as_str)
            .map(str::to_string)
    };

    if let Some(assoc) = obj.get("associatedSites") {
        let arr = assoc.as_array().ok_or_else(|| SetError::MalformedJson {
            reason: "'associatedSites' is not an array".to_string(),
        })?;
        for entry in arr {
            let origin = entry.as_str().ok_or_else(|| SetError::MalformedJson {
                reason: "'associatedSites' contains a non-string entry".to_string(),
            })?;
            match rationale_for(origin) {
                Some(r) => set.add_associated(origin, &r)?,
                None => set.add_associated_without_rationale(origin)?,
            };
        }
    }
    if let Some(service) = obj.get("serviceSites") {
        let arr = service.as_array().ok_or_else(|| SetError::MalformedJson {
            reason: "'serviceSites' is not an array".to_string(),
        })?;
        for entry in arr {
            let origin = entry.as_str().ok_or_else(|| SetError::MalformedJson {
                reason: "'serviceSites' contains a non-string entry".to_string(),
            })?;
            match rationale_for(origin) {
                Some(r) => set.add_service(origin, &r)?,
                None => set.add_service_without_rationale(origin)?,
            };
        }
    }
    if let Some(cctlds) = obj.get("ccTLDs") {
        let map = cctlds.as_object().ok_or_else(|| SetError::MalformedJson {
            reason: "'ccTLDs' is not an object".to_string(),
        })?;
        for (base, variants) in map {
            let arr = variants.as_array().ok_or_else(|| SetError::MalformedJson {
                reason: format!("ccTLD variants for '{base}' are not an array"),
            })?;
            let mut list: Vec<&str> = Vec::new();
            for v in arr {
                list.push(v.as_str().ok_or_else(|| SetError::MalformedJson {
                    reason: format!("ccTLD variant for '{base}' is not a string"),
                })?);
            }
            set.add_cctld_variants(base, &list)?;
        }
    }
    // Validate the primary parses as a member (round-trip sanity).
    let _ = parse_member(primary)?;
    Ok(set)
}

/// Serialise a full list to the canonical JSON document.
pub fn list_to_json(list: &RwsList) -> Value {
    json!({
        "sets": list.sets().map(set_to_json).collect::<Vec<Value>>(),
    })
}

/// Parse a full canonical JSON document into a list.
pub fn list_from_json(value: &Value) -> Result<RwsList, SetError> {
    let sets_value = value.get("sets").ok_or_else(|| SetError::MalformedJson {
        reason: "top-level 'sets' array is missing".to_string(),
    })?;
    let arr = sets_value
        .as_array()
        .ok_or_else(|| SetError::MalformedJson {
            reason: "'sets' is not an array".to_string(),
        })?;
    let mut sets = Vec::with_capacity(arr.len());
    for entry in arr {
        sets.push(set_from_json(entry)?);
    }
    RwsList::from_sets(sets)
}

/// Parse a list from JSON text.
pub fn list_from_json_str(text: &str) -> Result<RwsList, SetError> {
    let value: Value = serde_json::from_str(text).map_err(|e| SetError::MalformedJson {
        reason: e.to_string(),
    })?;
    list_from_json(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rws_domain::DomainName;

    const CANONICAL_EXAMPLE: &str = r#"{
      "sets": [
        {
          "contact": "webmaster@bild.de",
          "primary": "https://bild.de",
          "associatedSites": ["https://autobild.de", "https://computerbild.de"],
          "serviceSites": ["https://bildstatic.de"],
          "rationaleBySite": {
            "https://autobild.de": "Automotive news brand of the same publisher",
            "https://computerbild.de": "IT news brand of the same publisher",
            "https://bildstatic.de": "Static assets for all BILD properties"
          },
          "ccTLDs": {
            "https://bild.de": ["https://bild.at"]
          }
        },
        {
          "primary": "https://poalim.xyz",
          "associatedSites": ["https://poalim.site"]
        }
      ]
    }"#;

    fn dn(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn parse_canonical_example() {
        let list = list_from_json_str(CANONICAL_EXAMPLE).unwrap();
        assert_eq!(list.set_count(), 2);
        assert_eq!(list.domain_count(), 7);
        let bild = list.set_with_primary(&dn("bild.de")).unwrap();
        assert_eq!(bild.associated_count(), 2);
        assert_eq!(bild.service_count(), 1);
        assert_eq!(bild.cctld_count(), 1);
        assert_eq!(bild.contact(), Some("webmaster@bild.de"));
        assert_eq!(
            bild.rationale_for(&dn("autobild.de")),
            Some("Automotive news brand of the same publisher")
        );
        // The minimal second set parses with no rationale.
        let poalim = list.set_with_primary(&dn("poalim.xyz")).unwrap();
        assert_eq!(poalim.rationale_for(&dn("poalim.site")), None);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let list = list_from_json_str(CANONICAL_EXAMPLE).unwrap();
        let json = list_to_json(&list);
        let reparsed = list_from_json(&json).unwrap();
        assert_eq!(reparsed.set_count(), list.set_count());
        assert_eq!(reparsed.domain_count(), list.domain_count());
        assert!(reparsed.are_related(&dn("bild.de"), &dn("autobild.de")));
        assert_eq!(
            reparsed
                .set_with_primary(&dn("bild.de"))
                .unwrap()
                .rationale_for(&dn("bildstatic.de")),
            Some("Static assets for all BILD properties")
        );
        // Serialising again yields the identical JSON value (canonical form).
        assert_eq!(list_to_json(&reparsed), json);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(list_from_json_str("not json").is_err());
        assert!(list_from_json_str("{}").is_err());
        assert!(list_from_json_str(r#"{"sets": 4}"#).is_err());
        assert!(list_from_json_str(r#"{"sets": [{"associatedSites": []}]}"#).is_err());
        assert!(list_from_json_str(
            r#"{"sets": [{"primary": "https://a.com", "associatedSites": [5]}]}"#
        )
        .is_err());
        assert!(
            list_from_json_str(r#"{"sets": [{"primary": "https://a.com", "ccTLDs": {"https://other.com": ["https://other.de"]}}]}"#)
                .is_err(),
            "ccTLD base not in set must be rejected"
        );
    }

    #[test]
    fn http_members_rejected() {
        let doc = r#"{"sets": [{"primary": "http://insecure.com"}]}"#;
        let err = list_from_json_str(doc).unwrap_err();
        assert!(matches!(err, SetError::InvalidOrigin { .. }));
    }

    #[test]
    fn empty_sets_array_is_an_empty_list() {
        let list = list_from_json_str(r#"{"sets": []}"#).unwrap();
        assert_eq!(list.set_count(), 0);
    }

    #[test]
    fn set_to_json_omits_empty_sections() {
        let set = RwsSet::new("https://solo.com").unwrap();
        let json = set_to_json(&set);
        assert!(json.get("associatedSites").is_none());
        assert!(json.get("serviceSites").is_none());
        assert!(json.get("rationaleBySite").is_none());
        assert!(json.get("ccTLDs").is_none());
        assert_eq!(json["primary"], "https://solo.com");
    }
}
