//! Property-based tests for the domain substrate, including the
//! optimized-kernel ≡ naive-oracle equivalences this workspace's perf work
//! rests on:
//!
//! * `levenshtein` (ASCII fast path + prefix/suffix stripping + scratch
//!   reuse) against the textbook DP, on random Unicode strings;
//! * `levenshtein_bounded` against thresholding the exact distance;
//! * the PSL label-trie matcher against the linear rule scan, on random
//!   domains and on hosts built from every embedded rule;
//! * the memoizing `SiteResolver` against direct PSL lookups.

use proptest::prelude::*;
use rws_domain::levenshtein::levenshtein_naive;
use rws_domain::{
    levenshtein, levenshtein_bounded, normalized_levenshtein, DomainName, PublicSuffixList,
    SiteResolver, SldComparison,
};

/// Strategy producing syntactically valid domain labels.
fn label_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| s)
}

/// Strategy producing syntactically valid multi-label domain names.
fn domain_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(label_strategy(), 2..5).prop_map(|labels| labels.join("."))
}

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_metric_axioms(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Levenshtein distance is bounded by the length of the longer string
    /// and at least the difference in lengths.
    #[test]
    fn levenshtein_bounds(a in "[a-z]{0,15}", b in "[a-z]{0,15}") {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
        let n = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    /// Valid-looking domain strings parse, normalise idempotently, and
    /// round-trip through Display.
    #[test]
    fn domain_parse_round_trip(name in domain_strategy()) {
        let d = DomainName::parse(&name).unwrap();
        prop_assert_eq!(d.as_str(), name.as_str());
        let reparsed = DomainName::parse(&d.to_string()).unwrap();
        prop_assert_eq!(reparsed, d);
    }

    /// Uppercasing the input never changes the parsed result.
    #[test]
    fn domain_parse_case_insensitive(name in domain_strategy()) {
        let lower = DomainName::parse(&name).unwrap();
        let upper = DomainName::parse(&name.to_ascii_uppercase()).unwrap();
        prop_assert_eq!(lower, upper);
    }

    /// The registrable domain is idempotent: site(site(x)) == site(x), and
    /// every host is a subdomain of its own site.
    #[test]
    fn registrable_domain_idempotent(name in domain_strategy()) {
        let psl = PublicSuffixList::embedded();
        let host = DomainName::parse(&name).unwrap();
        if let Ok(site) = psl.registrable_domain(&host) {
            prop_assert!(host.is_subdomain_of(&site));
            let again = psl.registrable_domain(&site).unwrap();
            prop_assert_eq!(again, site.clone());
            prop_assert!(psl.is_etld_plus_one(&site));
            // The public suffix of the host is a strict suffix of the site.
            let suffix = psl.public_suffix(&host).unwrap();
            prop_assert!(site.is_subdomain_of(&suffix));
        }
    }

    /// same_site is reflexive for registrable hosts and symmetric always.
    #[test]
    fn same_site_properties(a in domain_strategy(), b in domain_strategy()) {
        let psl = PublicSuffixList::embedded();
        let da = DomainName::parse(&a).unwrap();
        let db = DomainName::parse(&b).unwrap();
        prop_assert_eq!(psl.same_site(&da, &db), psl.same_site(&db, &da));
        if psl.registrable_domain(&da).is_ok() {
            prop_assert!(psl.same_site(&da, &da));
        }
    }

    /// The optimized levenshtein equals the textbook DP on random Unicode
    /// strings (mixed ASCII, accented Latin and CJK, so both the byte fast
    /// path and the char path are exercised).
    #[test]
    fn levenshtein_fast_path_equals_naive(
        a in "[a-zé-ö日-晚]{0,14}",
        b in "[a-zé-ö日-晚]{0,14}",
    ) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein_naive(&a, &b));
    }

    /// The bounded variant answers exactly `distance <= k ? Some(d) : None`.
    #[test]
    fn levenshtein_bounded_equals_thresholded_naive(
        a in "[a-zé-ö]{0,14}",
        b in "[a-zé-ö]{0,14}",
        k in 0usize..12,
    ) {
        let exact = levenshtein_naive(&a, &b);
        let bounded = levenshtein_bounded(&a, &b, k);
        if exact <= k {
            prop_assert_eq!(bounded, Some(exact));
        } else {
            prop_assert_eq!(bounded, None);
        }
    }

    /// The SLD sweep's bounded fast path agrees with the full comparison.
    #[test]
    fn predicts_related_fast_path_agrees(a in domain_strategy(), b in domain_strategy(), k in 0usize..10) {
        let psl = PublicSuffixList::embedded();
        let da = DomainName::parse(&a).unwrap();
        let db = DomainName::parse(&b).unwrap();
        if let Some(cmp) = SldComparison::compute(&da, &db, &psl) {
            let fast = SldComparison::predicts_related_slds(&cmp.member_sld, &cmp.primary_sld, k);
            prop_assert_eq!(fast, cmp.predicts_related(k));
        }
    }

    /// The PSL trie walk is exactly the linear rule scan, on random hosts
    /// (including hosts under wildcard/exception TLDs).
    #[test]
    fn trie_matches_linear_scan_on_random_hosts(
        labels in proptest::collection::vec("[a-z][a-z0-9]{0,6}", 1..5),
        tld in "(com|co|uk|ck|jp|io|example|kawasaki)",
    ) {
        let psl = PublicSuffixList::embedded();
        let mut parts = labels;
        parts.push(tld);
        let host = DomainName::parse(&parts.join(".")).unwrap();
        let host_labels = host.labels();
        prop_assert_eq!(
            psl.suffix_label_count_trie(&host_labels),
            psl.suffix_label_count_naive(&host_labels),
            "trie and linear scan disagree on {}", host
        );
    }

    /// The memoized resolver always answers like the PSL it wraps, hot or
    /// cold.
    #[test]
    fn resolver_transparent_caching(names in proptest::collection::vec("[a-z][a-z0-9]{0,5}(\\.(com|co\\.uk|ck|github\\.io|example)){1,2}", 1..20)) {
        let psl = PublicSuffixList::embedded();
        let resolver = SiteResolver::new(PublicSuffixList::embedded());
        // Query twice: first cold, then from cache.
        for _ in 0..2 {
            for name in &names {
                let host = DomainName::parse(name).unwrap();
                prop_assert_eq!(
                    resolver.registrable_domain(&host),
                    psl.registrable_domain(&host)
                );
            }
        }
        let stats = resolver.stats();
        prop_assert!(stats.hits >= names.len() as u64, "repeats must be cache hits");
    }
}

/// Every embedded rule, turned into concrete test hosts: the rule itself,
/// the rule with one extra label, and with two extra labels. The trie and
/// the linear scan must agree on all of them.
#[test]
fn trie_matches_linear_scan_on_every_embedded_rule() {
    let psl = PublicSuffixList::embedded();
    let mut checked = 0usize;
    for rule in psl.rules() {
        let base = rule.labels.join(".");
        for host in [
            base.clone(),
            format!("alpha.{base}"),
            format!("beta.alpha.{base}"),
        ] {
            let Ok(host) = DomainName::parse(&host) else {
                continue;
            };
            let labels = host.labels();
            assert_eq!(
                psl.suffix_label_count_trie(&labels),
                psl.suffix_label_count_naive(&labels),
                "trie and linear scan disagree on {host}"
            );
            assert_eq!(
                psl.registrable_domain(&host).is_ok(),
                psl.suffix_label_count_naive(&labels) < labels.len() && labels.len() >= 2,
                "registrable_domain consistency on {host}"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 300,
        "expected to exercise every embedded rule, got {checked}"
    );
}
