//! Property-based tests for the domain substrate.

use proptest::prelude::*;
use rws_domain::{levenshtein, normalized_levenshtein, DomainName, PublicSuffixList};

/// Strategy producing syntactically valid domain labels.
fn label_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| s)
}

/// Strategy producing syntactically valid multi-label domain names.
fn domain_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(label_strategy(), 2..5).prop_map(|labels| labels.join("."))
}

proptest! {
    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_metric_axioms(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// Levenshtein distance is bounded by the length of the longer string
    /// and at least the difference in lengths.
    #[test]
    fn levenshtein_bounds(a in "[a-z]{0,15}", b in "[a-z]{0,15}") {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
        let n = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&n));
    }

    /// Valid-looking domain strings parse, normalise idempotently, and
    /// round-trip through Display.
    #[test]
    fn domain_parse_round_trip(name in domain_strategy()) {
        let d = DomainName::parse(&name).unwrap();
        prop_assert_eq!(d.as_str(), name.as_str());
        let reparsed = DomainName::parse(&d.to_string()).unwrap();
        prop_assert_eq!(reparsed, d);
    }

    /// Uppercasing the input never changes the parsed result.
    #[test]
    fn domain_parse_case_insensitive(name in domain_strategy()) {
        let lower = DomainName::parse(&name).unwrap();
        let upper = DomainName::parse(&name.to_ascii_uppercase()).unwrap();
        prop_assert_eq!(lower, upper);
    }

    /// The registrable domain is idempotent: site(site(x)) == site(x), and
    /// every host is a subdomain of its own site.
    #[test]
    fn registrable_domain_idempotent(name in domain_strategy()) {
        let psl = PublicSuffixList::embedded();
        let host = DomainName::parse(&name).unwrap();
        if let Ok(site) = psl.registrable_domain(&host) {
            prop_assert!(host.is_subdomain_of(&site));
            let again = psl.registrable_domain(&site).unwrap();
            prop_assert_eq!(again, site.clone());
            prop_assert!(psl.is_etld_plus_one(&site));
            // The public suffix of the host is a strict suffix of the site.
            let suffix = psl.public_suffix(&host).unwrap();
            prop_assert!(site.is_subdomain_of(&suffix));
        }
    }

    /// same_site is reflexive for registrable hosts and symmetric always.
    #[test]
    fn same_site_properties(a in domain_strategy(), b in domain_strategy()) {
        let psl = PublicSuffixList::embedded();
        let da = DomainName::parse(&a).unwrap();
        let db = DomainName::parse(&b).unwrap();
        prop_assert_eq!(psl.same_site(&da, &db), psl.same_site(&db, &da));
        if psl.registrable_domain(&da).is_ok() {
            prop_assert!(psl.same_site(&da, &da));
        }
    }
}
