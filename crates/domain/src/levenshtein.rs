//! Levenshtein edit distance.
//!
//! Figure 3 of the paper plots the CDF of the Levenshtein distance between
//! each service/associated site's second-level domain (SLD) and its set
//! primary's SLD, finding a median distance of 7 for associated sites and
//! concluding that SLD similarity is not a reliable relatedness signal.

/// Classic Levenshtein (insert/delete/substitute, all cost 1) edit distance
/// between two strings, computed over Unicode scalar values.
///
/// Uses the two-row dynamic programming formulation: O(|a|·|b|) time,
/// O(min(|a|,|b|)) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Ensure the inner dimension is the shorter string to minimise memory.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let substitution_cost = if lc == sc { 0 } else { 1 };
            curr[j + 1] = (prev[j + 1] + 1) // deletion
                .min(curr[j] + 1) // insertion
                .min(prev[j] + substitution_cost); // substitution
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein distance normalised by the length of the longer string,
/// giving a dissimilarity in `[0, 1]` (0 = identical). Two empty strings
/// have distance 0.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(levenshtein("kitten", "kitten"), 0);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("saturday", "sunday"), 3);
    }

    #[test]
    fn distance_to_empty_is_length() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abcd", ""), 4);
    }

    #[test]
    fn paper_examples_from_figure_3() {
        // autobild ↔ bild share the "bild" stem: distance 4 (insert "auto").
        assert_eq!(levenshtein("autobild", "bild"), 4);
        // Entirely distinct SLDs are far apart, as the paper notes for
        // nourishingpursuits ↔ cafemedia.
        assert!(levenshtein("nourishingpursuits", "cafemedia") >= 13);
        // Identical SLDs across gTLDs (poalim.xyz vs poalim.site) are 0.
        assert_eq!(levenshtein("poalim", "poalim"), 0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein("abcde", "xbcdz"), levenshtein("xbcdz", "abcde"));
    }

    #[test]
    fn unicode_is_handled_per_scalar() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn normalized_range_and_extremes() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        let v = normalized_levenshtein("kitten", "sitting");
        assert!((v - 3.0 / 7.0).abs() < 1e-12);
    }
}
