//! Levenshtein edit distance.
//!
//! Figure 3 of the paper plots the CDF of the Levenshtein distance between
//! each service/associated site's second-level domain (SLD) and its set
//! primary's SLD, finding a median distance of 7 for associated sites and
//! concluding that SLD similarity is not a reliable relatedness signal.
//!
//! The distance here is the hot primitive of that sweep (and of the
//! SLD-classifier ablation), so it is engineered for the shape of the real
//! inputs — short, almost always ASCII domain labels:
//!
//! * **ASCII fast path** — ASCII inputs run the DP directly over bytes,
//!   skipping `char` decoding entirely;
//! * **prefix/suffix stripping** — the shared head and tail of the two
//!   strings (`autobild` / `bild` share `bild`) never enter the DP;
//! * **scratch reuse** — the two DP rows and the non-ASCII decode buffers
//!   live in thread-local scratch, so steady-state calls allocate nothing;
//! * **[`levenshtein_bounded`]** — a banded O(k·n) variant that abandons
//!   the computation as soon as the distance provably exceeds a threshold,
//!   for callers that only need "within k?".
//!
//! The textbook two-row DP survives as [`levenshtein_naive`], the oracle
//! the property tests compare every fast path against.

use std::cell::RefCell;

/// Reusable per-thread DP rows and decode buffers.
#[derive(Default)]
struct Scratch {
    prev: Vec<usize>,
    curr: Vec<usize>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Drop the common prefix and suffix of two slices — they contribute
/// nothing to the edit distance.
fn strip_common<'s, T: PartialEq>(mut a: &'s [T], mut b: &'s [T]) -> (&'s [T], &'s [T]) {
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    a = &a[prefix..];
    b = &b[prefix..];
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// The two-row DP over already-stripped slices, reusing the given rows.
fn dp<T: PartialEq>(a: &[T], b: &[T], prev: &mut Vec<usize>, curr: &mut Vec<usize>) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    prev.clear();
    prev.extend(0..=short.len());
    curr.clear();
    curr.resize(short.len() + 1, 0);
    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let substitution_cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j + 1] + 1) // deletion
                .min(curr[j] + 1) // insertion
                .min(prev[j] + substitution_cost); // substitution
        }
        std::mem::swap(prev, curr);
    }
    prev[short.len()]
}

/// Banded two-row DP: only cells within `k` of the diagonal are computed,
/// and the scan aborts once a whole row exceeds `k`. Returns `None` when
/// the distance is provably greater than `k`.
fn dp_bounded<T: PartialEq>(
    a: &[T],
    b: &[T],
    k: usize,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> Option<usize> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() - short.len() > k {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }
    let m = short.len();
    let inf = k + 1;
    prev.clear();
    prev.extend((0..=m).map(|j| if j <= k { j } else { inf }));
    curr.clear();
    curr.resize(m + 1, inf);
    for (i, lc) in long.iter().enumerate() {
        let row = i + 1;
        let lo = row.saturating_sub(k).max(1);
        let hi = (row + k).min(m);
        if lo > m {
            return None;
        }
        curr[0] = if row <= k { row } else { inf };
        if lo > 1 {
            curr[lo - 1] = inf;
        }
        let mut row_min = curr[0];
        for j in lo..=hi {
            let sc = &short[j - 1];
            let substitution_cost = usize::from(lc != sc);
            let v = (prev[j] + 1)
                .min(curr[j - 1] + 1)
                .min(prev[j - 1] + substitution_cost)
                .min(inf);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        if hi < m {
            curr[hi + 1] = inf;
        }
        if row_min >= inf {
            return None;
        }
        std::mem::swap(prev, curr);
    }
    let d = prev[m];
    (d <= k).then_some(d)
}

/// Classic Levenshtein (insert/delete/substitute, all cost 1) edit distance
/// between two strings, computed over Unicode scalar values.
///
/// O(|a|·|b|) time after common prefix/suffix stripping, zero allocations
/// in steady state (thread-local scratch), and a byte-level fast path for
/// ASCII inputs.
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        if a.is_ascii() && b.is_ascii() {
            let (sa, sb) = strip_common(a.as_bytes(), b.as_bytes());
            dp(sa, sb, &mut scratch.prev, &mut scratch.curr)
        } else {
            scratch.a_chars.clear();
            scratch.a_chars.extend(a.chars());
            scratch.b_chars.clear();
            scratch.b_chars.extend(b.chars());
            let (sa, sb) = strip_common(&scratch.a_chars, &scratch.b_chars);
            dp(sa, sb, &mut scratch.prev, &mut scratch.curr)
        }
    })
}

/// Levenshtein distance if it is at most `k`, `None` otherwise.
///
/// Runs the banded O(k·min(|a|,|b|)) DP with early abandonment: a length
/// difference beyond `k` answers immediately, and the scan stops at the
/// first row whose minimum exceeds `k`. Exactly equivalent to
/// `(levenshtein(a, b) <= k).then(|| levenshtein(a, b))`.
pub fn levenshtein_bounded(a: &str, b: &str, k: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    if a.len().abs_diff(b.len()) > 4 * (k + 1) {
        // Cheap byte-length screen: a scalar is 1–4 bytes, so a byte-length
        // gap over 4k guarantees a scalar-length gap over k.
        return None;
    }
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        if a.is_ascii() && b.is_ascii() {
            let (sa, sb) = strip_common(a.as_bytes(), b.as_bytes());
            dp_bounded(sa, sb, k, &mut scratch.prev, &mut scratch.curr)
        } else {
            scratch.a_chars.clear();
            scratch.a_chars.extend(a.chars());
            scratch.b_chars.clear();
            scratch.b_chars.extend(b.chars());
            let (sa, sb) = strip_common(&scratch.a_chars, &scratch.b_chars);
            dp_bounded(sa, sb, k, &mut scratch.prev, &mut scratch.curr)
        }
    })
}

/// The textbook two-row DP, kept verbatim as the reference oracle for the
/// fast paths above. Allocates per call; do not use on hot paths.
#[doc(hidden)]
pub fn levenshtein_naive(a: &str, b: &str) -> usize {
    let a_chars: Vec<char> = a.chars().collect();
    let b_chars: Vec<char> = b.chars().collect();
    // Ensure the inner dimension is the shorter string to minimise memory.
    let (short, long) = if a_chars.len() <= b_chars.len() {
        (&a_chars, &b_chars)
    } else {
        (&b_chars, &a_chars)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let substitution_cost = if lc == sc { 0 } else { 1 };
            curr[j + 1] = (prev[j + 1] + 1) // deletion
                .min(curr[j] + 1) // insertion
                .min(prev[j] + substitution_cost); // substitution
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein distance normalised by the length of the longer string,
/// giving a dissimilarity in `[0, 1]` (0 = identical). Two empty strings
/// have distance 0.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = if a.is_ascii() && b.is_ascii() {
        a.len().max(b.len())
    } else {
        a.chars().count().max(b.chars().count())
    };
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(levenshtein("kitten", "kitten"), 0);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("saturday", "sunday"), 3);
    }

    #[test]
    fn distance_to_empty_is_length() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abcd", ""), 4);
    }

    #[test]
    fn paper_examples_from_figure_3() {
        // autobild ↔ bild share the "bild" stem: distance 4 (insert "auto").
        assert_eq!(levenshtein("autobild", "bild"), 4);
        // Entirely distinct SLDs are far apart, as the paper notes for
        // nourishingpursuits ↔ cafemedia.
        assert!(levenshtein("nourishingpursuits", "cafemedia") >= 13);
        // Identical SLDs across gTLDs (poalim.xyz vs poalim.site) are 0.
        assert_eq!(levenshtein("poalim", "poalim"), 0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein("abcde", "xbcdz"), levenshtein("xbcdz", "abcde"));
    }

    #[test]
    fn unicode_is_handled_per_scalar() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
        assert_eq!(levenshtein("ööö", "öö"), 1);
    }

    #[test]
    fn normalized_range_and_extremes() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        let v = normalized_levenshtein("kitten", "sitting");
        assert!((v - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_naive_on_fixed_cases() {
        let words = [
            "",
            "a",
            "ab",
            "abc",
            "bild",
            "autobild",
            "poalim",
            "kitten",
            "sitting",
            "nourishingpursuits",
            "cafemedia",
            "exomple",
            "example",
            "café",
            "caffé",
            "日本語",
        ];
        for a in words {
            for b in words {
                assert_eq!(
                    levenshtein(a, b),
                    levenshtein_naive(a, b),
                    "mismatch on ({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn bounded_matches_exact_within_threshold() {
        let words = [
            "", "a", "bild", "autobild", "kitten", "sitting", "example", "exomple",
        ];
        for a in words {
            for b in words {
                let exact = levenshtein_naive(a, b);
                for k in 0..10 {
                    let bounded = levenshtein_bounded(a, b, k);
                    if exact <= k {
                        assert_eq!(bounded, Some(exact), "({a:?}, {b:?}, k={k})");
                    } else {
                        assert_eq!(bounded, None, "({a:?}, {b:?}, k={k})");
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_early_exit_on_length_gap() {
        assert_eq!(levenshtein_bounded("ab", "abcdefghij", 3), None);
        assert_eq!(levenshtein_bounded(&"x".repeat(400), "y", 5), None);
        // Unicode length gap: 3 scalars vs 1, k = 1.
        assert_eq!(levenshtein_bounded("日本語", "日", 1), None);
        assert_eq!(levenshtein_bounded("日本語", "日", 2), Some(2));
    }

    #[test]
    fn bounded_zero_is_equality() {
        assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
        assert_eq!(levenshtein_bounded("same", "sane", 0), None);
    }
}
