//! Domain-name substrate for the Related Website Sets reproduction.
//!
//! The Related Website Sets (RWS) proposal is defined entirely in terms of
//! *sites* — "effective top level domain, plus one" (eTLD+1) — and the
//! paper's analyses repeatedly need to:
//!
//! * decide whether a string is a registrable eTLD+1 (the RWS validation bot
//!   rejects submissions whose members are not; Table 3),
//! * compute the site (eTLD+1) for an arbitrary host name, which is the unit
//!   the browser's storage partitioning operates on (Section 2),
//! * extract the second-level domain (SLD) of a site and measure the
//!   Levenshtein distance between the SLDs of set members (Figure 3), and
//! * detect ccTLD variants of a domain (the "ccTLD sites" subset).
//!
//! This crate implements all of that from scratch: a validated
//! [`DomainName`] type, a [`PublicSuffixList`] with full rule semantics
//! (normal rules, wildcards and exceptions) plus an embedded snapshot of the
//! suffixes relevant to the study, eTLD+1 computation, and the string
//! metrics used in the paper.
//!
//! ```
//! use rws_domain::{DomainName, PublicSuffixList};
//!
//! let psl = PublicSuffixList::embedded();
//! let host = DomainName::parse("shop.example.co.uk").unwrap();
//! let site = psl.registrable_domain(&host).unwrap();
//! assert_eq!(site.to_string(), "example.co.uk");
//! assert_eq!(psl.public_suffix(&host).unwrap().to_string(), "co.uk");
//! assert_eq!(site.second_level_label(&psl).unwrap(), "example");
//! ```

pub mod error;
pub mod levenshtein;
pub mod name;
pub mod psl;
pub mod resolver;
pub mod similarity;

pub use error::DomainError;
pub use levenshtein::{levenshtein, levenshtein_bounded, normalized_levenshtein};
pub use name::DomainName;
pub use psl::{PublicSuffixList, Rule, RuleKind};
pub use resolver::{ResolverStats, SiteResolver};
pub use similarity::{shared_prefix_len, shared_suffix_len, sld_similarity, SldComparison};
